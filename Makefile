# Convenience targets for the repro project.

.PHONY: install test bench bench-smoke bench-json bench-engine-json bench-parallel-json bench-matview-json bench-sharding-json bench-store-json examples lint check-docs trace-smoke serve-smoke matview-smoke store-smoke verify check all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Fast benchmark sanity pass (seconds, not minutes): a single round of
# the suites that sweep the full pipeline, the evaluator hot path, and
# the fault-tolerant transport (happy-path overhead gate + resilience
# ladder), GC off so one-round timings are not noise-dominated.  Part
# of `make check`.
bench-smoke:
	pytest benchmarks/bench_quality.py benchmarks/bench_lint.py \
		benchmarks/bench_evaluator.py benchmarks/bench_faults.py \
		benchmarks/bench_obs.py benchmarks/bench_parallel.py \
		benchmarks/bench_matview.py benchmarks/bench_sharding.py \
		benchmarks/bench_store.py -q \
		--benchmark-only --benchmark-disable-gc \
		--benchmark-min-rounds=1 --benchmark-warmup=off

# Full benchmark run exported to JSON, then compared against the
# committed pre-kernel baseline (median speedups + extra_info
# reproduction-fact equality); writes the BENCH_PR2.json trajectory
# file.  See docs/PERFORMANCE.md.
bench-json:
	pytest benchmarks/ -q --benchmark-only \
		--benchmark-json=.bench_current.json
	python benchmarks/compare_bench.py compare \
		--baseline benchmarks/baseline_prekernel.json \
		--current .bench_current.json \
		--output BENCH_PR2.json \
		--require-speedup 3 --require-count 2

# The PR3 evaluator gate: run the evaluator benches under the legacy
# backend (re-capturing the committed pre-engine baseline) and under
# the compiled backend, then compare -- median speedups plus
# reproduction-fact equality, at least 3 benches >= 3x.  Writes the
# BENCH_PR3.json trajectory file.  See docs/PERFORMANCE.md.
bench-engine-json:
	REPRO_EVAL_BACKEND=legacy pytest benchmarks/bench_evaluator.py -q \
		--benchmark-only --benchmark-disable-gc \
		--benchmark-json=.bench_engine_legacy.json
	python benchmarks/compare_bench.py merge .bench_engine_legacy.json \
		--output benchmarks/baseline_preengine.json
	REPRO_EVAL_BACKEND=compiled pytest benchmarks/bench_evaluator.py -q \
		--benchmark-only --benchmark-disable-gc \
		--benchmark-json=.bench_engine_compiled.json
	python benchmarks/compare_bench.py compare \
		--baseline benchmarks/baseline_preengine.json \
		--current .bench_engine_compiled.json \
		--output BENCH_PR3.json \
		--require-speedup 3 --require-count 3

# The PR7 fan-out gate: run the parallel-mediator benches (inline
# overhead < 5%, 4-source fan-out <= 1.3x the slowest source, virtual
# economics, serve throughput) and write the BENCH_PR7.json trajectory
# file.  See docs/PERFORMANCE.md.
bench-parallel-json:
	pytest benchmarks/bench_parallel.py -q --benchmark-only \
		--benchmark-disable-gc \
		--benchmark-json=.bench_parallel.json
	python benchmarks/compare_bench.py merge .bench_parallel.json \
		--output BENCH_PR7.json

# The PR8 materialized-view gate: run the answer-cache benches (warm
# hit >= 20x cold, delta maintenance >= 3x full recompute, disabled
# path < 3% overhead, warm-cache serve throughput) and write the
# BENCH_PR8.json trajectory file.  See docs/PERFORMANCE.md.
bench-matview-json:
	pytest benchmarks/bench_matview.py -q --benchmark-only \
		--benchmark-disable-gc \
		--benchmark-json=.bench_matview.json
	python benchmarks/compare_bench.py merge .bench_matview.json \
		--output BENCH_PR8.json

# The PR9 sharding gate: run the fragmentation-aware sharding benches
# (1 -> 64 shard ladder: prune correctness vs the unsharded oracle at
# every rung, best pruned rung >= 3x the single-shard baseline,
# unprunable gather overhead recorded) and write the BENCH_PR9.json
# trajectory file.  See docs/SHARDING.md.
bench-sharding-json:
	pytest benchmarks/bench_sharding.py -q --benchmark-only \
		--benchmark-disable-gc \
		--benchmark-json=.bench_sharding.json
	python benchmarks/compare_bench.py merge .bench_sharding.json \
		--output BENCH_PR9.json

# The PR10 store gate: run the persistent-store benches (stored vs
# in-memory answer equality on a 4 -> 64 document ladder, cold reopen
# >= 5x cold parse+index, full-corpus sweep bounded by the page
# budget) and write the BENCH_PR10.json trajectory file.  See
# docs/PERSISTENCE.md.
bench-store-json:
	pytest benchmarks/bench_store.py -q --benchmark-only \
		--benchmark-disable-gc \
		--benchmark-json=.bench_store.json
	python benchmarks/compare_bench.py merge .bench_store.json \
		--output BENCH_PR10.json

# Static checks: ruff + mypy --strict (each skipped with a notice when
# not installed -- offline images may lack them), then `repro lint`
# over the example workloads.  The paper workload contains a
# deliberately dead query, so its expected exit code is 1.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		echo "== ruff"; ruff check src tests benchmarks || exit 1; \
	else echo "== ruff not installed, skipping"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		echo "== mypy --strict (repro.lint)"; mypy || exit 1; \
	else echo "== mypy not installed, skipping"; fi
	@echo "== repro lint --workload bibdb (expect clean)"
	@python -m repro lint --workload bibdb
	@echo "== repro lint --workload paper (expect the q-dead error)"
	@python -m repro lint --workload paper; \
	status=$$?; \
	if [ $$status -ne 1 ]; then \
		echo "expected exit 1 from the paper workload, got $$status"; \
		exit 1; \
	fi
	@echo "lint OK"

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; \
		python $$ex > /dev/null || exit 1; \
	done
	@echo "all examples ran"

# Verify every relative link and repo-path code reference in the
# markdown corpus (README/DESIGN/EXPERIMENTS/CHANGES + docs/) resolves.
check-docs:
	python scripts/check_docs_links.py

# Drive `repro ask --trace` and `repro trace` end to end and validate
# the Chrome trace JSON they write (span coverage + event shape).
trace-smoke:
	python scripts/trace_smoke.py

# Drive a scripted `repro serve` client session over real sockets:
# the healthy paper workload (clean unions, bench burst) and the flaky
# workload (degraded answers, skipped sources, client shutdown).
serve-smoke:
	python scripts/serve_smoke.py

# Drive the materialized-view answer cache end to end: CLI `ask`
# with and without `--no-cache`, then a cached serve session (miss ->
# hit -> bypass -> delta after a source edit) with stats assertions.
matview-smoke:
	python scripts/matview_smoke.py

# Drive the persistent document store end to end: CLI ingest with DTD
# validation (bad document rejected and rolled back), close/reopen
# answering the paper view query identically to the in-memory source,
# and the generation counter across a live re-ingest.
store-smoke:
	python scripts/store_smoke.py

# Default local gate: unit tests, static+workload lint, docs links,
# benchmark smoke, trace smoke, serve smoke, matview smoke, store
# smoke.
check: test lint check-docs bench-smoke trace-smoke serve-smoke matview-smoke store-smoke

verify: test bench examples

all: install verify
