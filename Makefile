# Convenience targets for the repro project.

.PHONY: install test bench examples verify all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; \
		python $$ex > /dev/null || exit 1; \
	done
	@echo "all examples ran"

verify: test bench examples

all: install verify
