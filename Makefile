# Convenience targets for the repro project.

.PHONY: install test bench examples lint verify all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Static checks: ruff + mypy --strict (each skipped with a notice when
# not installed -- offline images may lack them), then `repro lint`
# over the example workloads.  The paper workload contains a
# deliberately dead query, so its expected exit code is 1.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		echo "== ruff"; ruff check src tests benchmarks || exit 1; \
	else echo "== ruff not installed, skipping"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		echo "== mypy --strict (repro.lint)"; mypy || exit 1; \
	else echo "== mypy not installed, skipping"; fi
	@echo "== repro lint --workload bibdb (expect clean)"
	@python -m repro lint --workload bibdb
	@echo "== repro lint --workload paper (expect the q-dead error)"
	@python -m repro lint --workload paper; \
	status=$$?; \
	if [ $$status -ne 1 ]; then \
		echo "expected exit 1 from the paper workload, got $$status"; \
		exit 1; \
	fi
	@echo "lint OK"

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; \
		python $$ex > /dev/null || exit 1; \
	done
	@echo "all examples ran"

verify: test bench examples

all: install verify
