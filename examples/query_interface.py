#!/usr/bin/env python3
"""The DTD-based query interface (Section 1's first benefit).

"The view DTD is passed to the DTD-based query interface which
displays the structure of the view elements and also provides fill-in
windows and menus that allow the user to place conditions on the
elements."

This example shows the model behind such an interface:

1. display the browsable structure of a source DTD,
2. assemble a query from interface gestures (descend / fill-in /
   require) with the :class:`QueryBuilder`,
3. infer the view DTD of the assembled query and display the *view's*
   structure -- which is what the next user, or a stacked mediator,
   would browse.

Run:  python examples/query_interface.py
"""

from repro import QueryBuilder, infer_view_dtd, structure_tree, to_string
from repro.workloads import paper


def main() -> None:
    d1 = paper.d1()

    print("=" * 72)
    print("1. What the user browses: the source structure")
    print("=" * 72)
    print(structure_tree(d1).render())

    print()
    print("=" * 72)
    print("2. Interface gestures -> XMAS query")
    print("=" * 72)
    query = (
        QueryBuilder(d1, view_name="withJournals")
        .descend("department")                    # click: descend
        .condition_text("name", "CS")             # fill-in: name = CS
        .descend("professor", "gradStudent", pick=True)  # select these
        .require("publication", containing=["journal"], distinct=2)
        .build()
    )
    print(query)

    print()
    print("=" * 72)
    print("3. The inferred view DTD (what the interface shows next)")
    print("=" * 72)
    result = infer_view_dtd(d1, query)
    print("classification:", result.classification.value)
    print("list type:", to_string(result.list_type))
    print()
    print(structure_tree(result.dtd).render())
    print()
    print("specialized view DTD (served to stacked mediators):")
    print(result.sdtd)


if __name__ == "__main__":
    main()
