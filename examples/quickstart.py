#!/usr/bin/env python3
"""Quickstart: infer the DTD of an XML view.

Reproduces the paper's running example end to end:

1. declare the department source DTD (D1),
2. write the XMAS view (Q2: people with two journal publications),
3. infer the view DTD -- specialized and plain -- and inspect the
   non-tightness signals,
4. run the view on a document and validate the result against the
   inferred DTDs.

Run:  python examples/quickstart.py
"""

from repro import (
    infer_view_dtd,
    parse_document,
    parse_query,
    satisfies_sdtd,
    serialize_dtd,
    to_string,
    validate_document,
)
from repro.dtd import dtd
from repro.xmas import evaluate

# 1. The source DTD (the paper's D1).
source_dtd = dtd(
    {
        "department": "name, professor+, gradStudent+, course*",
        "professor": "firstName, lastName, publication+, teaches",
        "gradStudent": "firstName, lastName, publication+",
        "publication": "title, author+, (journal | conference)",
        "name": "#PCDATA",
        "firstName": "#PCDATA",
        "lastName": "#PCDATA",
        "title": "#PCDATA",
        "author": "#PCDATA",
        "journal": "#PCDATA",
        "conference": "#PCDATA",
        "teaches": "#PCDATA",
        "course": "#PCDATA",
    },
    root="department",
)

# 2. The view definition (the paper's Q2).
view = parse_query(
    """
    withJournals =
      SELECT P
      WHERE <department>
              <name>CS</name>
              P:<professor | gradStudent>
                <publication id=Pub1><journal/></publication>
                <publication id=Pub2><journal/></publication>
              </>
            </>
      AND Pub1 != Pub2
    """
)

# 3. Infer the view DTD.
result = infer_view_dtd(source_dtd, view)

print("=" * 72)
print("View DTD inference for", view.view_name)
print("=" * 72)
print()
print("classification:", result.classification.value)
print("list type:     ", to_string(result.list_type))
print()
print("specialized view DTD (the tight description):")
print(result.sdtd)
print()
print("plain view DTD (after Algorithm Merge):")
print(result.dtd)
print()
if result.merge.merged_names:
    print(
        "merge signals -- these names lost tightness in the plain DTD:",
        ", ".join(result.merge.merged_names),
    )
print()
print("as a standard <!ELEMENT> DTD:")
print(serialize_dtd(result.dtd))
print()

# 4. Run the view and validate the answer.
document = parse_document(
    """
    <department>
      <name>CS</name>
      <professor>
        <firstName>Yannis</firstName><lastName>P</lastName>
        <publication><title>Mediators</title><author>yp</author>
          <journal>TKDE</journal></publication>
        <publication><title>MIX</title><author>yp</author>
          <journal>SIGMOD Record</journal></publication>
        <teaches>cse132</teaches>
      </professor>
      <professor>
        <firstName>Mary</firstName><lastName>Q</lastName>
        <publication><title>One paper</title><author>mq</author>
          <conference>ICDE</conference></publication>
        <teaches>cse232</teaches>
      </professor>
      <gradStudent>
        <firstName>Pavel</firstName><lastName>V</lastName>
        <publication><title>Views</title><author>pv</author>
          <journal>VLDB J.</journal></publication>
        <publication><title>DTDs</title><author>pv</author>
          <journal>TODS</journal></publication>
      </gradStudent>
    </department>
    """
)

answer = evaluate(view, document)
names = [
    (pick.name, pick.children[0].text) for pick in answer.root.children
]
print("view answer contains:", names)

plain_ok = validate_document(answer, result.dtd).ok
sdtd_ok = satisfies_sdtd(answer.root, result.sdtd)
print("answer satisfies the plain view DTD: ", plain_ok)
print("answer satisfies the specialized DTD:", sdtd_ok)
assert plain_ok and sdtd_ok
