#!/usr/bin/env python3
"""A realistic catalog: mediating a DBLP-style bibliography.

The paper's department schema is a toy; this example runs the whole
stack on a 26-name bibliography schema (``repro.workloads.bibdb``):

1. three SELECT views (journal articles with DOIs, well-cited
   articles, affiliated people) with their inferred DTDs and the
   refinements each query buys,
2. a CONSTRUCT view restructuring articles into a flat citation
   report, with its template-driven view DTD,
3. the views emitted as legal (deterministic) XML DTDs.

Run:  python examples/bibdb_catalog.py
"""

import random

from repro import Mediator, Source, to_string
from repro.dtd import serialize_dtd
from repro.inference import infer_construct_view_dtd, infer_view_dtd
from repro.workloads import bibdb
from repro.xmas import evaluate_construct, parse_construct_query


def main() -> None:
    schema = bibdb.bibdb_dtd()
    rng = random.Random(42)
    corpus = bibdb.corpus(3, rng, star_mean=1.8)

    mediator = Mediator("bib")
    mediator.add_source(Source("dblp", schema, corpus))
    print(f"source 'dblp': {len(corpus)} documents, "
          f"{sum(d.size() for d in corpus)} elements, "
          f"{len(schema.names)} element types")

    print()
    print("=" * 72)
    print("SELECT views and what inference discovered")
    print("=" * 72)
    for query in bibdb.all_views():
        registration = mediator.register_view(query, "dblp")
        result = registration.inference
        answer = mediator.materialize(query.view_name)
        print(f"\nview {query.view_name!r} "
              f"({result.classification.value}, "
              f"{len(answer.root.children)} elements materialized)")
        print("  list type:", to_string(result.list_type))
        for name in sorted(result.merge.merged_names):
            print(f"  merge signal on {name!r} (plain DTD lost tightness)")
        # show the most interesting refined type
        headline = {
            "journalArticles": "article",
            "wellCited": "article",
            "affiliated": "person",
        }[query.view_name]
        print(f"  refined {headline}:",
              to_string(result.dtd.types[headline]))

    print()
    print("=" * 72)
    print("A CONSTRUCT view: flat citation report")
    print("=" * 72)
    report_query = parse_construct_query(
        """
        citationReport =
          CONSTRUCT <entry> $T <cited> $C </cited> </entry>
          WHERE <bibdb>
                  <venue> <volume> <issue>
                    <article>
                      T:<title/>
                      C:<citation/>
                    </>
                  </> </> </>
                </>
        """
    )
    construct_result = infer_construct_view_dtd(schema, report_query)
    print("inferred view DTD:")
    print(construct_result.dtd)
    report = evaluate_construct(report_query, corpus[0])
    print(f"\nfirst document yields {len(report.root.children)} "
          "report entries")

    print()
    print("=" * 72)
    print("Emitting as legal XML")
    print("=" * 72)
    result = infer_view_dtd(schema, bibdb.journal_articles_view())
    xml_dtd, xml_report = result.xml_dtd()
    print("journalArticles as a standard DTD "
          f"(fully deterministic: {xml_report.fully_deterministic}):\n")
    print(serialize_dtd(xml_dtd))


if __name__ == "__main__":
    main()
