#!/usr/bin/env python3
"""A two-level MIX mediation scenario over bibliography sources.

The paper's Section 1 motivates mediators that integrate XML sources
and can be *stacked*: "it is important that the lower level mediators
can derive and provide their view DTDs to the higher level ones."

This example builds:

* a department source (the paper's D1 schema) with generated data,
* a lower mediator exporting a ``publist`` view (journal publications
  only -- the paper's Q3),
* an upper mediator that treats the lower mediator's view *as a
  source*, using the inferred view DTD, and defines a title view on
  top of it,
* ad-hoc queries answered through the DTD-based query simplifier,
  including one that provably returns nothing and never touches the
  source.

Run:  python examples/bibliography_mediator.py
"""

import random

from repro import Mediator, Source, parse_query, to_string
from repro.dtd import generate_document
from repro.mediator import simplify_query
from repro.workloads import paper


def main() -> None:
    rng = random.Random(20260706)
    d1 = paper.d1()

    # --- the wrapped source -------------------------------------------
    documents = [
        generate_document(d1, rng, star_mean=2.0) for _ in range(3)
    ]
    dept = Source("dept", d1, documents)
    print(f"source 'dept': {len(documents)} documents, "
          f"{dept.size()} elements total")

    # --- the lower mediator --------------------------------------------
    lower = Mediator("lower")
    lower.add_source(dept)
    registration = lower.register_view(paper.q3(), "dept")
    print()
    print("lower mediator registered view 'publist'")
    print("  inferred list type:",
          to_string(registration.dtd.types["publist"]))
    print("  inferred publication type:",
          to_string(registration.dtd.types["publication"]))
    print("  (the journal|conference disjunction was removed: only")
    print("   journal publications can appear in this view)")

    publist = lower.materialize("publist")
    print(f"  materialized view holds {len(publist.root.children)} "
          "publications")

    # --- stacking: the upper mediator ----------------------------------
    upper = Mediator("upper")
    upper.add_source(lower.as_source("publist"))
    titles_view = parse_query(
        """
        titles =
          SELECT T
          WHERE <publist>
                  <publication> T:<title/> </>
                </>
        """
    )
    upper_registration = upper.register_view(titles_view)
    print()
    print("upper mediator stacked on the lower one")
    print("  its source DTD is the lower mediator's *inferred* view DTD")
    print("  inferred titles list type:",
          to_string(upper_registration.dtd.types["titles"]))
    answer = upper.materialize("titles")
    print(f"  {len(answer.root.children)} titles flow through two levels")

    # --- the query simplifier at work -----------------------------------
    print()
    print("DTD-based query simplification:")
    unsat = parse_query(
        """
        confs = SELECT X
        WHERE <publist> X:<publication><conference/></publication> </>
        """
    )
    decision = simplify_query(unsat, registration.dtd)
    print("  query asking for conference papers in the journal view:")
    print("    classification:", decision.classification.value)
    result = lower.query_view(unsat, "publist")
    print("    answered with", len(result.root.children),
          "elements,", lower.stats.answered_without_source,
          "quer(ies) answered without touching the source")

    sat = parse_query(
        """
        some = SELECT X
        WHERE <publist> X:<publication><title/></publication> </>
        """
    )
    decision = simplify_query(sat, registration.dtd)
    print("  query asking for publications with a title:")
    print("    classification:", decision.classification.value,
          f"({decision.pruned_nodes} condition node(s) pruned -- every")
    print("     publication has a title, so the check is dropped)")


if __name__ == "__main__":
    main()
