#!/usr/bin/env python3
"""Materialized union views: serve repeats from cache, splice edits.

A mediator that answers every ``materialize_union`` by re-fanning out
to its sources does redundant work when nothing changed.  This demo
registers the DBLP-style ``journalArticles`` union view over four
bibliography sites and shows the materialized-view answer cache at
work:

* the **cold** call fans out, evaluates every site, and stores the
  answer with its per-document provenance (which source document
  produced which slice of the answer),
* the **warm** repeat is served from cache without a single wrapper
  call — a mutation-clock stamp check, not a tree walk,
* an **edit** to one source document is served by *delta
  maintenance*: only the dirty document is re-evaluated and its fresh
  picks are spliced into the cached answer between the untouched
  subtrees; every other site stays untouched,
* the spliced answer still **validates** against the inferred union
  view DTD (when it would not, the cache falls back to a full
  recompute — diagnostic ``MED007``).

`explain_union` reports what the cache *would* do before each call
without touching sources.  See docs/PERFORMANCE.md for the policy
knobs and the benchmark gates.

Run:  python examples/materialized_views.py
"""

from repro.dtd import validate_document
from repro.mediator import MatViewPolicy
from repro.workloads import bibdb

VIEW = "journalArticles"


def total_calls(mediator) -> int:
    return sum(
        transport.health()["calls"]
        for transport in mediator.transports.values()
    )


def main() -> None:
    mediator = bibdb.union_federation(
        n_sources=4, n_docs=4, cache=MatViewPolicy()
    )
    registration = mediator.union_views[VIEW]
    mediator.warm()

    print("=" * 72)
    print("Four bibliography sites, one cached union view")
    print("=" * 72)
    print(f"cache before the first call: "
          f"{mediator.explain_union(VIEW).cache_status}")
    answer = mediator.materialize_union(VIEW)
    print(f"cold materialization: {len(answer.root.children)} articles "
          f"from {total_calls(mediator)} wrapper calls "
          f"({mediator.last_cache_outcome})")

    calls_before = total_calls(mediator)
    again = mediator.materialize_union(VIEW)
    print(f"warm repeat: served the same master answer "
          f"({mediator.last_cache_outcome}, answer is the same object: "
          f"{again is answer}) with "
          f"{total_calls(mediator) - calls_before} wrapper calls")

    print()
    print("=" * 72)
    print("One site edits one document")
    print("=" * 72)
    document = mediator.sources["bib0"].documents[0]
    title = next(
        element
        for element in document.root.iter()
        if element.name == "title"
    )
    title.set_text("Mediators, Second Edition")
    print(f"explain_union now says: "
          f"{mediator.explain_union(VIEW).cache_status}")
    calls_before = total_calls(mediator)
    maintained = mediator.materialize_union(VIEW)
    print(f"served by {mediator.last_cache_outcome} maintenance: "
          f"re-evaluated only bib0's dirty document, "
          f"{total_calls(mediator) - calls_before} wrapper calls")
    titles = [
        element.content
        for element in maintained.root.iter()
        if element.name == "title"
    ]
    print(f"the spliced answer carries the edit: "
          f"{'Mediators, Second Edition' in titles}")
    print(f"held answers from earlier hits stay stable: "
          f"{maintained is not answer}")
    print(f"...and the spliced answer still validates against the "
          f"inferred view DTD: "
          f"{validate_document(maintained, registration.dtd).ok}")

    print()
    print("=" * 72)
    print("The cache's own accounting")
    print("=" * 72)
    info = mediator.matview.info()
    for key in ("hits", "misses", "recomputes", "deltas",
                "invalidations", "entries", "bytes"):
        print(f"  {key:14s} {info[key]}")


if __name__ == "__main__":
    main()
