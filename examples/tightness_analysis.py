#!/usr/bin/env python3
"""Soundness and tightness analysis (Sections 3.1-3.4, quantified).

Produces, for the paper's running examples:

* the naive / tight / specialized view descriptions side by side,
* looseness factors (how many impossible child sequences each
  description admits, by exact word counting),
* an empirical soundness run (Definition 3.1),
* the structural-tightness gap of plain DTDs (Section 3.2): plain-DTD
  samples rejected by the specialized DTD,
* the no-tightest-DTD chain for recursive views (Example 3.5).

Run:  python examples/tightness_analysis.py
"""

import random

from repro import infer_view_dtd, naive_view_dtd, to_string
from repro.inference import (
    check_soundness,
    looseness_report,
    structural_tightness_probe,
)
from repro.regex import is_proper_subset
from repro.workloads import paper


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    d1 = paper.d1()
    q2 = paper.q2()
    result = infer_view_dtd(d1, q2)
    naive = naive_view_dtd(d1, q2)

    banner("Naive vs tight vs specialized (Q2 over D1)")
    print("naive list type:      ",
          to_string(naive.types["withJournals"]))
    print("tight list type:      ",
          to_string(result.dtd.types["withJournals"]))
    print("specialized list type:",
          to_string(result.sdtd.types[("withJournals", 0)]))
    print()
    print("naive professor:", to_string(naive.types["professor"]))
    print("tight professor:", to_string(result.dtd.types["professor"]))

    banner("Looseness factors: sequences admitted, naive / tight, length <= 8")
    print(f"{'element':<16}{'naive':>12}{'tight':>12}{'factor':>10}")
    for row in looseness_report(naive, result.dtd, 8):
        print(
            f"{row.name:<16}{row.loose_count:>12}{row.tight_count:>12}"
            f"{row.factor:>10.2f}"
        )

    banner("Empirical soundness (Definition 3.1)")
    report = check_soundness(
        d1, q2, result, trials=200, rng=random.Random(1), star_mean=1.8
    )
    print(report)
    print("sound:", report.sound)

    banner("Structural tightness gap of the plain view DTD (Section 3.2)")
    probe = structural_tightness_probe(
        result, samples=300, rng=random.Random(2)
    )
    print(f"plain-DTD samples admitted by the s-DTD: "
          f"{probe.admitted}/{probe.samples} "
          f"(coverage {probe.coverage:.1%})")
    print("=> the plain view DTD describes view structures the view can")
    print("   never produce (e.g. a student with conference papers only);")
    print("   the specialized DTD excludes them.")
    if probe.example_gap:
        print()
        print("example impossible view admitted by the plain DTD:")
        print(probe.example_gap)

    banner("No tightest DTD under recursion (Example 3.5)")
    for k in range(4):
        tighter = is_proper_subset(paper.t_chain(k + 1), paper.t_chain(k))
        print(f"T({k + 1}) strictly tighter than T({k}): {tighter}")
    print("... and so on forever: the producible pick sequences form the")
    print("bracket language of the section tree, which is not regular.")


if __name__ == "__main__":
    main()
