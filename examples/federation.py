#!/usr/bin/env python3
"""Federating heterogeneous bibliography sites (Section 1's motivation).

The paper's introduction motivates mediators that union "the
structures exported by 100 sites" -- which TSIMMIS could only do
loosely.  This example federates two sites whose schemas *collide* on
the ``publication`` name but disagree on its structure, and shows:

1. the union view DTD keeping the two publication shapes apart as
   specializations (the s-DTD) while the merged plain DTD unions them
   with an explicit non-tightness signal,
2. query/view composition: a client query against the federation
   rewritten into direct source queries,
3. emission of the inferred view DTD as *legal XML* (deterministic
   content models), with the repair report.

Run:  python examples/federation.py
"""

import random

from repro import Mediator, Source, to_string
from repro.dtd import RepairStatus, dtd, generate_document, serialize_dtd
from repro.inference import UnionBranch, infer_union_view_dtd
from repro.xmas import parse_query


def university_site():
    schema = dtd(
        {
            "site": "name, entry+",
            "entry": "publication*",
            "publication": "title, author+, (journal | conference)",
            "name": "#PCDATA",
            "title": "#PCDATA",
            "author": "#PCDATA",
            "journal": "#PCDATA",
            "conference": "#PCDATA",
        },
        root="site",
    )
    query = parse_query(
        """
        journals = SELECT P
        WHERE <site> <entry>
                P:<publication><journal/></publication>
              </> </>
        """,
        source="university",
    )
    return schema, query


def lab_site():
    schema = dtd(
        {
            "site": "name, member*",
            "member": "publication*",
            "publication": "title, year, journal?",
            "name": "#PCDATA",
            "title": "#PCDATA",
            "year": "#PCDATA",
            "journal": "#PCDATA",
        },
        root="site",
    )
    query = parse_query(
        """
        journals = SELECT P
        WHERE <site> <member>
                P:<publication><journal/></publication>
              </> </>
        """,
        source="lab",
    )
    return schema, query


def main() -> None:
    rng = random.Random(1999)
    uni_dtd, uni_query = university_site()
    lab_dtd, lab_query = lab_site()

    print("=" * 72)
    print("Union view over two sites with colliding 'publication' names")
    print("=" * 72)
    result = infer_union_view_dtd(
        [UnionBranch(uni_dtd, uni_query), UnionBranch(lab_dtd, lab_query)],
        "journals",
    )
    print()
    print("specialized union view DTD (shapes kept apart):")
    print(result.sdtd)
    print()
    print("merged plain DTD (shapes unioned, loss signalled):")
    print("  publication :", to_string(result.dtd.types["publication"]))
    print("  merge signals:", ", ".join(result.merge.merged_names))
    print("  lossless merge?", result.merge.lossless)

    print()
    print("=" * 72)
    print("The federation as a running mediator")
    print("=" * 72)
    mediator = Mediator("federation")
    mediator.add_source(
        Source(
            "university",
            uni_dtd,
            [generate_document(uni_dtd, rng, star_mean=1.8)],
        )
    )
    mediator.add_source(
        Source("lab", lab_dtd, [generate_document(lab_dtd, rng, star_mean=1.8)])
    )
    registration = mediator.register_union_view(
        [uni_query, lab_query], "journals"
    )
    view = mediator.materialize_union("journals")
    print(f"materialized union view: {len(view.root.children)} journal "
          "publications from 2 sites")

    print()
    print("=" * 72)
    print("Query composition against a single-source view")
    print("=" * 72)
    mediator.register_view(uni_query, "university")
    client = parse_query(
        "titles = SELECT T WHERE <journals> <publication> T:<title/> </> </>"
    )
    answer = mediator.query_view(client, "journals", use_simplifier=False)
    print(f"client query answered with {len(answer.root.children)} titles; "
          f"{mediator.stats.composed} of {mediator.stats.queries} queries "
          "were rewritten to run directly on the source")

    print()
    print("=" * 72)
    print("Emitting the view DTD as legal (deterministic) XML")
    print("=" * 72)
    from repro.dtd import xmlize_dtd

    xml_dtd, report = xmlize_dtd(result.dtd)
    repaired = report.names_with(RepairStatus.REPAIRED)
    print("names repaired for XML determinism:", repaired or "none needed")
    print("fully deterministic:", report.fully_deterministic)
    print()
    print(serialize_dtd(xml_dtd))


if __name__ == "__main__":
    main()
