#!/usr/bin/env python3
"""A federation that keeps answering while its wrappers misbehave.

The paper's Figure 1 stacks the mediator over wrappers and assumes
they answer; this demo drops that assumption.  Three bibliography
sites export the same schema through separate wrappers:

* ``site0`` is healthy,
* ``site1`` errors on ~30% of calls (seeded — reruns are identical),
* ``site2`` is permanently dead.

A union view federates the three.  Watch the transport policy at work:
flaky calls are retried with exponential backoff, the dead source
trips its circuit breaker and stops being attempted, and the mediator
returns a *degraded* answer — annotated with what was skipped — that
still validates against the inferred union view DTD.

Everything runs on a fake clock: the "retries" and "30 seconds of
breaker recovery" below take no wall time.  See docs/RELIABILITY.md.

Run:  python examples/flaky_federation.py
"""

from repro.dtd import validate_document
from repro.mediator import (
    FakeClock,
    RetryPolicy,
    TransportPolicy,
    render_health,
)
from repro.workloads import flaky


def main() -> None:
    clock = FakeClock()
    mediator = flaky.build_flaky_federation(
        clock,
        policy=TransportPolicy(retry=RetryPolicy(attempts=4)),
    )
    registration = mediator.union_views["journals"]

    print("=" * 72)
    print("Federating 3 sites: healthy / 30% flaky / permanently dead")
    print("=" * 72)
    for name, source in mediator.sources.items():
        plan = source.plan
        status = (
            "dead"
            if plan.dead
            else f"{plan.error_rate:.0%} error rate"
            if plan.error_rate
            else "healthy"
        )
        print(f"  {name}: {status}")

    print()
    print("materializing the union view under fault...")
    answer = mediator.materialize_union("journals")
    print(f"  -> answered with {len(answer.root.children)} journal "
          "publications")
    report = mediator.last_degradation
    assert report is not None
    print()
    print(report.describe())

    print()
    print("the degraded answer is SOUND — it validates against the")
    print("inferred union view DTD:",
          validate_document(answer, registration.dtd).ok)

    print()
    print("=" * 72)
    print("Transport health after the fan-out")
    print("=" * 72)
    print(render_health(mediator.health()))
    print()
    print(f"virtual time spent in backoff: {clock.now():.2f}s "
          f"({len(clock.sleeps)} sleeps — none of them real)")

    print()
    print("=" * 72)
    print("A second query fails fast: the dead site's breaker is open")
    print("=" * 72)
    mediator.materialize_union("journals")
    print(render_health(mediator.health()))
    dead = mediator.transports["site2"]
    print(f"\nsite2 rejected without being called "
          f"(breaker rejections: {dead.stats.breaker_rejections}; "
          f"wrapper attempts unchanged)")

    print()
    print("=" * 72)
    print("Recovery: the wrapper comes back, the breaker half-opens")
    print("=" * 72)
    # the operator fixes site2's wrapper...
    mediator.sources["site2"].plan.dead = False
    # ...and after the reset timeout the next call probes half-open
    clock.advance(mediator.policy.breaker.reset_timeout)
    mediator.materialize_union("journals")
    print(render_health(mediator.health()))
    print("\ncomplete answer again:",
          mediator.last_degradation is None)


if __name__ == "__main__":
    main()
