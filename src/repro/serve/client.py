"""Client side of the ``repro serve`` protocol, plus the bench driver.

:class:`ServeClient` is a tiny blocking client: one TCP connection,
one in-order request/response pair per call.  ``run_bench`` is the
load driver behind ``repro bench-serve``: ``concurrency`` client
threads each issue union requests against a running server and the
aggregate (throughput, latency quantiles, error/degradation counts)
comes back as a plain dict.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field

from ..errors import ReproError, register_diagnostic_code
from . import protocol


class ServeClientError(ReproError):
    """The server closed the connection or broke protocol framing."""

    code = register_diagnostic_code(
        "SRV006", "serve client: connection closed or framing broken"
    )


class RequestFailed(ReproError):
    """An ``ok: false`` response; carries the server's diagnostic code."""

    code = register_diagnostic_code(
        "SRV007", "serve client: request failed server-side"
    )

    def __init__(self, error: dict) -> None:
        self.server_code = error.get("code", "REPRO001")
        super().__init__(
            f"[{self.server_code}] {error.get('message', 'request failed')}"
        )


class ServeClient:
    """A blocking JSON-line client for one server connection."""

    def __init__(
        self, host: str, port: int, timeout: float | None = 30.0
    ) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, op: str, **fields) -> dict:
        """Send one request, await its response; raise on ``ok: false``."""
        self._next_id += 1
        message = {"op": op, "id": self._next_id, **fields}
        self._socket.sendall(protocol.encode(message))
        line = self._reader.readline(protocol.MAX_LINE_BYTES + 1)
        if not line:
            raise ServeClientError("server closed the connection")
        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeClientError(f"unparseable response: {error}")
        if not isinstance(response, dict):
            raise ServeClientError("response is not a JSON object")
        if not response.get("ok"):
            raise RequestFailed(response.get("error", {}))
        return response

    # -- convenience wrappers -------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def views(self) -> dict:
        return self.request("views")["views"]

    def union(
        self,
        view: str,
        budget: float | None = None,
        degrade: bool = True,
        cache: bool = True,
    ) -> dict:
        fields: dict = {"view": view, "degrade": degrade}
        if not cache:
            fields["cache"] = False
        if budget is not None:
            fields["budget"] = budget
        return self.request("union", **fields)

    def health(self) -> dict:
        return self.request("health")["health"]

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def shutdown(self) -> None:
        self.request("shutdown")


# -- bench driver -------------------------------------------------------


@dataclass
class _WorkerTally:
    """One bench thread's outcomes (merged after the join barrier)."""

    latencies: list[float] = field(default_factory=list)
    degraded: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    failures: int = 0


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(q * len(sorted_values))
    )
    return sorted_values[index]


def run_bench(
    host: str,
    port: int,
    view: str,
    requests: int = 100,
    concurrency: int = 4,
    budget: float | None = None,
) -> dict:
    """Drive ``requests`` union requests at ``concurrency`` and tally.

    Admission drops (``SRV003``-``SRV005``) are counted per code, not
    treated as failures: rejecting quickly under overload is the
    behavior the server is *supposed* to exhibit, and the split shows
    whether the admission controller or the mediator was the limit.
    """
    concurrency = max(1, min(concurrency, requests))
    per_worker = [
        requests // concurrency + (1 if i < requests % concurrency else 0)
        for i in range(concurrency)
    ]
    tallies = [_WorkerTally() for _ in range(concurrency)]

    def worker(index: int) -> None:
        tally = tallies[index]
        try:
            client = ServeClient(host, port)
        except OSError:
            tally.failures += per_worker[index]
            return
        with client:
            for _ in range(per_worker[index]):
                started = time.perf_counter()
                try:
                    response = client.union(view, budget=budget)
                except RequestFailed as error:
                    code = error.server_code
                    if code.startswith("SRV"):
                        tally.rejected[code] = (
                            tally.rejected.get(code, 0) + 1
                        )
                    else:
                        tally.failures += 1
                    continue
                except (ReproError, OSError):
                    tally.failures += 1
                    return
                tally.latencies.append(time.perf_counter() - started)
                if response.get("degraded"):
                    tally.degraded += 1

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    latencies = sorted(
        latency for tally in tallies for latency in tally.latencies
    )
    rejected: dict[str, int] = {}
    for tally in tallies:
        for code, count in tally.rejected.items():
            rejected[code] = rejected.get(code, 0) + count
    answered = len(latencies)
    return {
        "requests": requests,
        "concurrency": concurrency,
        "answered": answered,
        "degraded": sum(tally.degraded for tally in tallies),
        "rejected": rejected,
        "failures": sum(tally.failures for tally in tallies),
        "wall_seconds": round(wall, 6),
        "qps": round(answered / wall, 2) if wall > 0 else 0.0,
        "latency": {
            "p50": round(_percentile(latencies, 0.50), 6),
            "p95": round(_percentile(latencies, 0.95), 6),
            "max": round(latencies[-1], 6) if latencies else 0.0,
        },
    }
