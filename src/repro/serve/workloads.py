"""Built-in federations for ``repro serve`` / ``repro bench-serve``.

Two servable workloads, both unions so the parallel fan-out and the
admission controller have real work to do:

* ``flaky`` -- the :mod:`repro.workloads.flaky` federation on the
  system clock, with injected per-call latency and the standard fault
  plans (healthy first site, flaky middle, dead last): requests come
  back degraded, breakers trip, and the serving behaviors worth
  demonstrating — retries under deadline, degraded answers, shedding —
  all occur live.
* ``paper`` -- healthy sources exporting the paper's department schema
  (D1, Example 3.1) with generated documents: a clean-room workload
  for measuring serving overhead and parallel speedup without fault
  noise.
* ``bibdb`` -- the bibliography federation from
  :mod:`repro.workloads.bibdb`.  With ``--shards N`` every site
  becomes a :class:`~repro.mediator.ShardedSource` of ``N`` fragment-
  DTD-typed shards, so the served view exercises fragmentation-aware
  pruning and scatter-gather end to end (docs/SHARDING.md).
"""

from __future__ import annotations

import random

from ..dtd import generate_document
from ..mediator import (
    FanoutPolicy,
    FaultPlan,
    MatViewCache,
    MatViewPolicy,
    Mediator,
    Source,
    TransportPolicy,
)
from ..workloads import paper as paper_workload
from ..workloads.flaky import build_flaky_federation, standard_fault_plans
from ..xmas import parse_query

SERVE_WORKLOADS = ("flaky", "paper", "bibdb")
#: every built-in workload serves this union view
VIEW_NAME = "journals"


def _paper_branch_query(source_name: str):
    return parse_query(
        f"""
        {VIEW_NAME} = SELECT P
        WHERE <department> <professor>
                P:<publication><journal/></publication>
              </> </>
        """,
        source=source_name,
    )


def build_paper_federation(
    n_sources: int = 3,
    n_docs: int = 2,
    seed: int = 7,
    policy: TransportPolicy | None = None,
    fanout: FanoutPolicy | None = None,
    cache: MatViewPolicy | MatViewCache | None = None,
    store_path: str | None = None,
) -> Mediator:
    """A healthy union federation over the paper's D1 schema.

    With ``store_path`` the corpus is persistent: sources load their
    documents from that :class:`~repro.store.DocumentStore` (ingesting
    the generated documents on the first run), so a restarted server
    warm-starts from the stored preorder arrays instead of
    re-generating and re-indexing -- ``repro serve --store PATH``.
    """
    schema = paper_workload.d1()
    rng = random.Random(seed)
    mediator = Mediator(
        "paper-federation", policy=policy, fanout=fanout, cache=cache
    )
    store = None
    if store_path is not None:
        from ..store import DocumentStore

        store = DocumentStore(store_path)
    queries = []
    for i in range(n_sources):
        name = f"dept{i}"
        if store is not None:
            documents = store.documents(source=name)
            while len(documents) < n_docs:
                documents.append(
                    store.ingest_document(
                        generate_document(schema, rng), source=name
                    )
                )
            source = Source(name, schema, [], validate=False)
            source.documents.extend(documents[:n_docs])
        else:
            source = Source(
                name,
                schema,
                [generate_document(schema, rng) for _ in range(n_docs)],
                validate=False,
            )
        mediator.add_source(source)
        queries.append(_paper_branch_query(name))
    mediator.register_union_view(queries, VIEW_NAME)
    return mediator


def build_serve_workload(
    workload: str,
    n_sources: int = 3,
    n_docs: int = 2,
    seed: int = 7,
    latency: float = 0.0,
    policy: TransportPolicy | None = None,
    fanout: FanoutPolicy | None = None,
    cache: MatViewPolicy | MatViewCache | None = None,
    shards: int = 0,
    store_path: str | None = None,
) -> Mediator:
    """The mediator behind ``repro serve --workload <name>``.

    ``latency`` (seconds) is the injected per-call latency of the
    flaky workload's sites — real sleeps on the system clock, so the
    parallel speedup is observable from a client.  The paper workload
    ignores it (healthy in-process sources answer at memory speed).
    ``cache`` wires a materialized-view answer cache into the mediator
    so repeat requests for an unchanged federation skip the fan-out.
    ``shards`` > 0 selects the sharded bibdb federation (each site
    split into that many fragment-typed shards); it only applies to
    the ``bibdb`` workload.  ``store_path`` backs the paper workload's
    corpus with a persistent :class:`~repro.store.DocumentStore`
    (first run ingests, later runs warm-start); it only applies to the
    ``paper`` workload.
    """
    if shards > 0 and workload != "bibdb":
        raise ValueError(
            f"--shards only applies to the bibdb workload, not {workload!r}"
        )
    if store_path is not None and workload != "paper":
        raise ValueError(
            f"--store only applies to the paper workload, not {workload!r}"
        )
    if workload == "flaky":
        from ..mediator import SystemClock

        plans = standard_fault_plans(n_sources)
        if latency > 0:
            plans = {
                name: FaultPlan(
                    error_rate=plan.error_rate,
                    seed=plan.seed,
                    dead=plan.dead,
                    latency=latency,
                    latency_jitter=latency / 2,
                )
                for name, plan in plans.items()
            }
        return build_flaky_federation(
            SystemClock(),
            policy=policy,
            n_sources=n_sources,
            n_docs=n_docs,
            plans=plans,
            seed=seed,
            fanout=fanout,
            cache=cache,
        )
    if workload == "paper":
        return build_paper_federation(
            n_sources=n_sources,
            n_docs=n_docs,
            seed=seed,
            policy=policy,
            fanout=fanout,
            cache=cache,
            store_path=store_path,
        )
    if workload == "bibdb":
        from ..workloads import bibdb

        if shards > 0:
            return bibdb.sharded_federation(
                n_sources=n_sources,
                n_shards=shards,
                n_docs=max(n_docs, shards),
                seed=seed,
                view_name=VIEW_NAME,
                policy=policy,
                fanout=fanout,
                cache=cache,
            )
        return bibdb.union_federation(
            n_sources=n_sources,
            n_docs=n_docs,
            seed=seed,
            view_name=VIEW_NAME,
            policy=policy,
            fanout=fanout,
            cache=cache,
        )
    raise ValueError(
        f"unknown serve workload {workload!r} "
        f"(expected one of {SERVE_WORKLOADS})"
    )
