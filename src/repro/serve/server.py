"""The concurrent mediator front end behind ``repro serve``.

A :class:`MediatorServer` keeps one warm :class:`~repro.mediator.Mediator`
— view plans compiled, document indexes built, fan-out pool up — behind
a TCP socket speaking the JSON-line protocol of
:mod:`repro.serve.protocol`, one handler thread per connection.

What stands between the socket and the mediator is *admission control*
(:class:`AdmissionController`): the request path is bounded at every
point where an unbounded queue could hide, so overload degrades into
fast, explicit rejections instead of collapse:

* **bounded inflight** -- at most ``max_inflight`` requests evaluate at
  once; arrivals beyond that wait for a slot;
* **bounded queue, deadline-aware drop** -- at most ``max_queue``
  requests wait, each at most until its own budget expires (a request
  that would time out anyway is dropped *in the queue*, spending none
  of the mediator's capacity on a dead answer);
* **load shedding** -- when every source's circuit breaker is open the
  mediator cannot produce even a degraded answer, so union requests are
  rejected immediately (``SRV005``) without queuing;
* **per-source concurrency** -- each source transport is gated by a
  semaphore of ``per_source_concurrency`` slots, bounding the pressure
  any number of concurrent fan-outs can put on one wrapper.

See ``docs/SERVING.md`` for the protocol, tuning guidance, and the
relationship to the paper's mediator architecture.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field

from .. import obs
from ..dtd import serialize_dtd
from ..errors import ReproError
from ..mediator import BreakerState, Deadline, Mediator
from ..xmlmodel import serialize_document
from . import protocol
from .protocol import (
    LoadShedding,
    QueueDeadlineExceeded,
    ServerOverloaded,
    UnknownOperation,
)


@dataclass(frozen=True)
class ServePolicy:
    """Admission-control and serving knobs for a :class:`MediatorServer`."""

    #: requests evaluating concurrently before arrivals queue
    max_inflight: int = 8
    #: requests allowed to wait for a slot before hard rejection
    max_queue: int = 16
    #: deadline budget (seconds) for requests that name none
    default_budget: float = 2.0
    #: per-source transport concurrency gate (0 disables the gate)
    per_source_concurrency: int = 4
    #: shed union requests when every source breaker is open
    shed_when_all_open: bool = True


@dataclass
class ServerStats:
    """Counters the ``stats`` operation reports (lock-guarded)."""

    connections: int = 0
    requests: int = 0
    served: int = 0
    errors: int = 0
    dropped_queue_full: int = 0
    dropped_queue_deadline: int = 0
    shed: int = 0
    #: union requests that opted out of the matview cache (SRV008)
    cache_bypassed: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, attribute: str) -> None:
        with self._lock:
            setattr(self, attribute, getattr(self, attribute) + 1)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "connections": self.connections,
                "requests": self.requests,
                "served": self.served,
                "errors": self.errors,
                "dropped_queue_full": self.dropped_queue_full,
                "dropped_queue_deadline": self.dropped_queue_deadline,
                "shed": self.shed,
                "cache_bypassed": self.cache_bypassed,
            }


class AdmissionController:
    """Bounded inflight + bounded, deadline-aware wait queue.

    ``acquire`` admits the caller when an inflight slot is free,
    raising :class:`ServerOverloaded` when the wait queue is already
    full and :class:`QueueDeadlineExceeded` when the caller's own
    budget dies first.  Every admission must be paired with
    ``release`` (use the context manager ``admitted``).
    """

    def __init__(self, max_inflight: int, max_queue: int) -> None:
        self.max_inflight = max(1, max_inflight)
        self.max_queue = max(0, max_queue)
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0

    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def queued(self) -> int:
        with self._cond:
            return self._queued

    def acquire(self, deadline: Deadline) -> None:
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            if self._queued >= self.max_queue:
                raise ServerOverloaded(
                    f"admission queue full "
                    f"({self._queued} waiting, "
                    f"{self._inflight} inflight)"
                )
            self._queued += 1
            try:
                while self._inflight >= self.max_inflight:
                    remaining = deadline.remaining()
                    if remaining <= 0:
                        raise QueueDeadlineExceeded(
                            "request budget expired waiting for an "
                            "inflight slot"
                        )
                    self._cond.wait(remaining)
                self._inflight += 1
            finally:
                self._queued -= 1

    def release(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._cond.notify()


class MediatorServer:
    """One warm mediator behind a JSON-line TCP socket.

    ``start()`` binds (``port=0`` picks a free port — ``address``
    reports the real one), warms the mediator's plans and indexes,
    installs the per-source concurrency gates, and spawns the accept
    loop; ``stop()`` (or a client ``shutdown`` request) closes the
    listening socket and joins the handler threads.  Usable as a
    context manager.
    """

    def __init__(
        self,
        mediator: Mediator,
        policy: ServePolicy | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.mediator = mediator
        self.policy = policy or ServePolicy()
        self.host = host
        self.port = port
        self.stats = ServerStats()
        self.admission = AdmissionController(
            self.policy.max_inflight, self.policy.max_queue
        )
        #: request latencies (seconds) as measured server-side
        self.latency = obs.Histogram()
        self._socket: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[threading.Thread] = []
        self._handlers_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after ``start()``."""
        if self._socket is None:
            raise RuntimeError("server not started")
        return self._socket.getsockname()[:2]

    def start(self) -> "MediatorServer":
        if self._socket is not None:
            raise RuntimeError("server already started")
        warmed = self.mediator.warm()
        if self.policy.per_source_concurrency > 0:
            for transport in self.mediator.transports.values():
                transport.gate = threading.BoundedSemaphore(
                    self.policy.per_source_concurrency
                )
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self._socket = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name="repro-serve-accept",
            daemon=True,
        )
        self._accept_thread.start()
        with obs.span("serve.start") as sp:
            sp.set_attribute("indexed_documents", warmed)
            sp.set_attribute("port", self.address[1])
        return self

    def stop(self) -> None:
        """Stop accepting, close the listener, join handlers (idempotent)."""
        if self._stopping.is_set() or self._socket is None:
            return
        self._stopping.set()
        try:
            # Unblock accept() portably: connect-then-close to ourselves.
            with socket.create_connection(self.address, timeout=1.0):
                pass
        except OSError:
            pass
        self._socket.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.join(timeout=5.0)
        self.mediator.close()
        self._stopped.set()

    def serve_forever(self) -> None:
        """Block until ``stop()`` (or a client ``shutdown``) completes."""
        self._stopped.wait()

    def __enter__(self) -> "MediatorServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection handling ---------------------------------------------

    def _accept_loop(self) -> None:
        assert self._socket is not None
        while not self._stopping.is_set():
            try:
                connection, _ = self._socket.accept()
            except OSError:
                break
            if self._stopping.is_set():
                connection.close()
                break
            self.stats.bump("connections")
            handler = threading.Thread(
                target=self._handle_connection,
                args=(connection,),
                name="repro-serve-conn",
                daemon=True,
            )
            with self._handlers_lock:
                self._handlers = [
                    t for t in self._handlers if t.is_alive()
                ]
                self._handlers.append(handler)
            handler.start()

    def _handle_connection(self, connection: socket.socket) -> None:
        try:
            reader = connection.makefile("rb")
            while not self._stopping.is_set():
                line = reader.readline(protocol.MAX_LINE_BYTES + 1)
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                response, shutdown = self._handle_line(line)
                try:
                    connection.sendall(protocol.encode(response))
                except OSError:
                    break
                if shutdown:
                    # Respond first, then stop from a thread that is
                    # not among the handlers stop() joins.
                    threading.Thread(
                        target=self.stop, daemon=True
                    ).start()
                    break
        finally:
            try:
                connection.close()
            except OSError:
                pass

    def _handle_line(self, line: bytes) -> tuple[dict, bool]:
        """One request line to one response dict (+ shutdown flag)."""
        self.stats.bump("requests")
        request_id = None
        try:
            request = protocol.decode(line)
            request_id = request.get("id")
            response, shutdown = self._dispatch(request)
            if request_id is not None:
                response["id"] = request_id
            self.stats.bump("served")
            return response, shutdown
        except ReproError as error:
            self.stats.bump("errors")
            return protocol.error_response(error, request_id), False

    def _dispatch(self, request: dict) -> tuple[dict, bool]:
        op = request["op"]
        if op == "ping":
            return {"ok": True, "pong": True}, False
        if op == "views":
            return {"ok": True, "views": self._views()}, False
        if op == "union":
            return self._op_union(request), False
        if op == "health":
            return {"ok": True, "health": self.mediator.health()}, False
        if op == "stats":
            return {"ok": True, "stats": self._stats()}, False
        if op == "shutdown":
            return {"ok": True, "stopping": True}, True
        raise UnknownOperation(f"unknown operation {op!r}")

    # -- operations ------------------------------------------------------

    def _views(self) -> dict:
        return {
            name: {
                "sources": list(registration.source_names),
                "dtd": serialize_dtd(registration.dtd),
            }
            for name, registration in sorted(
                self.mediator.union_views.items()
            )
        }

    def _breakers_all_open(self) -> bool:
        transports = self.mediator.transports.values()
        if not transports:
            return False
        return all(
            transport.breaker.state is BreakerState.OPEN
            for transport in transports
        )

    def _op_union(self, request: dict) -> dict:
        view = request.get("view")
        if not isinstance(view, str):
            raise protocol.ProtocolError(
                "union request needs a string 'view' field"
            )
        budget = request.get("budget", self.policy.default_budget)
        if not isinstance(budget, (int, float)) or budget <= 0:
            raise protocol.ProtocolError(
                "'budget' must be a positive number of seconds"
            )
        degrade = bool(request.get("degrade", True))
        use_cache = bool(request.get("cache", True))
        if not use_cache:
            self.stats.bump("cache_bypassed")
        if self.policy.shed_when_all_open and self._breakers_all_open():
            self.stats.bump("shed")
            raise LoadShedding(
                "all source circuit breakers are open; "
                "not queueing a request that cannot be answered"
            )
        deadline = self.mediator.deadline(float(budget))
        started = self.mediator.clock.now()
        try:
            self.admission.acquire(deadline)
        except ServerOverloaded:
            self.stats.bump("dropped_queue_full")
            raise
        except QueueDeadlineExceeded:
            self.stats.bump("dropped_queue_deadline")
            raise
        try:
            document = self.mediator.materialize_union(
                view, deadline, degrade=degrade, cache=use_cache
            )
            report = self.mediator.last_degradation
            cache_outcome = self.mediator.last_cache_outcome
        finally:
            self.admission.release()
        elapsed = self.mediator.clock.now() - started
        self.latency.observe(elapsed)
        response = {
            "ok": True,
            "answer": serialize_document(document),
            "degraded": report is not None,
            "elapsed": round(elapsed, 6),
            "cache": cache_outcome,
        }
        if cache_outcome == "bypass":
            response["cache_code"] = protocol.CACHE_BYPASS
        if report is not None:
            response["skipped"] = dict(sorted(report.skipped.items()))
            response["answered"] = list(report.answered)
        return response

    def _stats(self) -> dict:
        snapshot = self.stats.snapshot()
        snapshot["inflight"] = self.admission.inflight()
        snapshot["queued"] = self.admission.queued()
        snapshot["latency"] = {
            "count": self.latency.count,
            "p50": self.latency.quantile(0.5),
            "p95": self.latency.quantile(0.95),
            "max": self.latency.max,
        }
        if self.mediator.matview is not None:
            snapshot["matview"] = self.mediator.matview.info()
        return snapshot
