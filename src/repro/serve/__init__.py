"""``repro serve``: a concurrent front end for a warm mediator.

The mediator of the paper is an *on-demand* system — views are virtual
and queries arrive continuously — so serving it means keeping one
mediator warm (plans compiled, document indexes built, fan-out pool
up) behind a socket and bounding what concurrency can do to it.  This
package provides exactly that, on the standard library alone:

* :mod:`repro.serve.protocol` -- the JSON-line wire protocol
* :mod:`repro.serve.server`   -- :class:`MediatorServer`,
  :class:`ServePolicy`, :class:`AdmissionController`
* :mod:`repro.serve.client`   -- :class:`ServeClient` and the
  ``bench-serve`` load driver
* :mod:`repro.serve.workloads` -- the built-in servable federations

See docs/SERVING.md.
"""

from .client import (
    RequestFailed,
    ServeClient,
    ServeClientError,
    run_bench,
)
from .protocol import (
    LoadShedding,
    ProtocolError,
    QueueDeadlineExceeded,
    ServerOverloaded,
    UnknownOperation,
)
from .server import (
    AdmissionController,
    MediatorServer,
    ServePolicy,
    ServerStats,
)
from .workloads import (
    SERVE_WORKLOADS,
    VIEW_NAME,
    build_paper_federation,
    build_serve_workload,
)

__all__ = [
    "AdmissionController",
    "LoadShedding",
    "MediatorServer",
    "ProtocolError",
    "QueueDeadlineExceeded",
    "RequestFailed",
    "SERVE_WORKLOADS",
    "ServeClient",
    "ServeClientError",
    "ServePolicy",
    "ServerOverloaded",
    "ServerStats",
    "UnknownOperation",
    "VIEW_NAME",
    "build_paper_federation",
    "build_serve_workload",
    "run_bench",
]
