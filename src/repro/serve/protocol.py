"""The ``repro serve`` wire protocol: one JSON object per line.

Deliberately minimal — standard-library ``json`` over a TCP stream,
newline-framed, UTF-8 — so any language (or ``nc`` plus a steady hand)
can speak it.  A session is a sequence of request lines, each answered
by exactly one response line, in order:

.. code-block:: text

    -> {"op": "union", "view": "journals", "budget": 0.5, "id": 1}
    <- {"id": 1, "ok": true, "answer": "<journals>...</journals>",
        "degraded": false, "elapsed": 0.004}

Requests
--------

``op`` selects the operation; ``id``, when present, is echoed verbatim
in the response so clients can pipeline:

* ``ping``      -- liveness probe
* ``views``     -- the served union views and their inferred DTDs
* ``union``     -- materialize a union view (``view``, optional
  ``budget`` seconds and ``degrade`` flag)
* ``health``    -- per-source transport health snapshots
* ``stats``     -- server counters: admission, shedding, latencies
* ``shutdown``  -- stop the server after responding

Responses
---------

``{"ok": true, ...}`` on success.  On failure ``{"ok": false,
"error": {"code": ..., "message": ...}}`` where ``code`` is a
diagnostic code from the shared namespace (``docs/DIAGNOSTICS.md``):
the server's own ``SRV``-prefixed admission codes below, or the
mediator/transport code of the underlying failure (``MED003``, ...).
"""

from __future__ import annotations

import json

from ..errors import ReproError, register_diagnostic_code

#: requests larger than this are rejected before parsing (the protocol
#: carries queries-by-name, not documents; a longer line is a bug or abuse)
MAX_LINE_BYTES = 64 * 1024


class ProtocolError(ReproError):
    """A request line that could not be understood."""

    code = register_diagnostic_code(
        "SRV001", "malformed serve-protocol request"
    )


class UnknownOperation(ReproError):
    """A well-formed request naming an operation the server lacks."""

    code = register_diagnostic_code(
        "SRV002", "unknown serve-protocol operation"
    )


class ServerOverloaded(ReproError):
    """Admission control dropped the request: the wait queue is full."""

    code = register_diagnostic_code(
        "SRV003", "server overloaded: admission queue full"
    )


class QueueDeadlineExceeded(ReproError):
    """The request's budget expired while waiting for an inflight slot."""

    code = register_diagnostic_code(
        "SRV004", "request deadline expired in the admission queue"
    )


class LoadShedding(ReproError):
    """The server is shedding: every source's circuit breaker is open."""

    code = register_diagnostic_code(
        "SRV005", "load shed: all source circuit breakers open"
    )


#: Informational (nothing raises it): a union request carried
#: ``"cache": false``, so the answer was recomputed even though the
#: server's materialized-view cache may have held it.  Labels the
#: ``cache_code`` response field and the ``cache_bypassed`` stat.
CACHE_BYPASS = register_diagnostic_code(
    "SRV008", "union request bypassed the materialized-view cache"
)


def encode(message: dict) -> bytes:
    """One response/request line, newline-terminated UTF-8 JSON."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes) -> dict:
    """Parse one request line into a dict; raise :class:`ProtocolError`.

    The operation name is validated here (it must be a string); its
    existence is the dispatcher's concern.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"request is not a JSON line: {error}")
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request needs a string 'op' field")
    return message


def error_response(error: Exception, request_id=None) -> dict:
    """The failure response for an exception (library errors carry codes)."""
    code = getattr(error, "code", "REPRO001")
    response = {
        "ok": False,
        "error": {"code": code, "message": str(error)},
    }
    if request_id is not None:
        response["id"] = request_id
    return response
