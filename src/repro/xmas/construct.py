"""CONSTRUCT queries -- the "Structuring" in XML Matching And Structuring.

The paper's inference covers pick-element queries only; full XMAS (like
XML-QL) can *restructure*: build new elements from the bound variables
of each match.  This module implements a well-defined CONSTRUCT subset
-- one template instantiated once per distinct binding projection --
and :mod:`repro.inference.construct` extends the view-DTD inference to
it (the "more powerful view definition languages" direction the paper
anticipates for its quality framework).

Syntax::

    pairs =
      CONSTRUCT <pair> $F $L </pair>
      WHERE <department>
              <professor> F:<firstName/> L:<lastName/> </>
            </>

Template grammar: elements contain nested template elements, ``$VAR``
slots (deep copies of the bound element), or one quoted text literal
(``"..."``).  Semantics: enumerate the WHERE bindings, project onto
the template's variables, de-duplicate, order rows by the document
positions of the bound elements (lexicographically, in template
variable order), and instantiate the template once per row.  The view
document's root is named after the view and holds the rows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import QueryAnalysisError
from ..xmlmodel import Document, Element, fresh_id
from .ast import Condition, Query
from .evaluator import bindings as enumerate_bindings
from .parser import _Scanner, _parse_condition


@dataclass(frozen=True)
class Slot:
    """``$VAR``: a copy of the element bound to ``variable``."""

    variable: str


@dataclass(frozen=True)
class Text:
    """A quoted text literal producing PCDATA content."""

    value: str


@dataclass(frozen=True)
class Template:
    """A constructor element.

    ``children`` holds nested :class:`Template` / :class:`Slot` items,
    or exactly one :class:`Text` (no mixed content, matching the
    model).
    """

    name: str
    children: tuple["Template | Slot | Text", ...] = ()

    def __post_init__(self) -> None:
        texts = [c for c in self.children if isinstance(c, Text)]
        if texts and len(self.children) != 1:
            raise QueryAnalysisError(
                f"template <{self.name}> mixes text with other content"
            )

    def variables(self) -> tuple[str, ...]:
        """Slot variables, left-to-right, first occurrence only."""
        seen: list[str] = []

        def visit(node: "Template | Slot | Text") -> None:
            if isinstance(node, Slot):
                if node.variable not in seen:
                    seen.append(node.variable)
            elif isinstance(node, Template):
                for child in node.children:
                    visit(child)

        visit(self)
        return tuple(seen)

    def template_names(self) -> frozenset[str]:
        """All constructor element names in the template."""
        names = {self.name}
        for child in self.children:
            if isinstance(child, Template):
                names |= child.template_names()
        return frozenset(names)


@dataclass(frozen=True)
class ConstructQuery:
    """A CONSTRUCT query: template + tree condition + inequalities."""

    view_name: str
    template: Template
    root: Condition
    inequalities: frozenset[frozenset[str]] = frozenset()
    source: str | None = None

    def __post_init__(self) -> None:
        bound = self.root.variables()
        missing = [v for v in self.template.variables() if v not in bound]
        if missing:
            raise QueryAnalysisError(
                f"template uses unbound variables {missing} "
                f"(bound: {sorted(bound)})"
            )
        if not self.template.variables():
            raise QueryAnalysisError(
                "template binds no variables; the view would repeat one "
                "constant row"
            )

    def as_pick_query(self) -> Query:
        """A pick-element facade over the same WHERE clause.

        The tightening algorithm only needs the condition tree; any
        template variable serves as the nominal pick.
        """
        return Query(
            self.view_name,
            self.template.variables()[0],
            self.root,
            self.inequalities,
            self.source,
        )


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_VAR_RE = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)")


def _parse_template(scanner: _Scanner) -> Template:
    scanner.expect("<")
    name = scanner.read_word()
    scanner.skip_ws()
    if scanner.try_take("/>"):
        return Template(name, ())
    scanner.expect(">")
    children: list[Template | Slot | Text] = []
    while True:
        scanner.skip_ws()
        if scanner.at_end():
            raise scanner.error(f"unterminated template <{name}>")
        if scanner.text.startswith("</", scanner.pos):
            scanner.pos += 2
            scanner.skip_ws()
            if not scanner.try_take(">"):
                scanner.read_word()
                scanner.expect(">")
            break
        if scanner.text.startswith("<", scanner.pos):
            children.append(_parse_template(scanner))
            continue
        if scanner.text.startswith("$", scanner.pos):
            match = _VAR_RE.match(scanner.text, scanner.pos)
            if not match:
                raise scanner.error("expected a variable name after '$'")
            scanner.pos = match.end()
            children.append(Slot(match.group(1)))
            continue
        if scanner.text.startswith('"', scanner.pos):
            end = scanner.text.find('"', scanner.pos + 1)
            if end < 0:
                raise scanner.error("unterminated string literal")
            children.append(Text(scanner.text[scanner.pos + 1:end]))
            scanner.pos = end + 1
            continue
        raise scanner.error(
            "expected a nested template, $variable, or \"text\""
        )
    try:
        return Template(name, tuple(children))
    except QueryAnalysisError as error:
        raise scanner.error(str(error))


def parse_construct_query(text: str, source: str | None = None) -> ConstructQuery:
    """Parse a CONSTRUCT query."""
    scanner = _Scanner(text)
    view_name = "answer"
    first = scanner.peek_word()
    if first and first.upper() != "CONSTRUCT":
        saved = scanner.pos
        word = scanner.read_word()
        if scanner.try_take("="):
            view_name = word
        else:
            scanner.pos = saved
    keyword = scanner.read_word()
    if keyword.upper() != "CONSTRUCT":
        raise scanner.error("expected CONSTRUCT")
    template = _parse_template(scanner)
    keyword = scanner.read_word()
    if keyword.upper() != "WHERE":
        raise scanner.error("expected WHERE")
    root = _parse_condition(scanner)
    inequalities: set[frozenset[str]] = set()
    while not scanner.at_end():
        keyword = scanner.read_word()
        if keyword.upper() != "AND":
            raise scanner.error(f"expected AND, found {keyword!r}")
        left = scanner.read_word()
        scanner.expect("!=")
        right = scanner.read_word()
        if left == right:
            raise scanner.error(
                f"inequality {left} != {right} is trivially false"
            )
        inequalities.add(frozenset((left, right)))
    try:
        return ConstructQuery(
            view_name, template, root, frozenset(inequalities), source
        )
    except QueryAnalysisError as error:
        raise scanner.error(str(error))


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _instantiate(
    node: Template | Slot | Text, row: dict[str, Element]
) -> Element:
    if isinstance(node, Slot):
        return row[node.variable].deep_copy(fresh_ids=True)
    if isinstance(node, Text):  # pragma: no cover - guarded by Template
        raise AssertionError("Text handled by the parent template")
    if len(node.children) == 1 and isinstance(node.children[0], Text):
        return Element(node.name, node.children[0].value, fresh_id())
    return Element(
        node.name,
        [_instantiate(child, row) for child in node.children],
        fresh_id(),
    )


def evaluate_construct(query: ConstructQuery, document: Document) -> Document:
    """Run a CONSTRUCT query over one document."""
    variables = query.template.variables()
    positions = {
        element.id: position
        for position, element in enumerate(document.iter())
    }
    rows: dict[tuple[str, ...], dict[str, Element]] = {}
    pick_facade = query.as_pick_query()
    for env in enumerate_bindings(pick_facade, document):
        if any(variable not in env for variable in variables):
            continue
        key = tuple(env[variable].id for variable in variables)
        rows.setdefault(key, {v: env[v] for v in variables})
    ordered = sorted(
        rows.values(),
        key=lambda row: tuple(positions[row[v].id] for v in variables),
    )
    children = [_instantiate(query.template, row) for row in ordered]
    return Document(Element(query.view_name, children, fresh_id()))


def evaluate_construct_many(
    query: ConstructQuery, documents: list[Document]
) -> Document:
    """Run a CONSTRUCT query over several documents (rows concatenate)."""
    children: list[Element] = []
    for document in documents:
        result = evaluate_construct(query, document)
        children.extend(result.root.children)
    return Document(Element(query.view_name, children, fresh_id()))
