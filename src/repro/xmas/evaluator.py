"""Evaluation of pick-element XMAS queries over documents.

Semantics (Section 2.1):

* The tree condition is matched against the *document root*.
* Nesting in the condition means direct-child containment; a
  ``recursive`` step matches a chain of nested elements and applies its
  child conditions at the chain's end.
* Sibling conditions bind to pairwise-distinct children (the paper's
  standing assumption); explicit ``AND v1 != v2`` clauses additionally
  constrain variable bindings to distinct elements (ID inequality, the
  only negation in the language).
* The answer is a new document whose root is named after the view and
  whose content is the elements bound to the pick variable, in document
  order (depth-first left-to-right), each element contributed once.

Two execution backends implement these semantics (selected by
``REPRO_EVAL_BACKEND`` or :func:`set_eval_backend`, mirroring the
language kernel's ``REPRO_EQUIV_BACKEND``):

* ``"compiled"`` (the default) -- :mod:`repro.xmas.engine`: compile the
  query once into a plan and evaluate by pick-projection over a
  document index;
* ``"legacy"`` -- this module's backtracking tree matcher, kept as the
  differential-testing oracle.

Both backends return picks in document order, so results are
deterministic and identical across backends.
"""

from __future__ import annotations

import os
from typing import Iterator

from ..xmlmodel import Document, Element, fresh_id
from .ast import Condition, Query

Binding = dict[str, Element]

# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------

_BACKENDS = ("compiled", "legacy")
_backend = os.environ.get("REPRO_EVAL_BACKEND", "compiled")


def set_eval_backend(name: str) -> str:
    """Set the process-wide evaluation backend; returns the old one."""
    global _backend
    if name not in _BACKENDS:
        raise ValueError(f"unknown evaluation backend {name!r}")
    old, _backend = _backend, name
    return old


def eval_backend() -> str:
    """The current process-wide evaluation backend."""
    return _backend


def _check_inequalities(env: Binding, query: Query) -> bool:
    for pair in query.inequalities:
        first, second = tuple(pair)
        if first in env and second in env and env[first].id == env[second].id:
            return False
    return True


class _Matcher:
    """Backtracking tree-condition matcher with memoized subtree tests."""

    def __init__(self, query: Query) -> None:
        self.query = query
        #: memo[(node id, element id)] -> does the subtree match at all
        #: (ignoring variable constraints)?  Used to prune the search.
        self._memo: dict[tuple[int, str], bool] = {}

    # -- pure structural match (no variables), used for pruning ---------

    def may_match(self, node: Condition, element: Element) -> bool:
        key = (id(node), element.id)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._may_match_here(node, element)
        if not result and node.recursive and node.test.accepts(element.name):
            result = any(
                self.may_match(node, child) for child in element.children
            )
        self._memo[key] = result
        return result

    def _may_match_here(self, node: Condition, element: Element) -> bool:
        if not node.test.accepts(element.name):
            return False
        if node.pcdata is not None:
            return element.is_pcdata and element.text == node.pcdata
        if not node.children:
            return True
        if element.is_pcdata:
            return False
        return self._children_assignable(node.children, element.children)

    def _children_assignable(
        self,
        conditions: tuple[Condition, ...],
        children: list[Element],
    ) -> bool:
        """Injective matching of conditions to children (backtracking)."""

        def assign(index: int, used: frozenset[int]) -> bool:
            if index == len(conditions):
                return True
            condition = conditions[index]
            for position, child in enumerate(children):
                if position in used:
                    continue
                if self.may_match(condition, child):
                    if assign(index + 1, used | {position}):
                        return True
            return False

        return assign(0, frozenset())

    # -- full search producing variable environments --------------------

    def search(
        self,
        node: Condition,
        element: Element,
        env: Binding,
        picked: set[str] | None = None,
    ) -> Iterator[Binding]:
        """All environments extending ``env`` that match ``node`` at
        ``element`` (including chain descents for recursive steps).

        ``picked`` enables the pick-id short-circuit used by
        :func:`legacy_picked_elements`: a branch that binds the pick
        variable to an already-collected element is cut immediately --
        its completions could only re-derive a known pick.  The cut is
        sound unconditionally because it only affects which *pick*
        elements are reported, never whether one is.
        """
        if not self.may_match(node, element):
            return
        if node.test.accepts(element.name):
            yield from self._search_here(node, element, env, picked)
        if node.recursive and node.test.accepts(element.name):
            for child in element.children:
                yield from self.search(node, child, env, picked)

    def _search_here(
        self,
        node: Condition,
        element: Element,
        env: Binding,
        picked: set[str] | None,
    ) -> Iterator[Binding]:
        if not self._may_match_here(node, element):
            return
        if node.variable is not None:
            existing = env.get(node.variable)
            if existing is not None and existing.id != element.id:
                return
            if (
                picked is not None
                and node.variable == self.query.pick_variable
                and element.id in picked
            ):
                return
            env = dict(env)
            env[node.variable] = element
            if not _check_inequalities(env, self.query):
                return
        if not node.children:
            yield env
            return
        yield from self._assign_children(
            node.children, element.children, 0, frozenset(), env, picked
        )

    def _assign_children(
        self,
        conditions: tuple[Condition, ...],
        children: list[Element],
        index: int,
        used: frozenset[int],
        env: Binding,
        picked: set[str] | None,
    ) -> Iterator[Binding]:
        if index == len(conditions):
            yield env
            return
        condition = conditions[index]
        for position, child in enumerate(children):
            if position in used:
                continue
            for extended in self.search(condition, child, env, picked):
                yield from self._assign_children(
                    conditions,
                    children,
                    index + 1,
                    used | {position},
                    extended,
                    picked,
                )


def bindings(query: Query, document: Document) -> Iterator[Binding]:
    """All complete variable environments matching the query.

    Always the full enumeration (no pick short-circuit): construct
    queries and the reference tests consume every environment.
    """
    matcher = _Matcher(query)
    yield from matcher.search(query.root, document.root, {})


def legacy_picked_elements(query: Query, document: Document) -> list[Element]:
    """The legacy backend's pick set, document order, no repeats.

    Enumerates binding environments, short-circuiting every branch
    whose pick binding is already collected: once the pick variable's
    element is determined and known, the remaining sibling assignments
    cannot add a new pick id, so they are never enumerated.
    """
    picked_ids: set[str] = set()
    matcher = _Matcher(query)
    for env in matcher.search(query.root, document.root, {}, picked_ids):
        element = env.get(query.pick_variable)
        if element is not None:
            picked_ids.add(element.id)
    return [
        element for element in document.iter() if element.id in picked_ids
    ]


def picked_elements(query: Query, document: Document) -> list[Element]:
    """Elements bound to the pick variable, document order, no repeats."""
    if _backend == "compiled":
        from .engine import compiled_picked_elements

        return compiled_picked_elements(query, document)
    return legacy_picked_elements(query, document)


def _view_document(query: Query, picks: list[Element]) -> Document:
    root = Element(
        query.view_name,
        [element.deep_copy(fresh_ids=True) for element in picks],
        fresh_id(),
    )
    return Document(root)


def evaluate(query: Query, document: Document) -> Document:
    """Run the query: the view document with the picked elements.

    The picked elements are deep-copied with fresh IDs so the result
    is itself a well-formed document (unique IDs).
    """
    return _view_document(query, picked_elements(query, document))


def evaluate_many(query: Query, documents: list[Document]) -> Document:
    """Run the query over several documents of the same source.

    Pick-element queries apply to one source; a source may hold many
    documents, whose picks are concatenated in document order.  Under
    the compiled backend the query is compiled once and the plan reused
    across every document.
    """
    if _backend == "compiled":
        from .engine import evaluate_many_compiled

        return evaluate_many_compiled(query, documents)
    picks: list[Element] = []
    for document in documents:
        picks.extend(legacy_picked_elements(query, document))
    return _view_document(query, picks)
