"""XMAS pick-element queries (Section 2.1): AST, parser, evaluator.

The class of queries the paper's view-DTD inference handles: a single
pick variable, one tree condition over one source, name disjunctions,
PCDATA equality conditions, and ID inequalities as the only negation.
"""

from .analysis import (
    PickPath,
    check_inference_applicable,
    condition_size,
    has_recursive_steps,
    pick_path,
    resolve_against_dtd,
)
from .ast import (
    WILDCARD,
    Condition,
    NameTest,
    Query,
    cond,
    expand_wildcards,
    name_test,
    query,
)
from .construct import (
    ConstructQuery,
    Slot,
    Template,
    Text,
    evaluate_construct,
    evaluate_construct_many,
    parse_construct_query,
)
from .engine import (
    CompiledPlan,
    PlanNode,
    compile_query,
    compiled_picked_elements,
    evaluate_compiled,
    evaluate_many_compiled,
)
from .evaluator import (
    bindings,
    eval_backend,
    evaluate,
    evaluate_many,
    legacy_picked_elements,
    picked_elements,
    set_eval_backend,
)
from .parser import parse_query

__all__ = [
    "WILDCARD",
    "CompiledPlan",
    "Condition",
    "ConstructQuery",
    "NameTest",
    "PickPath",
    "PlanNode",
    "Query",
    "Slot",
    "Template",
    "Text",
    "bindings",
    "check_inference_applicable",
    "compile_query",
    "compiled_picked_elements",
    "cond",
    "condition_size",
    "eval_backend",
    "evaluate",
    "evaluate_compiled",
    "evaluate_construct",
    "evaluate_construct_many",
    "evaluate_many",
    "evaluate_many_compiled",
    "expand_wildcards",
    "has_recursive_steps",
    "legacy_picked_elements",
    "name_test",
    "parse_construct_query",
    "parse_query",
    "pick_path",
    "picked_elements",
    "query",
    "resolve_against_dtd",
    "set_eval_backend",
]
