"""Parser for the paper's XMAS surface syntax.

Accepted form (whitespace-insensitive)::

    withJournals =
      SELECT P
      WHERE <department>
              <name>CS</name>
              P:<professor | gradStudent>
                <publication id=Pub1><journal/></publication>
                <publication id=Pub2><journal/></publication>
              </>
            </>
      AND Pub1 != Pub2

Details:

* ``V:`` before an element pattern binds variable ``V``; ``id=V``
  inside the open tag does the same (the paper uses both notations).
* The tag-name position holds a name, a ``|``-disjunction of names, a
  ``*`` wildcard, or ``name*`` for a recursive path step.
* Closing tags may be ``</>`` or ``</name>``; ``<name/>`` self-closes.
* Bare text between tags is a PCDATA equality condition.
* ``AND X != Y`` clauses add ID inequalities.
* An optional leading ``viewName =`` names the view; otherwise the
  view is called ``answer``.
"""

from __future__ import annotations

import re

from ..errors import QuerySyntaxError
from .ast import Condition, NameTest, Query, WILDCARD

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def location(self) -> tuple[int, int]:
        consumed = self.text[: self.pos]
        return consumed.count("\n") + 1, self.pos - (consumed.rfind("\n") + 1) + 1

    def error(self, message: str) -> QuerySyntaxError:
        line, column = self.location()
        return QuerySyntaxError(message, line, column)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek_word(self) -> str:
        self.skip_ws()
        match = _NAME_RE.match(self.text, self.pos)
        return match.group() if match else ""

    def read_word(self) -> str:
        self.skip_ws()
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise self.error("expected a name")
        self.pos = match.end()
        return match.group()

    def expect(self, literal: str) -> None:
        self.skip_ws()
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def try_take(self, literal: str) -> bool:
        self.skip_ws()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False


def _parse_name_test(scanner: _Scanner) -> tuple[NameTest, bool]:
    """Parse the tag-name position; returns (test, recursive)."""
    scanner.skip_ws()
    if scanner.try_take("*"):
        return WILDCARD, False
    names = [scanner.read_word()]
    recursive = False
    while True:
        scanner.skip_ws()
        if scanner.pos < len(scanner.text) and scanner.text[scanner.pos] == "*":
            # name* : recursive step (only valid for a single name or
            # after a full disjunction).
            scanner.pos += 1
            recursive = True
            continue
        if scanner.try_take("|"):
            names.append(scanner.read_word())
            continue
        break
    return NameTest(tuple(names)), recursive


def _parse_condition(scanner: _Scanner) -> Condition:
    variable: str | None = None
    scanner.skip_ws()
    # Optional "V:" binder before the pattern.
    word_match = _NAME_RE.match(scanner.text, scanner.pos)
    if word_match:
        after = word_match.end()
        rest = scanner.text[after:]
        if rest.lstrip().startswith(":"):
            variable = word_match.group()
            scanner.pos = after
            scanner.expect(":")
    scanner.expect("<")
    test, recursive = _parse_name_test(scanner)
    scanner.skip_ws()
    # Optional id=Var attribute.
    while scanner.peek_word() and not scanner.text.startswith(
        (">", "/"), scanner.pos
    ):
        attr = scanner.read_word()
        if attr.lower() != "id":
            raise scanner.error(f"unknown pattern attribute {attr!r}")
        scanner.expect("=")
        bound = scanner.read_word()
        if variable is not None and variable != bound:
            raise scanner.error(
                f"pattern binds both {variable!r} and id={bound!r}"
            )
        variable = bound
        scanner.skip_ws()
    if scanner.try_take("/>"):
        return Condition(test, variable, (), None, recursive)
    scanner.expect(">")

    children: list[Condition] = []
    text_parts: list[str] = []
    while True:
        scanner.skip_ws()
        if scanner.at_end():
            raise scanner.error("unterminated pattern")
        # Closing tag?
        if scanner.text.startswith("</", scanner.pos):
            scanner.pos += 2
            scanner.skip_ws()
            if not scanner.try_take(">"):
                scanner.read_word()  # tolerate </name>
                scanner.expect(">")
            break
        # Child pattern (possibly with binder)?
        if _looks_like_pattern(scanner):
            children.append(_parse_condition(scanner))
            continue
        # Otherwise: PCDATA condition text up to the next '<'.
        next_lt = scanner.text.find("<", scanner.pos)
        if next_lt < 0:
            raise scanner.error("unterminated pattern")
        text_parts.append(scanner.text[scanner.pos:next_lt].strip())
        scanner.pos = next_lt

    pcdata = " ".join(part for part in text_parts if part) or None
    if pcdata is not None and children:
        raise scanner.error("mixed text and child patterns in a condition")
    return Condition(test, variable, tuple(children), pcdata, recursive)


def _looks_like_pattern(scanner: _Scanner) -> bool:
    """Lookahead: a '<' opener or a 'V:<' binder prefix."""
    scanner.skip_ws()
    if scanner.text.startswith("<", scanner.pos):
        return not scanner.text.startswith("</", scanner.pos)
    match = _NAME_RE.match(scanner.text, scanner.pos)
    if not match:
        return False
    rest = scanner.text[match.end():].lstrip()
    return rest.startswith(":") and rest[1:].lstrip().startswith("<")


def parse_query(text: str, source: str | None = None) -> Query:
    """Parse an XMAS pick-element query."""
    scanner = _Scanner(text)
    view_name = "answer"
    # Optional "viewName =" header.
    first = scanner.peek_word()
    if first and first.upper() != "SELECT":
        saved = scanner.pos
        word = scanner.read_word()
        if scanner.try_take("="):
            view_name = word
        else:
            scanner.pos = saved
    keyword = scanner.read_word()
    if keyword.upper() != "SELECT":
        raise scanner.error("expected SELECT")
    pick = scanner.read_word()
    keyword = scanner.read_word()
    if keyword.upper() != "WHERE":
        raise scanner.error("expected WHERE")
    root = _parse_condition(scanner)

    inequalities: set[frozenset[str]] = set()
    while not scanner.at_end():
        keyword = scanner.read_word()
        if keyword.upper() != "AND":
            raise scanner.error(f"expected AND, found {keyword!r}")
        left = scanner.read_word()
        scanner.expect("!=")
        right = scanner.read_word()
        if left == right:
            raise scanner.error(f"inequality {left} != {right} is trivially false")
        inequalities.add(frozenset((left, right)))
    return Query(view_name, pick, root, frozenset(inequalities), source)
