"""Abstract syntax for pick-element XMAS queries (Section 2.1).

A pick-element query has a SELECT clause with a single *pick variable*
and a WHERE clause with one tree condition over one source, plus ID
inequalities (the only permitted negation).  Element-name positions may
hold a constant, a disjunction of constants, or a wildcard variable
(which the preprocessing stage of the paper replaces by the disjunction
of all source names -- :func:`expand_wildcards`).

The elements binding to the pick variable are grouped, in document
order (depth-first left-to-right), under a new root named after the
view.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from ..errors import QueryAnalysisError


@dataclass(frozen=True)
class NameTest:
    """The element-name position of a condition.

    ``names`` is a disjunction of constants; ``None`` means a wildcard
    (an element-name variable not otherwise constrained), which must be
    expanded against a DTD before inference.
    """

    names: tuple[str, ...] | None

    def __post_init__(self) -> None:
        if self.names is not None and not self.names:
            raise ValueError("a name test needs at least one name")

    @property
    def is_wildcard(self) -> bool:
        return self.names is None

    def accepts(self, name: str) -> bool:
        """Does this test match the given element name?"""
        return self.names is None or name in self.names

    def __str__(self) -> str:
        if self.names is None:
            return "*"
        return " | ".join(self.names)


def name_test(*names: str) -> NameTest:
    """A constant or disjunctive name test."""
    return NameTest(tuple(names))


WILDCARD = NameTest(None)


@dataclass(frozen=True)
class Condition:
    """A node of the tree condition.

    Matching an element requires: the name test accepts the element's
    name; the PCDATA constraint (if any) equals the element's text; and
    each child condition is matched by a *distinct* direct child
    (the paper's assumption that sibling conditions bind to different
    elements).  A ``recursive`` condition matches a chain of one or
    more nested elements all accepted by the name test, the chain
    length being chosen existentially and the child conditions applying
    at the chain's last element (Example 3.5's ``<section*>``).
    """

    test: NameTest
    variable: str | None = None
    children: tuple["Condition", ...] = ()
    pcdata: str | None = None
    recursive: bool = False

    def __post_init__(self) -> None:
        if self.pcdata is not None and self.children:
            raise ValueError("a condition cannot require both text and children")

    def iter_nodes(self) -> Iterator["Condition"]:
        """Preorder traversal of the condition tree."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def variables(self) -> frozenset[str]:
        """All variables bound anywhere in the subtree."""
        return frozenset(
            node.variable for node in self.iter_nodes() if node.variable
        )

    def __str__(self) -> str:
        prefix = f"{self.variable}:" if self.variable else ""
        star = "*" if self.recursive else ""
        if self.pcdata is not None:
            return f"{prefix}<{self.test}{star}>{self.pcdata}</>"
        if not self.children:
            return f"{prefix}<{self.test}{star}/>"
        inner = " ".join(str(child) for child in self.children)
        return f"{prefix}<{self.test}{star}> {inner} </>"


def cond(
    *names: str,
    var: str | None = None,
    children: tuple[Condition, ...] | list[Condition] = (),
    pcdata: str | None = None,
    recursive: bool = False,
) -> Condition:
    """Convenience condition constructor.

    ``cond()`` with no names builds a wildcard test.
    """
    test = WILDCARD if not names else name_test(*names)
    return Condition(test, var, tuple(children), pcdata, recursive)


@dataclass(frozen=True)
class Query:
    """A pick-element XMAS query / view definition.

    ``inequalities`` holds unordered variable pairs constrained by
    ``AND v1 != v2`` (ID inequality, the only negation in the
    language).  ``source`` optionally names the source the condition
    applies to (used by the mediator; inference only needs the DTD).
    """

    view_name: str
    pick_variable: str
    root: Condition
    inequalities: frozenset[frozenset[str]] = frozenset()
    source: str | None = None

    def __post_init__(self) -> None:
        bound = self.root.variables()
        if self.pick_variable not in bound:
            raise QueryAnalysisError(
                f"pick variable {self.pick_variable!r} is not bound in the "
                f"WHERE clause (bound: {sorted(bound)})"
            )
        for pair in self.inequalities:
            if len(pair) != 2:
                raise QueryAnalysisError(
                    f"inequality must relate two distinct variables: {sorted(pair)}"
                )
            missing = pair - bound
            if missing:
                raise QueryAnalysisError(
                    f"inequality mentions unbound variables {sorted(missing)}"
                )

    def pick_nodes(self) -> list[Condition]:
        """Condition nodes binding the pick variable (normally one)."""
        return [
            node
            for node in self.root.iter_nodes()
            if node.variable == self.pick_variable
        ]

    def __str__(self) -> str:
        lines = [f"{self.view_name} =", f"  SELECT {self.pick_variable}", "  WHERE"]
        lines.append(f"    {self.root}")
        for pair in sorted(tuple(sorted(p)) for p in self.inequalities):
            lines.append(f"  AND {pair[0]} != {pair[1]}")
        return "\n".join(lines)


def query(
    view_name: str,
    pick_variable: str,
    root: Condition,
    inequalities: Iterator[tuple[str, str]] | list[tuple[str, str]] = (),
    source: str | None = None,
) -> Query:
    """Convenience query constructor with pair-tuple inequalities."""
    return Query(
        view_name,
        pick_variable,
        root,
        frozenset(frozenset(pair) for pair in inequalities),
        source,
    )


def expand_wildcards(q: Query, names: frozenset[str] | list[str]) -> Query:
    """Replace wildcard name tests with the disjunction of all names.

    This is the paper's preprocessing step: "we replace each element
    name variable with a disjunction of all names in the source DTDs".
    """
    all_names = tuple(sorted(names))
    if not all_names:
        raise QueryAnalysisError("cannot expand wildcards against an empty DTD")

    def rebuild(node: Condition) -> Condition:
        test = NameTest(all_names) if node.test.is_wildcard else node.test
        return replace(
            node,
            test=test,
            children=tuple(rebuild(child) for child in node.children),
        )

    return replace(q, root=rebuild(q.root))
