"""Static analysis of pick-element queries.

The inference algorithms need to know (a) whether the query uses
recursive path steps (outside their scope, Section 4.4 fn. 9), (b) the
*pick path* -- the chain of conditions from the root to the pick node
(the ``L_0 ... L_k`` of Section 4.4), and (c) whether the query is a
well-formed pick-element query with respect to a DTD.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtd import Dtd
from ..errors import QueryAnalysisError, UnknownNameError
from .ast import Condition, Query, expand_wildcards


def has_recursive_steps(query: Query) -> bool:
    """Does any condition use a recursive (starred) path step?"""
    return any(node.recursive for node in query.root.iter_nodes())


@dataclass(frozen=True)
class PickPath:
    """The root-to-pick chain of conditions.

    ``steps[0]`` is the query root and ``steps[-1]`` is the pick node;
    ``off_path_children[i]`` are the children of ``steps[i]`` that are
    *not* on the path (the ``condition_{i,j}`` side conditions of the
    Section 4.4 query form).
    """

    steps: tuple[Condition, ...]
    off_path_children: tuple[tuple[Condition, ...], ...]

    @property
    def pick(self) -> Condition:
        return self.steps[-1]

    @property
    def depth(self) -> int:
        return len(self.steps)


def pick_path(query: Query) -> PickPath:
    """Locate the unique root-to-pick path.

    Raises :class:`QueryAnalysisError` when the pick variable is bound
    at several nodes (outside the pick-element class).
    """
    picks = query.pick_nodes()
    if len(picks) != 1:
        raise QueryAnalysisError(
            f"pick variable {query.pick_variable!r} bound at "
            f"{len(picks)} nodes; pick-element queries need exactly one"
        )
    target = picks[0]

    def find(node: Condition, trail: list[Condition]) -> list[Condition] | None:
        trail = trail + [node]
        if node is target:
            return trail
        for child in node.children:
            found = find(child, trail)
            if found is not None:
                return found
        return None

    steps = find(query.root, [])
    if steps is None:  # pragma: no cover - pick_nodes guarantees presence
        raise QueryAnalysisError("pick node not reachable from the root")
    off_path = []
    for index, step in enumerate(steps):
        if index + 1 < len(steps):
            next_step = steps[index + 1]
            off_path.append(
                tuple(child for child in step.children if child is not next_step)
            )
        else:
            off_path.append(())
    return PickPath(tuple(steps), tuple(off_path))


def check_inference_applicable(query: Query) -> None:
    """Raise unless the query is in the class Section 4 handles.

    Requirements: single pick node and no recursive path steps.
    """
    if has_recursive_steps(query):
        raise QueryAnalysisError(
            "query uses recursive path steps; view DTD inference does not "
            "apply (Section 4.4, footnote 9; see also Example 3.5 on the "
            "non-existence of tightest DTDs under recursion)"
        )
    pick_path(query)  # raises on multiple pick nodes


def resolve_against_dtd(query: Query, dtd: Dtd, strict: bool = True) -> Query:
    """Preprocess a query for a DTD.

    Expands wildcard name tests to the disjunction of all DTD names
    (the paper's preprocessing).  With ``strict`` (the default for view
    registration) undeclared constant names raise; without it they are
    tolerated -- an undeclared name simply never matches, making the
    condition unsatisfiable, which is the right reading for ad-hoc
    queries hitting a view DTD.
    """
    resolved = expand_wildcards(query, dtd.names) if _has_wildcards(query) else query
    if strict:
        unknown: set[str] = set()
        for node in resolved.root.iter_nodes():
            if node.test.names is None:  # pragma: no cover - expanded above
                continue
            unknown.update(name for name in node.test.names if name not in dtd)
        if unknown:
            raise UnknownNameError(
                f"query mentions undeclared element names: {sorted(unknown)}"
            )
    return resolved


def _has_wildcards(query: Query) -> bool:
    return any(node.test.is_wildcard for node in query.root.iter_nodes())


def condition_size(query: Query) -> int:
    """Number of condition nodes (a benchmark measure)."""
    return sum(1 for _ in query.root.iter_nodes())
