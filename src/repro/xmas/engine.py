"""Compiled query-execution engine: the mediator's serving hot path.

The legacy evaluator (:mod:`repro.xmas.evaluator`) re-interprets the
query AST per document and enumerates *every* complete binding
environment, even though pick-element semantics (Section 2.1) only
need the set of elements bound to the pick variable.  This module
compiles a :class:`~repro.xmas.ast.Query` once -- at mediator view
registration -- into a :class:`CompiledPlan` and evaluates it by
**pick-projection** over a :class:`~repro.xmlmodel.index.DocumentIndex`:

1. *Compilation* numbers the condition nodes in preorder, precomputes
   each node's name-test letter set, locates the root-to-pick chain,
   and statically analyses which variables and ID inequalities can
   actually affect pick membership.

2. *Bottom-up satisfaction pass*: for each condition node, the set of
   document positions where its subtree matches is computed over the
   node's **label candidates** (the index's ``by_label`` lists, not a
   tree descent).  Sibling conditions must bind injectively to
   distinct children; that existence question is solved as bipartite
   matching (Hopcroft--Karp), not exponential backtracking.  Recursive
   steps close over chains by a reverse-document-order sweep of the
   candidate list -- an interval scan, never a re-descent.

3. *Top-down pick projection*: walking only the root-to-pick chain,
   the positions where the pick node participates in some complete
   match are extracted; off-path subtrees contribute existence facts
   only.  The picked set comes out sorted by position, i.e. in
   document order -- identical to the legacy backend's ordering.

Pick-projection is sound whenever the variables cannot constrain the
search beyond the injective-sibling rule: every variable bound at one
node, and no inequality relating two nodes on a common root-to-leaf
condition path (inequalities across *separated* nodes are free: the
injective child assignment places them in disjoint subtrees).  Plans
that fail the analysis fall back to the legacy full-enumeration
backend -- which also serves as the differential-testing oracle, see
``tests/xmas/test_engine_differential.py``.

The plan cache registers with the :mod:`repro.regex.kernel` registry,
so ``clear_caches()`` / ``kernel_stats()`` / CLI ``--stats`` cover it
alongside the language kernel's caches.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import NamedTuple

from .. import obs
from ..regex import kernel
from ..xmlmodel import Document, Element, fresh_id
from ..xmlmodel import index as _index_module
from ..xmlmodel.index import DocumentIndex, document_index
from .ast import Condition, Query

# ---------------------------------------------------------------------------
# plan representation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanNode:
    """One compiled condition node.

    ``names`` is the precomputed letter set of the name test (``None``
    for a wildcard); ``children`` / ``parent`` / ``end`` encode the
    condition tree in preorder numbering (the subtree of node ``i`` is
    exactly the index range ``[i, end)``).
    """

    index: int
    names: frozenset[str] | None
    variable: str | None
    pcdata: str | None
    recursive: bool
    children: tuple[int, ...]
    parent: int
    end: int

    def accepts(self, name: str) -> bool:
        return self.names is None or name in self.names


@dataclass(frozen=True)
class CompiledPlan:
    """A query compiled for repeated evaluation.

    ``pick_path`` is the chain of plan-node indices from the root to
    the (unique) pick node; ``projectable`` says whether the
    pick-projection strategy applies, with ``fallback_reason``
    explaining a ``False`` (surfaced by ``describe`` and the engine
    tests).
    """

    query: Query
    nodes: tuple[PlanNode, ...]
    pick_path: tuple[int, ...]
    projectable: bool
    fallback_reason: str | None

    def describe(self) -> str:
        lines = [
            f"plan for view {self.query.view_name!r}:"
            f" {len(self.nodes)} condition nodes",
            f"  strategy: {'pick-projection' if self.projectable else 'enumeration'}",
        ]
        if self.fallback_reason:
            lines.append(f"  fallback: {self.fallback_reason}")
        lines.append(
            "  pick path: "
            + " -> ".join(
                "*" if self.nodes[i].names is None else "|".join(sorted(self.nodes[i].names))
                for i in self.pick_path
            )
        )
        return "\n".join(lines)


def _compile(query: Query) -> CompiledPlan:
    nodes: list[PlanNode] = []
    parents: list[int] = []
    conditions: list[Condition] = []

    def walk(condition: Condition, parent: int) -> None:
        index = len(conditions)
        conditions.append(condition)
        parents.append(parent)
        for child in condition.children:
            walk(child, index)

    walk(query.root, -1)
    child_indices: list[list[int]] = [[] for _ in conditions]
    for index, parent in enumerate(parents):
        if parent >= 0:
            child_indices[parent].append(index)
    ends = [0] * len(conditions)
    for index in range(len(conditions) - 1, -1, -1):
        kids = child_indices[index]
        ends[index] = ends[kids[-1]] if kids else index + 1
    for index, condition in enumerate(conditions):
        nodes.append(
            PlanNode(
                index=index,
                names=(
                    None
                    if condition.test.names is None
                    else frozenset(condition.test.names)
                ),
                variable=condition.variable,
                pcdata=condition.pcdata,
                recursive=condition.recursive,
                children=tuple(child_indices[index]),
                parent=parents[index],
                end=ends[index],
            )
        )

    variable_nodes: dict[str, list[int]] = {}
    for index, condition in enumerate(conditions):
        if condition.variable is not None:
            variable_nodes.setdefault(condition.variable, []).append(index)

    pick_nodes = variable_nodes.get(query.pick_variable, [])
    projectable = True
    reason: str | None = None
    if len(pick_nodes) != 1:
        projectable = False
        reason = f"pick variable bound at {len(pick_nodes)} nodes"
    else:
        repeated = sorted(
            name for name, where in variable_nodes.items() if len(where) > 1
        )
        if repeated:
            projectable = False
            reason = f"repeated variables {repeated} constrain bindings"
        else:
            for pair in query.inequalities:
                first, second = tuple(pair)
                a = variable_nodes[first][0]
                b = variable_nodes[second][0]
                related = (a <= b < ends[a]) or (b <= a < ends[b])
                if related:
                    projectable = False
                    reason = (
                        f"inequality {first} != {second} relates nodes on one"
                        " condition path"
                    )
                    break

    path: list[int] = []
    if pick_nodes:
        cursor = pick_nodes[0]
        while cursor >= 0:
            path.append(cursor)
            cursor = parents[cursor]
        path.reverse()
    return CompiledPlan(
        query=query,
        nodes=tuple(nodes),
        pick_path=tuple(path),
        projectable=projectable,
        fallback_reason=reason,
    )


_PLAN_CACHE: dict[Query, CompiledPlan] = {}
# Parallel fan-out legs compile/probe plans concurrently; the lock
# keeps the hit/miss counters exact and the cache single-writer (a
# plan is compiled at most once per query object even under races).
_PLAN_LOCK = threading.Lock()
_plan_hits = 0
_plan_misses = 0


def _clear_plan_cache() -> None:
    global _plan_hits, _plan_misses
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()
        _plan_hits = 0
        _plan_misses = 0


kernel.register_cache(
    "engine.plans",
    _clear_plan_cache,
    lambda: {
        "hits": _plan_hits,
        "misses": _plan_misses,
        "size": len(_PLAN_CACHE),
    },
)


def compile_query(query: Query) -> CompiledPlan:
    """Compile a query (cached: repeat compilations are a dict probe)."""
    global _plan_hits, _plan_misses
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(query)
        if plan is not None:
            _plan_hits += 1
            return plan
        _plan_misses += 1
    # Compile outside the lock (compilation can be slow; plans for one
    # query are identical, so a racing duplicate compile is harmless —
    # last writer wins and both callers hold equivalent plans).
    with obs.span("engine.compile") as sp:
        sp.set_attribute("view", query.view_name)
        plan = _compile(query)
        sp.set_attribute("nodes", len(plan.nodes))
        sp.set_attribute(
            "strategy",
            "pick-projection" if plan.projectable else "enumeration",
        )
    with _PLAN_LOCK:
        _PLAN_CACHE[query] = plan
    return plan


# ---------------------------------------------------------------------------
# Hopcroft--Karp bipartite matching (sibling-condition assignment)
# ---------------------------------------------------------------------------


def hopcroft_karp(adjacency: list[list[int]], n_right: int) -> int:
    """Maximum bipartite matching size.

    ``adjacency[i]`` lists the right-side vertices the ``i``-th left
    vertex may match.  Left vertices are sibling conditions, right
    vertices child elements; a full match (size ``len(adjacency)``)
    means the conditions bind injectively to distinct children.
    """
    n_left = len(adjacency)
    match_left = [-1] * n_left
    match_right = [-1] * n_right
    INFINITY = n_left + n_right + 1

    while True:
        # BFS phase: layer the free left vertices.
        layer = [INFINITY] * n_left
        queue = [u for u in range(n_left) if match_left[u] == -1]
        for u in queue:
            layer[u] = 0
        free_reached = False
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    free_reached = True
                elif layer[w] == INFINITY:
                    layer[w] = layer[u] + 1
                    queue.append(w)
        if not free_reached:
            return sum(1 for v in match_left if v != -1)

        # DFS phase: augment along layered paths.
        def augment(u: int) -> bool:
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1 or (layer[w] == layer[u] + 1 and augment(w)):
                    match_left[u] = v
                    match_right[v] = u
                    return True
            layer[u] = INFINITY
            return False

        for u in range(n_left):
            if match_left[u] == -1:
                augment(u)


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------


class _PlanRun:
    """One evaluation of a compiled plan against one indexed document."""

    def __init__(self, plan: CompiledPlan, index: DocumentIndex) -> None:
        self.plan = plan
        self.index = index
        #: per node: positions where the node *matches here* (for a
        #: recursive node, positions that can end its chain)
        self.here: list = [frozenset()] * len(plan.nodes)
        #: per node: positions where the node matches when assigned to
        #: that position (for a recursive node, where a chain may start)
        self.sat: list = [frozenset()] * len(plan.nodes)

    # -- bottom-up satisfaction pass ------------------------------------

    def _candidates(self, node: PlanNode) -> list[int]:
        index = self.index
        if node.names is None:
            return list(range(len(index)))
        if len(node.names) == 1:
            (name,) = node.names
            return index.labelled(name)
        merged: list[int] = []
        for name in node.names:
            merged.extend(index.labelled(name))
        merged.sort()
        return merged

    def _leaf_positions(self, node: PlanNode):
        """Satisfaction set of a childless name test, shared read-only.

        Single names reuse the index's cached label set; a wildcard is
        a ``range`` (constant-time membership, no materialized set).
        """
        index = self.index
        if node.names is None:
            return range(len(index))
        if len(node.names) == 1:
            (name,) = node.names
            return index.labelled_set(name)
        combined: set[int] = set()
        for name in node.names:
            combined |= index.labelled_set(name)
        return combined

    def _children_match(self, node: PlanNode, pos: int) -> bool:
        """Can ``node``'s child conditions bind injectively at ``pos``?"""
        child_positions = self.index.children[pos]
        conditions = node.children
        if len(conditions) == 1:
            satisfied = self.sat[conditions[0]]
            return any(
                child_pos in satisfied for child_pos in child_positions
            )
        if len(conditions) > len(child_positions):
            return False
        if len(conditions) == 2:
            # Hall's condition for two sets: a perfect matching exists
            # unless both conditions are confined to the same one child.
            first = self.sat[conditions[0]]
            second = self.sat[conditions[1]]
            hits_first = [c for c in child_positions if c in first]
            if not hits_first:
                return False
            hits_second = [c for c in child_positions if c in second]
            if not hits_second:
                return False
            return (
                len(hits_first) > 1
                or len(hits_second) > 1
                or hits_first[0] != hits_second[0]
            )
        adjacency: list[list[int]] = []
        for condition_index in conditions:
            satisfied = self.sat[condition_index]
            edges = [
                slot
                for slot, child_pos in enumerate(child_positions)
                if child_pos in satisfied
            ]
            if not edges:
                return False
            adjacency.append(edges)
        return hopcroft_karp(adjacency, len(child_positions)) == len(conditions)

    def _compute(self, node: PlanNode) -> None:
        index = self.index
        if node.pcdata is not None:
            text = node.pcdata
            pcdata_at = index.pcdata_at
            here = {
                pos
                for pos in self._candidates(node)
                if pcdata_at(pos) == text
            }
        elif not node.children:
            here = self._leaf_positions(node)
        else:
            # Semi-join seeding: only the parents of positions that
            # satisfy the rarest child condition can possibly match, so
            # the scan is proportional to that satisfied set -- not to
            # how frequent this node's label is in the document.
            parent = index.parent
            name_at = index.name_at
            names = node.names
            seed = min((self.sat[c] for c in node.children), key=len)
            possible: set[int] = set()
            for child_pos in seed:
                p = parent[child_pos]
                if p >= 0 and (names is None or name_at(p) in names):
                    possible.add(p)
            here = {
                pos for pos in possible if self._children_match(node, pos)
            }
        self.here[node.index] = here
        if not node.recursive:
            self.sat[node.index] = here
            return
        # Chain closure: a chain may start at a candidate if it matches
        # here or some accepted child continues the chain.  Candidates
        # come sorted in preorder, so the reverse sweep sees every
        # descendant before its ancestor -- an interval scan, no descent.
        satisfied: set[int] = set()
        children = index.children
        for pos in reversed(self._candidates(node)):
            if pos in here or any(
                child in satisfied for child in children[pos]
            ):
                satisfied.add(pos)
        self.sat[node.index] = satisfied

    # -- top-down pick projection ---------------------------------------

    def _chain_ends(self, node: PlanNode, starts: set[int]) -> set[int]:
        """Match-here positions reachable from chain starts.

        Iterative DFS along accepted, still-satisfiable children; every
        position is visited once across all starts.
        """
        here = self.here[node.index]
        satisfied = self.sat[node.index]
        children = self.index.children
        ends: set[int] = set()
        stack = list(starts)
        seen = set(starts)
        while stack:
            pos = stack.pop()
            if pos in here:
                ends.add(pos)
            for child in children[pos]:
                if child not in seen and child in satisfied:
                    seen.add(child)
                    stack.append(child)
        return ends

    def _forced_match(
        self, parent: PlanNode, pos: int, forced_condition: int, forced_child: int
    ) -> bool:
        """Does some injective assignment at ``pos`` send the on-path
        condition to the chosen child?"""
        child_positions = self.index.children[pos]
        remaining = [c for c in parent.children if c != forced_condition]
        slots = [p for p in child_positions if p != forced_child]
        if len(remaining) > len(slots):
            return False
        adjacency: list[list[int]] = []
        for condition_index in remaining:
            satisfied = self.sat[condition_index]
            edges = [
                slot
                for slot, child_pos in enumerate(slots)
                if child_pos in satisfied
            ]
            if not edges:
                return False
            adjacency.append(edges)
        return hopcroft_karp(adjacency, len(slots)) == len(remaining)

    def picked_positions(self) -> list[int]:
        plan = self.plan
        nodes = plan.nodes
        # Leaves first: they are cheap (shared label sets) and every
        # condition is existential, so one empty leaf empties the whole
        # answer before any sibling matching runs.
        for node in reversed(nodes):
            if not node.children:
                self._compute(node)
                if not self.sat[node.index]:
                    return []
        for node in reversed(nodes):
            if node.children:
                self._compute(node)
                if not self.sat[node.index]:
                    return []
        if 0 not in self.sat[0]:
            return []
        root = nodes[0]
        occupancy = (
            self._chain_ends(root, {0}) if root.recursive else {0}
        )
        for parent_index, child_index in zip(plan.pick_path, plan.pick_path[1:]):
            parent = nodes[parent_index]
            child = nodes[child_index]
            child_sat = self.sat[child_index]
            starts: set[int] = set()
            single = len(parent.children) == 1
            for pos in occupancy:
                for child_pos in self.index.children[pos]:
                    if child_pos not in child_sat or child_pos in starts:
                        continue
                    if single or self._forced_match(
                        parent, pos, child_index, child_pos
                    ):
                        starts.add(child_pos)
            if not starts:
                return []
            occupancy = (
                self._chain_ends(child, starts) if child.recursive else starts
            )
        return sorted(occupancy)


# ---------------------------------------------------------------------------
# answer provenance (the materialized-view cache's raw material)
# ---------------------------------------------------------------------------


class PickOrigin(NamedTuple):
    """Where one top-level answer element came from.

    ``doc`` is the ordinal of the source document in the evaluated
    list, ``pos`` the picked element's preorder position in that
    document's index, and ``end`` the exclusive end of its descendant
    interval (``-1``/``-1`` when the legacy fallback picked an element
    the index cannot place).  :mod:`repro.mediator.matview` stores
    these alongside cached answers to splice per-document deltas.
    """

    doc: int
    pos: int
    end: int


#: answer document -> per-pick origins, recorded only while some
#: mediator cache has asked for provenance (weak: answers own their
#: provenance and drop it when they die)
_PROVENANCE: "weakref.WeakKeyDictionary[Document, tuple[PickOrigin, ...]]" = (
    weakref.WeakKeyDictionary()
)
_PROV_LOCK = threading.Lock()
_prov_users = 0


def enable_provenance() -> None:
    """Ask the engine to record pick origins (refcounted)."""
    global _prov_users
    with _PROV_LOCK:
        _prov_users += 1


def disable_provenance() -> None:
    """Drop one provenance request; recording stops at zero."""
    global _prov_users
    with _PROV_LOCK:
        _prov_users = max(0, _prov_users - 1)


def provenance_of(answer: Document) -> tuple[PickOrigin, ...] | None:
    """The recorded pick origins of an answer document, if any."""
    with _PROV_LOCK:
        return _PROVENANCE.get(answer)


def provenance_enabled() -> bool:
    """Is some cache currently asking the engine to record origins?"""
    return _prov_users > 0


def record_provenance(
    answer: Document, origins: tuple[PickOrigin, ...]
) -> None:
    """Attach pick origins to an answer built outside the engine.

    Merge layers (the sharded-source gather, stacked mediators) build
    answer documents by concatenating per-fragment answers; this lets
    them re-register the combined origins — with ``doc`` ordinals
    shifted into the logical document list — so delta maintenance
    keeps working across the merge.
    """
    with _PROV_LOCK:
        _PROVENANCE[answer] = tuple(origins)


def _picked_with_origins(
    query: Query,
    plan: CompiledPlan,
    document: Document,
    ordinal: int,
    origins: list[PickOrigin] | None,
) -> list[Element]:
    """One document's picks, appending their origins when recording."""
    if not plan.projectable:
        kernel.EVENTS["engine.fallback"] += 1
        from .evaluator import legacy_picked_elements

        picked = legacy_picked_elements(query, document)
        if origins is not None:
            index = document_index(document)
            for element in picked:
                pos = index.position_of(element)
                if pos is None:
                    origins.append(PickOrigin(ordinal, -1, -1))
                else:
                    origins.append(
                        PickOrigin(ordinal, pos, index.end[pos])
                    )
        return picked
    kernel.EVENTS["engine.projected"] += 1
    index = document_index(document)
    positions = _PlanRun(plan, index).picked_positions()
    if origins is not None:
        origins.extend(
            PickOrigin(ordinal, pos, index.end[pos]) for pos in positions
        )
    return [index.element_at(pos) for pos in positions]


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------


def compiled_picked_elements(
    query: Query, document: Document, plan: CompiledPlan | None = None
) -> list[Element]:
    """Pick-variable elements, document order -- the compiled backend.

    Non-projectable plans (see :class:`CompiledPlan`) fall back to the
    legacy full-enumeration evaluator.
    """
    if plan is None:
        plan = compile_query(query)
    if not plan.projectable:
        kernel.EVENTS["engine.fallback"] += 1
        from .evaluator import legacy_picked_elements

        return legacy_picked_elements(query, document)
    kernel.EVENTS["engine.projected"] += 1
    index = document_index(document)
    run = _PlanRun(plan, index)
    return [index.element_at(pos) for pos in run.picked_positions()]


def evaluate_compiled(query: Query, document: Document) -> Document:
    """Compiled-backend ``evaluate`` (same contract as the legacy one)."""
    return evaluate_many_compiled(query, [document])


def evaluate_many_compiled(query: Query, documents: list[Document]) -> Document:
    """Compiled-backend ``evaluate_many`` (one plan, many documents)."""
    with obs.span("engine.evaluate") as sp:
        index_hits = _index_module._index_hits
        index_misses = _index_module._index_misses
        plan = compile_query(query)
        record = _prov_users > 0
        origins: list[PickOrigin] | None = [] if record else None
        picks: list[Element] = []
        for ordinal, document in enumerate(documents):
            picks.extend(
                _picked_with_origins(query, plan, document, ordinal, origins)
            )
        sp.set_attribute("view", query.view_name)
        sp.set_attribute(
            "strategy",
            "pick-projection" if plan.projectable else "enumeration",
        )
        sp.set_attribute("docs", len(documents))
        sp.set_attribute("picks", len(picks))
        sp.set_attribute(
            "index_hits", _index_module._index_hits - index_hits
        )
        sp.set_attribute(
            "index_misses", _index_module._index_misses - index_misses
        )
        root = Element(
            query.view_name,
            [element.deep_copy(fresh_ids=True) for element in picks],
            fresh_id(),
        )
        answer = Document(root)
        if record and origins is not None:
            with _PROV_LOCK:
                _PROVENANCE[answer] = tuple(origins)
        return answer
