"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``infer``     -- infer the view DTD of an XMAS query over a DTD
* ``classify``  -- valid / satisfiable / unsatisfiable verdict
* ``evaluate``  -- run a query over an XML document (alias: ``eval``;
  ``--backend legacy|compiled`` selects the evaluation engine)
* ``ask``       -- answer a query through a mediated view (register the
  view over a source, pre-flight, simplify, then evaluate)
* ``validate``  -- validate a document against a DTD
* ``structure`` -- display the browsable structure of a DTD
* ``lint``      -- static diagnostics for DTDs and queries
* ``trace``     -- run a built-in workload under the tracer and export
  a Chrome ``trace_event`` JSON file (see docs/OBSERVABILITY.md)
* ``serve``     -- keep a warm mediator behind a TCP socket speaking
  the JSON-line protocol, with admission control (docs/SERVING.md)
* ``bench-serve`` -- drive concurrent load at a ``serve`` instance and
  print a JSON throughput/latency summary

``infer``, ``evaluate``, and ``ask`` additionally accept
``--trace FILE``: the whole command runs under an installed tracer and
the trace is written to ``FILE`` on exit.

DTD files may use standard ``<!ELEMENT>`` declarations (optionally
DOCTYPE-wrapped) or the paper's ``{<name : model> ...}`` notation;
the format is auto-detected.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .dtd import Dtd, parse_dtd, parse_paper_dtd, serialize_dtd, validate_document
from .errors import ReproError
from .inference import InferenceMode, infer_view_dtd
from .mediator import structure_tree
from .xmas import evaluate, parse_query
from .xmlmodel import parse_document, serialize_document


def _load_dtd(path: str, root: str | None = None) -> Dtd:
    text = Path(path).read_text()
    if "<!ELEMENT" in text:
        return parse_dtd(text, root)
    return parse_paper_dtd(text, root)


def _load_query(path: str):
    return parse_query(Path(path).read_text())


def _cmd_infer(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd, args.root)
    query = _load_query(args.query)
    mode = InferenceMode(args.mode)
    result = infer_view_dtd(dtd, query, mode)
    if args.format == "report":
        print(result.describe())
    elif args.format == "xml":
        print(serialize_dtd(result.dtd))
    else:  # paper
        print(result.sdtd)
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from .inference import tighten

    dtd = _load_dtd(args.dtd, args.root)
    query = _load_query(args.query)
    result = tighten(dtd, query, InferenceMode(args.mode), strict=False)
    print(result.classification.value)
    return 0 if result.classification.is_satisfiable else 1


def _set_backend(args: argparse.Namespace) -> None:
    backend = getattr(args, "backend", None)
    if backend:
        from .xmas import set_eval_backend

        set_eval_backend(backend)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    _set_backend(args)
    query = _load_query(args.query)
    document = parse_document(Path(args.document).read_text())
    answer = evaluate(query, document)
    print(serialize_document(answer), end="")
    return 0


def _cmd_ask(args: argparse.Namespace) -> int:
    """Answer a client query through a mediated view (the Figure 1 path)."""
    from .mediator import (
        MatViewPolicy,
        Mediator,
        RetryPolicy,
        Source,
        TransportPolicy,
        render_health,
    )

    _set_backend(args)
    dtd = _load_dtd(args.dtd, args.root)
    view_query = _load_query(args.view)
    client_query = _load_query(args.query)
    documents = [
        parse_document(Path(path).read_text()) for path in args.documents
    ]
    policy = TransportPolicy(
        timeout=args.timeout,
        retry=RetryPolicy(attempts=max(1, args.retries + 1)),
    )
    cache = None if args.no_cache else MatViewPolicy()
    mediator = Mediator("cli", policy=policy, cache=cache)
    source = Source("source", dtd, documents, validate=not args.no_validate)
    mediator.add_source(source)
    source.warm_indexes()
    registration = mediator.register_view(view_query)
    answer = mediator.query_view(
        client_query,
        registration.name,
        use_simplifier=not args.no_simplifier,
        strategy=args.strategy,
        degrade=not args.no_degrade,
    )
    print(serialize_document(answer), end="")
    if mediator.last_degradation is not None:
        print(mediator.last_degradation.describe(), file=sys.stderr)
    if args.explain:
        print(
            mediator.explain(client_query, registration.name).describe(),
            file=sys.stderr,
        )
    if getattr(args, "stats", False):
        print(render_health(mediator.health()), file=sys.stderr)
        # The kernel registry holds the matview cache only weakly;
        # keep the mediator alive until main()'s kernel-stats print so
        # the cache's counters still aggregate into the report.
        args.stats_anchor = mediator
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd, args.root)
    document = parse_document(Path(args.document).read_text())
    report = validate_document(document, dtd)
    print(report)
    return 0 if report.ok else 1


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream XML files into a persistent document store."""
    from .store import DocumentStore

    store = DocumentStore(args.store)
    dtd = None
    if args.dtd is not None:
        dtd = _load_dtd(args.dtd, args.root)
        store.set_dtd_text(Path(args.dtd).read_text(), root=dtd.root)
    ingested = 0
    elements = 0
    status = 0
    for path in args.documents:
        document = store.ingest_file(path, source=args.source)
        if args.validate and dtd is not None:
            # One full-tree hydration per document; skip --validate for
            # corpora already validated at the producing wrapper.
            report = validate_document(document, dtd)
            if not report.ok:
                store.remove_document(document.doc_id)
                print(f"{path}: rejected: {report}", file=sys.stderr)
                status = 1
                continue
        ingested += 1
        elements += document.size()
        print(
            f"{path}: document {document.doc_id} "
            f"({document.size()} elements)",
            file=sys.stderr,
        )
    print(
        f"ingested {ingested} document(s), {elements} element(s) "
        f"into {args.store} "
        f"({store.n_documents()} stored, generation {store.generation()})"
    )
    store.close()
    return status


def _cmd_structure(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd, args.root)
    print(structure_tree(dtd, max_depth=args.depth).render())
    return 0


def _cmd_xmlize(args: argparse.Namespace) -> int:
    from .dtd import RepairStatus, xmlize_dtd

    dtd = _load_dtd(args.dtd, args.root)
    repaired, report = xmlize_dtd(dtd)
    print(serialize_dtd(repaired))
    for status in RepairStatus:
        names = report.names_with(status)
        if names and status is not RepairStatus.ALREADY_DETERMINISTIC:
            print(f"# {status.value}: {', '.join(names)}")
    return 0 if report.fully_deterministic else 1


def _split_codes(raw: list[str] | None) -> list[str] | None:
    if not raw:
        return None
    codes: list[str] = []
    for chunk in raw:
        codes.extend(code.strip() for code in chunk.split(",") if code.strip())
    return codes or None


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace a built-in workload end to end (deterministic clocks)."""
    from . import obs

    if args.workload == "flaky":
        from .mediator import FakeClock, RetryPolicy, TransportPolicy
        from .workloads.flaky import build_flaky_federation

        clock = FakeClock()
        tracer = obs.install_tracer(obs.Tracer(clock=clock))
        try:
            policy = TransportPolicy(
                timeout=args.timeout,
                retry=RetryPolicy(attempts=max(1, args.retries + 1)),
            )
            mediator = build_flaky_federation(
                clock, policy=policy, n_sources=args.sources
            )
            deadline = mediator.deadline(args.budget)
            mediator.materialize_union("journals", deadline)
        finally:
            obs.uninstall_tracer()
        if mediator.last_degradation is not None:
            print(mediator.last_degradation.describe(), file=sys.stderr)
    else:  # paper
        import random

        from .dtd import generate_document
        from .mediator import Mediator, Source
        from .workloads import paper as paper_workload

        tracer = obs.install_tracer()
        try:
            dtd_obj = paper_workload.d1()
            rng = random.Random(7)
            documents = [
                generate_document(dtd_obj, rng) for _ in range(args.sources)
            ]
            mediator = Mediator("trace")
            mediator.add_source(
                Source("paper", dtd_obj, documents, validate=False)
            )
            registration = mediator.register_view(paper_workload.q3())
            client = parse_query(
                """
                journals = SELECT P
                WHERE <publist>
                        P:<publication><journal/></publication>
                      </>
                """
            )
            mediator.query_view(client, registration.name)
        finally:
            obs.uninstall_tracer()
    print(tracer.render())
    if args.out:
        tracer.dump_json(args.out)
        print(f"trace written to {args.out}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .inference import InferenceMode
    from .lint import DiagnosticReport, run_lint

    if not args.workload and not args.dtd:
        print("error: lint needs --dtd and/or --workload", file=sys.stderr)
        return 2
    if args.query and not args.dtd:
        print("error: --query needs --dtd to check against", file=sys.stderr)
        return 2
    mode = InferenceMode(args.mode)
    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    report = DiagnosticReport()

    if args.workload:
        from .workloads import bibdb
        from .workloads import paper as paper_workload

        pairs = (
            paper_workload.lint_workload()
            if args.workload == "paper"
            else bibdb.lint_workload()
        )
        audited_dtds: set = set()
        for label, source_dtd, query in pairs:
            # Audit each distinct DTD once; lint every query against it.
            signature = (source_dtd.root, source_dtd.names)
            report = report.merged_with(
                run_lint(
                    dtd=source_dtd,
                    query=query,
                    mode=mode,
                    select=select,
                    ignore=ignore,
                    scopes=(
                        {"query", "dtd"}
                        if signature not in audited_dtds
                        else {"query"}
                    ),
                    origin=label,
                )
            )
            audited_dtds.add(signature)
    if args.dtd:
        dtd_text = Path(args.dtd).read_text()
        source_dtd = _load_dtd(args.dtd, args.root)
        if args.query:
            for query_path in args.query:
                query_text = Path(query_path).read_text()
                report = report.merged_with(
                    run_lint(
                        dtd=source_dtd,
                        query=parse_query(query_text),
                        mode=mode,
                        select=select,
                        ignore=ignore,
                        dtd_text=dtd_text,
                        query_text=query_text,
                        origin=Path(query_path).name if len(args.query) > 1 else "",
                    )
                )
        else:
            report = report.merged_with(
                run_lint(
                    dtd=source_dtd,
                    select=select,
                    ignore=ignore,
                    dtd_text=dtd_text,
                )
            )

    if args.format == "json":
        print(report.to_json(indent=2))
    else:
        print(report.render())
    return report.exit_code


def _serve_fanout(args: argparse.Namespace):
    from .mediator import FanoutPolicy

    if args.workers <= 0:
        return None
    return FanoutPolicy(max_workers=args.workers)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import (
        MediatorServer,
        ServePolicy,
        build_serve_workload,
    )

    from .mediator import MatViewPolicy

    cache = (
        None
        if args.no_cache
        else MatViewPolicy(max_bytes=args.cache_bytes)
    )
    try:
        mediator = build_serve_workload(
            args.workload,
            n_sources=args.sources,
            n_docs=args.docs,
            latency=args.latency,
            fanout=_serve_fanout(args),
            cache=cache,
            shards=args.shards,
            store_path=args.store,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    policy = ServePolicy(
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        default_budget=args.budget,
        per_source_concurrency=args.per_source_concurrency,
    )
    server = MediatorServer(
        mediator, policy, host=args.host, port=args.port
    )
    server.start()
    host, port = server.address
    print(
        f"serving workload {args.workload!r} "
        f"({args.sources} sources) on {host}:{port}",
        file=sys.stderr,
    )
    print(f"{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; stopping", file=sys.stderr)
    finally:
        server.stop()
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json as json_module

    from .serve import ServeClient, run_bench

    with ServeClient(args.host, args.port) as client:
        client.ping()
        views = client.views()
        view = args.view or next(iter(sorted(views)))
        if view not in views:
            print(
                f"error: server does not serve view {view!r} "
                f"(it serves {sorted(views)})",
                file=sys.stderr,
            )
            return 2
    result = run_bench(
        args.host,
        args.port,
        view,
        requests=args.requests,
        concurrency=args.concurrency,
        budget=args.budget,
    )
    result["view"] = view
    if args.shutdown:
        with ServeClient(args.host, args.port) as client:
            result["server_stats"] = client.stats()
            client.shutdown()
    print(json_module.dumps(result, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="View DTD inference for XML mediators (ICDE 1999)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dtd_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dtd", required=True, help="DTD file")
        p.add_argument(
            "--root", default=None, help="document type (override)"
        )

    def add_stats_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--stats",
            action="store_true",
            help=(
                "print language-kernel cache statistics (and, for ask,"
                " the source transport health table) to stderr"
            ),
        )

    def add_trace_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            default=None,
            metavar="FILE",
            help=(
                "run under the repro.obs tracer and write a Chrome"
                " trace_event JSON file"
            ),
        )

    p = sub.add_parser("infer", help="infer a view DTD")
    add_dtd_options(p)
    p.add_argument("--query", required=True, help="XMAS query file")
    p.add_argument(
        "--mode",
        choices=[m.value for m in InferenceMode],
        default="exact",
        help="validity decision mode (default: exact)",
    )
    p.add_argument(
        "--format",
        choices=["report", "paper", "xml"],
        default="report",
        help="output format (default: full report)",
    )
    add_stats_option(p)
    add_trace_option(p)
    p.set_defaults(func=_cmd_infer)

    p = sub.add_parser("classify", help="classify a query against a DTD")
    add_dtd_options(p)
    p.add_argument("--query", required=True)
    p.add_argument(
        "--mode",
        choices=[m.value for m in InferenceMode],
        default="exact",
    )
    add_stats_option(p)
    p.set_defaults(func=_cmd_classify)

    def add_backend_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=["legacy", "compiled"],
            default=None,
            help=(
                "query evaluation backend (default: REPRO_EVAL_BACKEND"
                " or compiled)"
            ),
        )

    p = sub.add_parser(
        "evaluate", aliases=["eval"], help="run a query over a document"
    )
    p.add_argument("--query", required=True)
    p.add_argument("document", help="XML document file")
    add_backend_option(p)
    add_stats_option(p)
    add_trace_option(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "ask",
        help="answer a query through a mediated view",
        description=(
            "Register a view over a source (DTD + documents), then answer"
            " a client query against it through the mediator: DTD-based"
            " pre-flight, simplification, composition or materialization,"
            " and the selected evaluation backend."
        ),
    )
    add_dtd_options(p)
    p.add_argument("--view", required=True, help="view definition (XMAS file)")
    p.add_argument("--query", required=True, help="client query (XMAS file)")
    p.add_argument("documents", nargs="+", help="source XML document files")
    p.add_argument(
        "--strategy",
        choices=["auto", "compose", "materialize"],
        default="auto",
        help="execution strategy (default: auto)",
    )
    p.add_argument(
        "--no-simplifier",
        action="store_true",
        help="skip the DTD-based pre-flight and simplifier",
    )
    p.add_argument(
        "--no-validate",
        action="store_true",
        help="skip source-document validation on load",
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="print the mediator's query plan to stderr",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-source-call timeout (default: none)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retries after a failed source call (default: 2)",
    )
    p.add_argument(
        "--no-degrade",
        action="store_true",
        help=(
            "raise on permanent source failure instead of returning an"
            " annotated partial answer"
        ),
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "run without the materialized-view answer cache (a single"
            " cold query never hits it, but --stats then omits its"
            " counters entirely)"
        ),
    )
    add_backend_option(p)
    add_stats_option(p)
    add_trace_option(p)
    p.set_defaults(func=_cmd_ask)

    p = sub.add_parser("validate", help="validate a document against a DTD")
    add_dtd_options(p)
    p.add_argument("document", help="XML document file")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "ingest",
        help="stream XML documents into a persistent store",
        description=(
            "Stream-parse XML files into a SQLite document store"
            " (created on first use) without materializing their"
            " trees; `repro serve --store` and Source.from_store serve"
            " straight from the stored preorder arrays.  See"
            " docs/PERSISTENCE.md."
        ),
    )
    p.add_argument(
        "--store", required=True, metavar="PATH", help="store file"
    )
    p.add_argument(
        "--source",
        default=None,
        metavar="NAME",
        help="source tag to ingest under (filters later loads)",
    )
    p.add_argument(
        "--dtd",
        default=None,
        help="DTD file to stash in the store's metadata",
    )
    p.add_argument(
        "--root", default=None, help="document type (override)"
    )
    p.add_argument(
        "--validate",
        action="store_true",
        help=(
            "validate each document against --dtd after ingest"
            " (rejected documents are removed again; exit 1)"
        ),
    )
    p.add_argument(
        "documents", nargs="+", help="XML document files to ingest"
    )
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser("structure", help="show a DTD's element structure")
    add_dtd_options(p)
    p.add_argument("--depth", type=int, default=12, help="max display depth")
    p.set_defaults(func=_cmd_structure)

    p = sub.add_parser(
        "xmlize",
        help="repair content models to XML-1.0 determinism",
    )
    add_dtd_options(p)
    p.set_defaults(func=_cmd_xmlize)

    p = sub.add_parser(
        "lint",
        help="static diagnostics for DTDs and XMAS queries",
        description=(
            "Run the rule-based static analyzer (see docs/DIAGNOSTICS.md)."
            " Exits 1 exactly when an error-severity diagnostic is present,"
            " 0 otherwise."
        ),
    )
    p.add_argument("--dtd", help="DTD file to audit / check queries against")
    p.add_argument("--root", default=None, help="document type (override)")
    p.add_argument(
        "--query",
        action="append",
        default=[],
        help="XMAS query file to check against --dtd (repeatable)",
    )
    p.add_argument(
        "--workload",
        choices=["paper", "bibdb"],
        help="lint a built-in workload's DTD/query pairs",
    )
    p.add_argument(
        "--mode",
        choices=[m.value for m in InferenceMode],
        default="exact",
        help="validity decision mode (default: exact)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    p.add_argument(
        "--select",
        action="append",
        help="only run these codes/prefixes (comma-separated, repeatable)",
    )
    p.add_argument(
        "--ignore",
        action="append",
        help="skip these codes/prefixes (comma-separated, repeatable)",
    )
    add_stats_option(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "trace",
        help="trace a built-in workload and export Chrome trace JSON",
        description=(
            "Run a built-in workload end to end under the repro.obs"
            " tracer (the flaky federation runs on a deterministic fake"
            " clock), print the span tree, and optionally write a"
            " chrome://tracing-compatible JSON file."
        ),
    )
    p.add_argument(
        "--workload",
        choices=["flaky", "paper"],
        default="flaky",
        help="which workload to trace (default: flaky)",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the Chrome trace_event JSON here",
    )
    p.add_argument(
        "--sources",
        type=int,
        default=3,
        metavar="N",
        help="federation size / paper document count (default: 3)",
    )
    p.add_argument(
        "--budget",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="fan-out deadline budget on the fake clock (default: 10)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="per-source-call timeout (default: 2)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retries after a failed source call (default: 2)",
    )
    add_stats_option(p)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "serve",
        help="serve a warm mediator over the JSON-line protocol",
        description=(
            "Keep a built-in federation warm (plans compiled, indexes"
            " built, fan-out pool up) behind a TCP socket speaking the"
            " JSON-line protocol of docs/SERVING.md, with admission"
            " control.  Prints host:port on stdout once listening"
            " (use --port 0 to pick a free port)."
        ),
    )
    p.add_argument(
        "--workload",
        choices=["flaky", "paper", "bibdb"],
        default="paper",
        help="which federation to serve (default: paper)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: 0 = pick a free port)",
    )
    p.add_argument("--sources", type=int, default=4, metavar="N")
    p.add_argument("--docs", type=int, default=2, metavar="N")
    p.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "split every site into N fragment-DTD shards with"
            " fragmentation-aware pruning (bibdb workload only;"
            " default: 0 = unsharded)"
        ),
    )
    p.add_argument(
        "--latency",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="injected per-call source latency (flaky workload only)",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "back the corpus with a persistent document store at PATH"
            " (paper workload only): the first run ingests the"
            " generated documents, later runs warm-start from the"
            " stored preorder arrays without re-parsing"
        ),
    )
    p.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="parallel fan-out workers (0 = sequential fan-out)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="concurrently evaluating requests (default: 8)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="requests allowed to wait for a slot (default: 16)",
    )
    p.add_argument(
        "--budget",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="default per-request deadline budget (default: 2)",
    )
    p.add_argument(
        "--per-source-concurrency",
        type=int,
        default=4,
        help="per-source transport gate (0 disables; default: 4)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the shared materialized-view answer cache",
    )
    p.add_argument(
        "--cache-bytes",
        type=int,
        default=8 << 20,
        metavar="BYTES",
        help=(
            "materialized-view cache byte budget"
            " (default: 8 MiB; ignored with --no-cache)"
        ),
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "bench-serve",
        help="drive load at a running repro serve instance",
        description=(
            "Connect concurrent clients to a running `repro serve`"
            " instance, issue union requests, and print a JSON summary:"
            " throughput, latency quantiles, degradation and admission"
            "-drop counts."
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument(
        "--view",
        default=None,
        help="union view to request (default: the server's first view)",
    )
    p.add_argument("--requests", type=int, default=100, metavar="N")
    p.add_argument("--concurrency", type=int, default=4, metavar="N")
    p.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline budget (default: server default)",
    )
    p.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the server to shut down after the run",
    )
    p.set_defaults(func=_cmd_bench_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    tracer = None
    if trace_path:
        from . import obs

        tracer = obs.install_tracer()
    try:
        code = args.func(args)
        if getattr(args, "stats", False):
            from .regex import render_stats

            print(render_stats(), file=sys.stderr)
        return code
    except ReproError as error:
        # Runtime failures share the lint rules' code namespace
        # (docs/DIAGNOSTICS.md); print the code so output is greppable.
        print(f"error[{error.code}]: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            from . import obs

            obs.uninstall_tracer()
            tracer.dump_json(trace_path)
            print(f"trace written to {trace_path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
