"""Persistent, larger-than-memory document store (ROADMAP item 4).

The in-memory pipeline parses every source document into an
:class:`~repro.xmlmodel.element.Element` tree and flattens it into a
:class:`~repro.xmlmodel.index.DocumentIndex`; both live in RAM for the
life of the process, which caps corpus size at available memory and
makes every cold start re-parse everything.  This package spills the
same preorder arrays into a single SQLite file (stdlib ``sqlite3``,
zero external dependencies -- the SDIF blueprint of one container
holding heterogeneous data plus structural metadata):

* :class:`DocumentStore` -- the container.  ``ingest_text`` feeds the
  streaming parser events (:func:`repro.xmlmodel.parser.iter_document_events`)
  straight into the ``elements`` / ``labels`` tables without ever
  materializing the tree; memory during ingest is O(one document).
* :class:`StoredDocument` -- a :class:`~repro.xmlmodel.element.Document`
  handle over one stored document.  Holds no tree; ``.root`` hydrates
  on demand (legacy-evaluator fallback and validation only).
* :class:`StoredDocumentIndex` -- satisfies the engine's index
  protocol (``labelled``, ``labelled_within``, ``labelled_set``,
  ``is_ancestor_or_self``, ``position_of``, plus the narrow accessors
  ``name_at`` / ``pcdata_at`` / ``element_at``) with lazy row
  hydration through a bounded page/LRU layer, so query memory is
  O(working set), not O(corpus).
* :class:`StorePolicy` -- the page size and resident-page budget.

Freshness extends the in-process mutation clock with an **on-disk
generation counter**: every ingest/removal bumps it, cross-connection
changes are detected via ``PRAGMA data_version``, and
``document_index`` revalidates a stored index against it -- so indexes
survive process restarts (``repro serve --store`` warm starts skip the
parse entirely).

See docs/PERSISTENCE.md.
"""

from .document import StoredDocument, StoredDocumentIndex
from .store import DocumentStore, StorePolicy

__all__ = [
    "DocumentStore",
    "StorePolicy",
    "StoredDocument",
    "StoredDocumentIndex",
]
