"""The SQLite container behind :mod:`repro.store`.

One file holds any number of documents as preorder arrays:

``meta``
    ``key``/``value`` rows: ``format`` (schema version), ``generation``
    (the on-disk mutation counter), optionally ``dtd`` / ``dtd_root``
    (a DTD stored alongside the corpus by ``repro ingest --dtd``).
``documents``
    One row per document: ``doc_id`` (rowid), the ``source`` tag it
    was ingested under, ``root_name``, ``n_elements``, and the
    generation that wrote it.
``structure``
    One row per document: the structural skeleton as packed
    ``array('q')`` blobs -- ``parent`` / ``end`` / ``depth`` mirror
    :class:`~repro.xmlmodel.index.DocumentIndex`'s arrays -- plus the
    ``names`` column (NUL-joined).  A
    :class:`~repro.store.document.StoredDocumentIndex` loads this row
    once at build time, so candidate generation and structural joins
    run on plain resident sequences (~tens of bytes per element).
``elements``
    One **payload** row per element, keyed ``(doc_id, pos)`` WITHOUT
    ROWID so the preorder position *is* the clustered key: ``text`` is
    the PCDATA string (NULL for element content), ``elem_id`` /
    ``attrs`` carry identity and Appendix A attributes.  This is the
    bulk of a corpus, and it stays on disk until asked for.
``labels``
    Per ``(doc_id, name)``: the document-order positions of every
    element with that name, packed the same way -- the label lists the
    engine's leaf lookups and interval scans run on.  Loaded with the
    skeleton (they are positions, skeleton-sized).

Payload reads go through a **page cache**: rows are fetched
``policy.page_size`` at a time and at most ``policy.max_pages`` pages
stay resident (LRU), so the payload memory of a query sweep is bounded
by ``page_size * max_pages`` rows regardless of corpus size.  The
cache registers with the :mod:`repro.regex.kernel` registry
(``store.pages``): ``clear_caches()`` drops it and ``kernel_stats()``
reports hits/misses/evictions.

All connection access is serialized behind one lock
(``check_same_thread=False``): ``repro serve`` handler threads share a
store the same way they share the in-memory caches.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import weakref
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import StoreError, StoreFormatError, StoreStaleError
from ..regex import kernel
from ..xmlmodel.element import fresh_id
from ..xmlmodel.parser import XmlEvent, iter_document_events
from .document import StoredDocument

if TYPE_CHECKING:
    from ..xmlmodel import Document

_FORMAT_VERSION = 1

_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE documents (
    doc_id     INTEGER PRIMARY KEY,
    source     TEXT,
    root_name  TEXT NOT NULL,
    n_elements INTEGER NOT NULL,
    generation INTEGER NOT NULL
);
CREATE TABLE structure (
    doc_id INTEGER PRIMARY KEY,
    parent BLOB NOT NULL,
    end    BLOB NOT NULL,
    depth  BLOB NOT NULL,
    names  TEXT NOT NULL
);
CREATE TABLE elements (
    doc_id   INTEGER NOT NULL,
    pos      INTEGER NOT NULL,
    text     TEXT,
    elem_id  TEXT NOT NULL,
    attrs    TEXT,
    PRIMARY KEY (doc_id, pos)
) WITHOUT ROWID;
CREATE TABLE labels (
    doc_id    INTEGER NOT NULL,
    name      TEXT NOT NULL,
    positions BLOB NOT NULL,
    PRIMARY KEY (doc_id, name)
) WITHOUT ROWID;
"""

#: rows inserted per executemany batch during ingest
_INSERT_CHUNK = 4096


def _pack(positions: Iterable[int]) -> bytes:
    return array("q", positions).tobytes()


def _unpack(blob: bytes | None) -> tuple[int, ...]:
    if not blob:
        return ()
    values = array("q")
    values.frombytes(blob)
    return tuple(values)


@dataclass(frozen=True)
class StorePolicy:
    """Residency budget for a store's payload page cache.

    ``page_size * max_pages`` bounds the number of payload element
    rows held in memory at once (the benchmark's memory gate measures
    exactly this).  The defaults keep a store's payload under a few MB
    resident while serving pointed queries from cache; the structural
    skeleton of each *live index* (packed positions and names, ~tens
    of bytes per element) is resident by design.
    """

    page_size: int = 256
    max_pages: int = 64

    def __post_init__(self) -> None:
        if self.page_size < 1 or self.max_pages < 1:
            raise ValueError("page_size and max_pages must be positive")


class _Lru:
    """A lock-guarded LRU mapping with hit/miss/eviction counters."""

    __slots__ = ("capacity", "data", "lock", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.data: OrderedDict = OrderedDict()
        self.lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        with self.lock:
            value = self.data.get(key)
            if value is None:
                self.misses += 1
                return None
            self.data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self.lock:
            self.data[key] = value
            self.data.move_to_end(key)
            while len(self.data) > self.capacity:
                self.data.popitem(last=False)
                self.evictions += 1

    def drop_doc(self, doc_id: int) -> None:
        with self.lock:
            for key in [k for k in self.data if k[0] == doc_id]:
                del self.data[key]

    def clear(self) -> None:
        with self.lock:
            self.data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


class DocumentStore:
    """A persistent corpus of documents in one SQLite file.

    ``path`` may be a filesystem path or ``":memory:"`` (tests).  The
    file is created and initialized on first open; reopening an
    existing store validates its format version (``STO002``).  Use as
    a context manager or call :meth:`close`.
    """

    def __init__(self, path, policy: StorePolicy | None = None) -> None:
        self.path = str(path)
        self.policy = policy or StorePolicy()
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = sqlite3.connect(
            self.path, check_same_thread=False
        )
        self._pages = _Lru(self.policy.max_pages)
        self.hydrations = 0  # full-tree materializations (fallback path)
        try:
            self._initialize()
        except sqlite3.DatabaseError as error:
            self._conn.close()
            self._conn = None
            raise StoreFormatError(
                f"{self.path!r} is not a document store: {error}"
            ) from error
        _LIVE_STORES.add(self)

    # -- lifecycle ------------------------------------------------------

    def _initialize(self) -> None:
        conn = self._conn
        assert conn is not None
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "meta" not in tables:
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('format', ?)",
                (str(_FORMAT_VERSION),),
            )
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('generation', '0')"
            )
            conn.commit()
        else:
            fmt = self._meta_value("format")
            if fmt is None or int(fmt) != _FORMAT_VERSION:
                raise StoreFormatError(
                    f"{self.path!r} has store format {fmt!r}; this build "
                    f"reads format {_FORMAT_VERSION}"
                )
        self._data_version = self._pragma_data_version()
        self._generation = int(self._meta_value("generation") or 0)

    def close(self) -> None:
        """Close the connection; further operations raise ``STO001``."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "DocumentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _connection(self) -> sqlite3.Connection:
        conn = self._conn
        if conn is None:
            raise StoreError(f"document store {self.path!r} is closed")
        return conn

    # -- meta / generation ---------------------------------------------

    def _meta_value(self, key: str) -> str | None:
        row = self._connection().execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def _pragma_data_version(self) -> int:
        return self._connection().execute("PRAGMA data_version").fetchone()[0]

    def generation(self) -> int:
        """The on-disk mutation counter (bumped by ingest/removal).

        Cheap by design: revalidated against ``PRAGMA data_version``,
        which SQLite bumps when *another connection* commits -- so the
        common no-writer probe is one pragma, not a table read.  This
        is the stored analogue of the in-process mutation clock:
        ``document_index`` compares a stored index's build generation
        against it.
        """
        with self._lock:
            data_version = self._pragma_data_version()
            if data_version != self._data_version:
                self._data_version = data_version
                self._generation = int(self._meta_value("generation") or 0)
            return self._generation

    def _write_generation(self, value: int) -> None:
        # Caller holds the lock and the surrounding transaction; the
        # cached ``self._generation`` is only advanced after commit so
        # a rolled-back ingest leaves the counter consistent.
        self._connection().execute(
            "UPDATE meta SET value = ? WHERE key = 'generation'",
            (str(value),),
        )

    def set_dtd_text(self, text: str, root: str | None = None) -> None:
        """Store a DTD (and optional root type) alongside the corpus."""
        with self._lock:
            conn = self._connection()
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('dtd', ?) "
                "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
                (text,),
            )
            if root is not None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('dtd_root', ?) "
                    "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
                    (root,),
                )
            conn.commit()
            self._data_version = self._pragma_data_version()

    def dtd_text(self) -> str | None:
        """The DTD stored by :meth:`set_dtd_text`, if any."""
        with self._lock:
            return self._meta_value("dtd")

    def dtd_root(self) -> str | None:
        with self._lock:
            return self._meta_value("dtd_root")

    # -- ingest ---------------------------------------------------------

    def ingest_text(self, text: str, source: str | None = None) -> StoredDocument:
        """Stream-parse an XML string straight into the store.

        The tree is never materialized: parser events fill per-element
        rows and per-label position lists, holding O(one document) --
        not O(corpus) -- in memory, then one transaction writes rows,
        labels, the document row, and the generation bump.
        """
        return self._ingest_events(iter_document_events(text), source)

    def ingest_file(self, path, source: str | None = None) -> StoredDocument:
        """:meth:`ingest_text` over a file's contents."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.ingest_text(handle.read(), source)

    def ingest_document(
        self, document: "Document", source: str | None = None
    ) -> StoredDocument:
        """Ingest an already-built in-memory document."""
        return self._ingest_events(_document_events(document), source)

    def _ingest_events(
        self, events: Iterator[XmlEvent], source: str | None
    ) -> StoredDocument:
        rows: list[list] = []  # [text, elem_id, attrs] payload rows
        parents = array("q")
        ends = array("q")
        depths = array("q")
        names: list[str] = []
        labels: dict[str, array] = {}
        stack: list[int] = []
        for event in events:
            kind = event[0]
            if kind == "start":
                pos = len(rows)
                _, name, element_id, attributes = event
                rows.append(
                    [
                        None,
                        element_id or fresh_id(),
                        json.dumps(attributes) if attributes else None,
                    ]
                )
                parents.append(stack[-1] if stack else -1)
                ends.append(-1)
                depths.append(len(stack))
                names.append(name)
                labels.setdefault(name, array("q")).append(pos)
                stack.append(pos)
            elif kind == "pcdata":
                rows[stack[-1]][0] = event[1]
            else:
                ends[stack.pop()] = len(rows)
        root_name = names[0]
        with self._lock:
            conn = self._connection()
            with conn:  # one transaction: all-or-nothing ingest
                cursor = conn.execute(
                    "INSERT INTO documents "
                    "(source, root_name, n_elements, generation) "
                    "VALUES (?, ?, ?, ?)",
                    (source, root_name, len(rows), self._generation + 1),
                )
                doc_id = cursor.lastrowid
                assert doc_id is not None
                conn.execute(
                    "INSERT INTO structure "
                    "(doc_id, parent, end, depth, names) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        doc_id,
                        parents.tobytes(),
                        ends.tobytes(),
                        depths.tobytes(),
                        "\x00".join(names),
                    ),
                )
                element_rows = (
                    (doc_id, pos, row[0], row[1], row[2])
                    for pos, row in enumerate(rows)
                )
                while True:
                    chunk = list(
                        row
                        for _, row in zip(range(_INSERT_CHUNK), element_rows)
                    )
                    if not chunk:
                        break
                    conn.executemany(
                        "INSERT INTO elements VALUES (?, ?, ?, ?, ?)",
                        chunk,
                    )
                conn.executemany(
                    "INSERT INTO labels (doc_id, name, positions) "
                    "VALUES (?, ?, ?)",
                    [
                        (doc_id, name, _pack(positions))
                        for name, positions in labels.items()
                    ],
                )
                self._write_generation(self._generation + 1)
            self._generation += 1
            return StoredDocument(self, doc_id, root_name, len(rows), source)

    def remove_document(self, doc_id: int) -> None:
        """Drop one document (rows, labels, document row); bump generation.

        Live :class:`StoredDocument` handles for it fail their next
        index probe with ``STO003``.
        """
        with self._lock:
            conn = self._connection()
            with conn:
                gone = conn.execute(
                    "DELETE FROM documents WHERE doc_id = ?", (doc_id,)
                ).rowcount
                if not gone:
                    raise StoreError(
                        f"no document {doc_id} in store {self.path!r}"
                    )
                conn.execute(
                    "DELETE FROM structure WHERE doc_id = ?", (doc_id,)
                )
                conn.execute(
                    "DELETE FROM elements WHERE doc_id = ?", (doc_id,)
                )
                conn.execute("DELETE FROM labels WHERE doc_id = ?", (doc_id,))
                self._write_generation(self._generation + 1)
            self._generation += 1
            self._pages.drop_doc(doc_id)

    # -- handles ---------------------------------------------------------

    def documents(self, source: str | None = None) -> list[StoredDocument]:
        """Handles for every stored document (optionally one ``source``).

        Handles hold no tree data -- loading a million-document corpus
        is a million tiny rows, not a million parses.
        """
        query = (
            "SELECT doc_id, root_name, n_elements, source FROM documents"
        )
        args: tuple = ()
        if source is not None:
            query += " WHERE source = ?"
            args = (source,)
        with self._lock:
            rows = self._connection().execute(
                query + " ORDER BY doc_id", args
            ).fetchall()
        return [
            StoredDocument(self, doc_id, root_name, n_elements, src)
            for doc_id, root_name, n_elements, src in rows
        ]

    def document(self, doc_id: int) -> StoredDocument:
        """The handle for one document id (``STO001`` when absent)."""
        with self._lock:
            row = self._connection().execute(
                "SELECT doc_id, root_name, n_elements, source "
                "FROM documents WHERE doc_id = ?",
                (doc_id,),
            ).fetchone()
        if row is None:
            raise StoreError(f"no document {doc_id} in store {self.path!r}")
        return StoredDocument(self, row[0], row[1], row[2], row[3])

    def has_document(self, doc_id: int) -> bool:
        with self._lock:
            return (
                self._connection().execute(
                    "SELECT 1 FROM documents WHERE doc_id = ?", (doc_id,)
                ).fetchone()
                is not None
            )

    def n_documents(self) -> int:
        with self._lock:
            return self._connection().execute(
                "SELECT COUNT(*) FROM documents"
            ).fetchone()[0]

    def n_elements(self) -> int:
        with self._lock:
            return self._connection().execute(
                "SELECT COALESCE(SUM(n_elements), 0) FROM documents"
            ).fetchone()[0]

    # -- row access (page cache) -----------------------------------------

    def structure(self, doc_id: int) -> tuple[tuple, tuple, tuple, list]:
        """The packed structural skeleton of one document, decoded.

        Returns ``(parent, end, depth, names)``; the int arrays come
        back as tuples, ``names`` as a list.  One blob read per index
        build -- this is what makes a cold reopen serve without
        re-parsing.  Not cached at the store layer: the index that
        asked holds the result for its lifetime.
        """
        with self._lock:
            row = self._connection().execute(
                "SELECT parent, end, depth, names FROM structure "
                "WHERE doc_id = ?",
                (doc_id,),
            ).fetchone()
        if row is None:
            raise StoreStaleError(
                f"document {doc_id} is gone from {self.path!r} "
                "(removed by another handle?)"
            )
        parent, end, depth, names = row
        return (
            _unpack(parent),
            _unpack(end),
            _unpack(depth),
            names.split("\x00"),
        )

    def labels_for(self, doc_id: int) -> dict[str, list[int]]:
        """Every label's position list for one document, decoded.

        Loaded alongside :meth:`structure` when an index builds --
        label lists are positions, so they belong to the resident
        skeleton, and serving candidate generation from a per-index
        dict keeps the query hot path off the store's lock.
        """
        with self._lock:
            rows = self._connection().execute(
                "SELECT name, positions FROM labels WHERE doc_id = ?",
                (doc_id,),
            ).fetchall()
        return {name: list(_unpack(blob)) for name, blob in rows}

    def page_rows(self, doc_id: int, page_no: int) -> list[tuple]:
        """The decoded payload rows of one page (cached, LRU-bounded).

        Each row is ``(text, elem_id, attrs)`` with ``attrs`` already a
        dict (or None) -- decode cost is paid once per page load, not
        per access.
        """
        key = (doc_id, page_no)
        cached = self._pages.get(key)
        if cached is not None:
            return cached
        size = self.policy.page_size
        start = page_no * size
        with self._lock:
            fetched = self._connection().execute(
                "SELECT text, elem_id, attrs FROM elements "
                "WHERE doc_id = ? AND pos >= ? AND pos < ? ORDER BY pos",
                (doc_id, start, start + size),
            ).fetchall()
        rows = [
            (text, elem_id, json.loads(attrs) if attrs else None)
            for text, elem_id, attrs in fetched
        ]
        self._pages.put(key, rows)
        return rows

    # -- cache registry ---------------------------------------------------

    def drop_caches(self) -> None:
        self._pages.clear()
        self.hydrations = 0

    def cache_info(self) -> dict:
        return {
            "page_hits": self._pages.hits,
            "page_misses": self._pages.misses,
            "page_evictions": self._pages.evictions,
            "resident_rows": sum(
                len(rows) for rows in self._pages.data.values()
            ),
            "hydrations": self.hydrations,
        }


def _document_events(document: "Document") -> Iterator[XmlEvent]:
    """Parser-shaped events for an in-memory tree (``ingest_document``).

    Iterative preorder walk with explicit close markers; IDs and
    attributes are preserved verbatim (``pcdata`` here includes the
    empty string, which the element model distinguishes from empty
    content).
    """
    from ..xmlmodel.element import Element

    stack: list = [document.root]
    while stack:
        node = stack.pop()
        if not isinstance(node, Element):
            yield ("end",)
            continue
        yield ("start", node.name, node.id, dict(node.attributes))
        if isinstance(node.content, str):
            yield ("pcdata", node.content)
            yield ("end",)
        else:
            stack.append(None)  # close marker
            stack.extend(reversed(node.content))


# ---------------------------------------------------------------------------
# kernel registry: one entry aggregating every live store
# ---------------------------------------------------------------------------

_LIVE_STORES: "weakref.WeakSet[DocumentStore]" = weakref.WeakSet()


def _clear_store_caches() -> None:
    for store in list(_LIVE_STORES):
        store.drop_caches()


def _store_cache_info() -> dict:
    totals = {
        "stores": 0,
        "page_hits": 0,
        "page_misses": 0,
        "page_evictions": 0,
        "resident_rows": 0,
        "hydrations": 0,
    }
    for store in list(_LIVE_STORES):
        totals["stores"] += 1
        for key, value in store.cache_info().items():
            totals[key] += value
    return totals


kernel.register_cache("store.pages", _clear_store_caches, _store_cache_info)
