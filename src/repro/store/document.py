"""Store-backed documents and their engine-protocol index.

A :class:`StoredDocument` is a :class:`~repro.xmlmodel.element.Document`
whose tree lives in a :class:`~repro.store.store.DocumentStore` rather
than in memory; a :class:`StoredDocumentIndex` answers the compiled
engine's index protocol straight from the stored preorder arrays.

The split follows the index/payload line: the **structural skeleton**
(parent / end / depth positions and the name column, ~tens of bytes
per element) loads once per live index as packed arrays, so candidate
generation and structural joins run at plain-list speed; the
**payload** (PCDATA text, element IDs, Appendix A attributes -- the
bulk of a corpus) stays on disk and hydrates through the store's
bounded page/LRU cache.  Trees materialize only for the final picks
(:meth:`StoredDocumentIndex.element_at`, subtree-sized) or the
legacy-evaluator fallback (``.root``, document-sized, counted as a
``hydration`` in the store's cache stats).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING

from ..errors import StoreStaleError
from ..xmlmodel.element import Document, Element, mutation_stamp

if TYPE_CHECKING:
    from .store import DocumentStore

# payload row tuple layout produced by DocumentStore.page_rows
_TEXT, _ELEM_ID, _ATTRS = range(3)


class _Children:
    """``index.children[pos]`` computed from the ``end`` intervals.

    The child positions of ``pos`` are exactly the chain ``pos + 1``,
    ``end[pos + 1]``, ... up to ``end[pos]``, so no child lists are
    stored or kept resident: each probe is an O(#children) walk over
    the resident ``end`` array.
    """

    __slots__ = ("_end",)

    def __init__(self, end: tuple) -> None:
        self._end = end

    def __getitem__(self, pos: int) -> list[int]:
        end = self._end
        stop = end[pos]
        kids: list[int] = []
        child = pos + 1
        while child < stop:
            kids.append(child)
            child = end[child]
        return kids

    def __len__(self) -> int:
        return len(self._end)

    def __iter__(self):
        return (self[pos] for pos in range(len(self._end)))


class StoredDocumentIndex:
    """The engine's index protocol over one stored document.

    Mirrors :class:`~repro.xmlmodel.index.DocumentIndex` -- ``parent``
    / ``end`` / ``depth`` / ``children`` positional arrays, label
    lists, interval scans -- with the skeleton resident (loaded packed
    from the ``structure`` table at build time) and the payload
    hydrated lazily through the store's page cache.  ``generation``
    records the store's on-disk counter at build time; :meth:`fresh_at`
    compares it against the live counter, which is what lets
    ``document_index`` trust an index across process restarts and
    reject one after a concurrent ingest/removal.
    """

    __slots__ = (
        "store",
        "doc_id",
        "n",
        "root_name",
        "generation",
        "stamp",
        "parent",
        "end",
        "depth",
        "names",
        "children",
        "_labels",
        "_label_sets",
        "_page_size",
        "_page_memo",
    )

    def __init__(
        self,
        store: "DocumentStore",
        doc_id: int,
        n: int,
        root_name: str,
        generation: int,
    ) -> None:
        self.store = store
        self.doc_id = doc_id
        self.n = n
        self.root_name = root_name
        self.generation = generation
        self.stamp = mutation_stamp()
        self.parent, self.end, self.depth, self.names = store.structure(
            doc_id
        )
        self.children = _Children(self.end)
        self._labels = store.labels_for(doc_id)
        self._label_sets: dict[str, frozenset] = {}
        self._page_size = store.policy.page_size
        # (page_no, rows) of the payload page touched last: PCDATA
        # probes are overwhelmingly sequential, so this one-tuple memo
        # answers most row reads without taking the shared LRU's lock.
        # One extra resident page per live index; replaced atomically,
        # so racing readers at worst re-fetch.
        self._page_memo: tuple[int, list] | None = None

    def __len__(self) -> int:
        return self.n

    def _row(self, pos: int) -> tuple:
        if not 0 <= pos < self.n:
            raise IndexError(pos)
        page_no, offset = divmod(pos, self._page_size)
        memo = self._page_memo
        if memo is not None and memo[0] == page_no:
            rows = memo[1]
        else:
            rows = self.store.page_rows(self.doc_id, page_no)
            self._page_memo = (page_no, rows)
        if offset >= len(rows):
            raise StoreStaleError(
                f"element {pos} of document {self.doc_id} is gone from "
                f"{self.store.path!r} (removed by another handle?)"
            )
        return rows[offset]

    # -- narrow accessors ------------------------------------------------

    def name_at(self, pos: int) -> str:
        return self.names[pos]

    def pcdata_at(self, pos: int) -> str | None:
        return self._row(pos)[_TEXT]

    def element_at(self, pos: int) -> Element:
        """Hydrate the subtree rooted at ``pos`` (children-first).

        The only place the projection path builds Elements: the picks
        themselves.  Hydrated elements are tagged with their store
        coordinates so :meth:`position_of` (provenance recording) maps
        them back without a scan.
        """
        stop = self.end[pos]
        rows = self._rows_range(pos, stop)
        names = self.names
        children = self.children
        copies: list[Element | None] = [None] * (stop - pos)
        for offset in range(stop - pos - 1, -1, -1):
            row = rows[offset]
            text = row[_TEXT]
            content: list[Element] | str
            if text is not None:
                content = text
            else:
                content = [
                    copies[child - pos]  # type: ignore[misc]
                    for child in children[pos + offset]
                ]
            element = Element(
                names[pos + offset],
                content,
                row[_ELEM_ID],
                dict(row[_ATTRS]) if row[_ATTRS] else {},
            )
            element._store_coords = (  # type: ignore[attr-defined]
                self.store,
                self.doc_id,
                pos + offset,
            )
            copies[offset] = element
        assert copies[0] is not None
        return copies[0]

    def _rows_range(self, start: int, stop: int) -> list[tuple]:
        page_size = self._page_size
        rows: list[tuple] = []
        pos = start
        while pos < stop:
            page_no, offset = divmod(pos, page_size)
            page = self.store.page_rows(self.doc_id, page_no)
            chunk = page[offset : offset + (stop - pos)]
            if not chunk:
                raise StoreStaleError(
                    f"element {pos} of document {self.doc_id} is gone "
                    f"from {self.store.path!r}"
                )
            rows.extend(chunk)
            pos += len(chunk)
        return rows

    def fresh_at(self, stamp: int) -> bool:
        """Stored rows never mutate in place; freshness is the counter."""
        return self.generation == self.store.generation()

    # -- label lists and intervals ----------------------------------------

    def labelled(self, name: str) -> list[int]:
        return self._labels.get(name, [])

    def labelled_set(self, name: str) -> frozenset:
        cached = self._label_sets.get(name)
        if cached is None:
            cached = frozenset(self._labels.get(name, ()))
            self._label_sets[name] = cached
        return cached

    def labelled_within(self, name: str, pos: int) -> list[int]:
        positions = self.labelled(name)
        lo = bisect_left(positions, pos)
        hi = bisect_left(positions, self.end[pos], lo)
        return positions[lo:hi]

    def is_ancestor_or_self(self, ancestor: int, descendant: int) -> bool:
        return ancestor <= descendant < self.end[ancestor]

    def position_of(self, element: Element) -> int | None:
        coords = getattr(element, "_store_coords", None)
        if (
            coords is not None
            and coords[0] is self.store
            and coords[1] == self.doc_id
        ):
            return coords[2]
        return None


class StoredDocument(Document):
    """A document handle whose tree lives in the store.

    Satisfies the :class:`~repro.xmlmodel.element.Document` surface --
    ``root_type``, ``size()``, ``iter()`` -- without holding a tree.
    ``document_index`` dispatches to :meth:`stored_index` (duck-typed),
    so the compiled engine runs on the stored arrays; anything that
    touches ``.root`` (the legacy evaluator, DTD validation,
    serialization) hydrates the full tree *per access* and is counted
    in the store's ``hydrations`` stat -- correctness fallback, not the
    fast path.  Stored documents are immutable: edit by re-ingesting,
    which bumps the generation counter and invalidates live indexes.
    """

    def __init__(
        self,
        store: "DocumentStore",
        doc_id: int,
        root_name: str,
        n_elements: int,
        source: str | None = None,
    ) -> None:
        # No super().__init__: the dataclass initializer assigns
        # ``self.root``, which is a read-only property here.
        self.mutation_version = 0
        self.store = store
        self.doc_id = doc_id
        self.source = source
        self._root_name = root_name
        self._n = n_elements
        self._index: StoredDocumentIndex | None = None

    def stored_index(self) -> StoredDocumentIndex:
        """The (generation-validated) index; ``document_index``'s target.

        Rebuilding loads the packed structural skeleton -- no payload
        rows, no parse -- so a cold process reopening a warm store is
        serving queries after one blob read per document.  A racing
        rebuild after a generation bump is benign: both threads build
        equivalent indexes and the last assignment wins.
        """
        index = self._index
        generation = self.store.generation()
        if index is not None and index.generation == generation:
            return index
        if not self.store.has_document(self.doc_id):
            raise StoreStaleError(
                f"document {self.doc_id} was removed from "
                f"{self.store.path!r}"
            )
        index = StoredDocumentIndex(
            self.store, self.doc_id, self._n, self._root_name, generation
        )
        self._index = index
        return index

    # -- Document surface -------------------------------------------------

    @property
    def root(self) -> Element:  # type: ignore[override]
        """The fully hydrated tree (fallback path; see class docstring).

        Hydrates on every access -- holding the result is the
        caller's choice, the handle itself stays tree-free.
        """
        self.store.hydrations += 1
        return self.stored_index().element_at(0)

    @property
    def root_type(self) -> str:
        return self._root_name

    def size(self) -> int:
        return self._n

    def iter(self):
        return self.root.iter()

    def replace_root(self, root: Element) -> None:
        from ..errors import StoreError

        raise StoreError(
            "stored documents are immutable; re-ingest to change "
            f"document {self.doc_id} of {self.store.path!r}"
        )

    def __repr__(self) -> str:
        return (
            f"StoredDocument(doc_id={self.doc_id}, "
            f"root={self._root_name!r}, n={self._n}, "
            f"store={self.store.path!r})"
        )
