"""The MIX mediator (Figure 1).

A mediator exports XMAS views over registered sources.  When a view is
registered the View DTD Inference module derives its (specialized and
plain) view DTD; the DTD is served to clients -- users formulating
queries through the DTD-based interface, query processors, and *other
mediators stacked on top* (``as_source`` exports a view as a new
source whose DTD is the inferred one).

Answering a query against a view goes through the DTD-based query
simplifier first: provably empty queries never touch a source, and
valid sub-conditions are pruned before evaluation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .. import obs
from ..dtd import Dtd, SpecializedDtd, validate_document
from ..errors import (
    DegradedAnswer,
    MediatorError,
    SourceTimeout,
    SourceUnavailable,
)
from ..inference import (
    Classification,
    InferenceMode,
    InferenceResult,
    infer_view_dtd,
)
from ..xmas import CompiledPlan, Query, compile_query, evaluate_many
from ..xmas.engine import enable_provenance, provenance_of
from ..xmlmodel import Document
from .matview import (
    CacheLeg,
    MatViewCache,
    MatViewPolicy,
    query_signature,
)
from .parallel import FanoutPolicy, ParallelTransport
from .simplifier import SimplifierDecision, simplify_query
from .source import Source
from .transport import (
    Clock,
    Deadline,
    DegradationReport,
    SourceTransport,
    SystemClock,
    TransportPolicy,
)


@dataclass
class ViewRegistration:
    """A mediated view: its definition, source, inferred DTDs, and the
    compiled execution plan (built once at registration, reused for
    every materialization -- the serving hot path never recompiles)."""

    query: Query
    source_name: str
    inference: InferenceResult
    plan: CompiledPlan | None = None

    @property
    def name(self) -> str:
        return self.query.view_name

    @property
    def dtd(self) -> Dtd:
        """The plain view DTD (after Merge)."""
        return self.inference.dtd

    @property
    def sdtd(self) -> SpecializedDtd:
        """The specialized view DTD (the tight description)."""
        return self.inference.sdtd


@dataclass
class QueryPlan:
    """The mediator's plan for a query against a view (see ``explain``)."""

    view_name: str
    classification: "Classification | None"
    pruned_nodes: int
    #: "empty-answer" | "compose" | "materialize" | "union-fanout"
    strategy: str
    composed_query: Query | None
    effective_query: Query | None
    #: per-source transport snapshots (breaker state, retries, ...)
    source_health: list[dict] = field(default_factory=list)
    #: the rendered planning trace (``repro.obs`` span tree; empty when
    #: tracing was disabled and ``explain`` could not install a tracer)
    trace_lines: list[str] = field(default_factory=list)
    #: what the materialized-view cache would do with this request:
    #: "off" (no cache), "disabled", "cold", "hit", "delta", "recompute"
    cache_status: str = "off"

    def describe(self) -> str:
        lines = [
            f"query against view {self.view_name!r}:",
            "  classification: "
            + (
                self.classification.value
                if self.classification is not None
                else "n/a"
            ),
            f"  conditions pruned: {self.pruned_nodes}",
            f"  strategy: {self.strategy}",
            f"  cache: {self.cache_status}",
        ]
        if self.composed_query is not None:
            lines.append("  composed source query:")
            lines.append(
                "    " + str(self.composed_query).replace("\n", "\n    ")
            )
        for health in self.source_health:
            lines.append(
                f"  source {health['source']!r}: breaker "
                f"{health['breaker']} (opened {health['times_opened']}x), "
                f"{health['calls']} calls, {health['retries']} retries, "
                f"{health['failures']} failures, "
                f"{health['timeouts']} timeouts"
            )
        if self.trace_lines:
            lines.append("  planning trace:")
            lines.extend(f"    {line}" for line in self.trace_lines)
        return "\n".join(lines)


@dataclass
class UnionViewRegistration:
    """A registered multi-source union view."""

    name: str
    branches: list
    source_names: list[str]
    inference: "UnionInferenceResult"
    #: lazily memoized matview cache key (branch plan signatures are
    #: stable once registered; rebuilding them per request would tax
    #: the cache's hit path)
    _cache_key: tuple | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def dtd(self) -> Dtd:
        return self.inference.dtd

    @property
    def sdtd(self) -> SpecializedDtd:
        return self.inference.sdtd


@dataclass
class QueryStats:
    """Bookkeeping for the simplifier-benefit experiments (E10)."""

    queries: int = 0
    answered_without_source: int = 0
    conditions_pruned: int = 0
    composed: int = 0
    #: queries the static pre-flight rejected before any planning
    preflight_rejections: int = 0
    #: source fan-outs that never happened thanks to the pre-flight
    fanouts_skipped: int = 0
    #: answers returned partial because sources failed permanently
    degraded_answers: int = 0


class Mediator:
    """An on-demand XML mediator with DTD support."""

    def __init__(
        self,
        name: str = "mediator",
        mode: InferenceMode = InferenceMode.EXACT,
        policy: TransportPolicy | None = None,
        clock: Clock | None = None,
        fanout: FanoutPolicy | None = None,
        cache: MatViewPolicy | MatViewCache | None = None,
    ) -> None:
        self.name = name
        self.mode = mode
        #: the source-call policy (timeout/retry/breaker) applied to
        #: every registered source; see docs/RELIABILITY.md
        self.policy = policy or TransportPolicy()
        self.clock: Clock = clock or SystemClock()
        #: parallel union fan-out (None = the legacy sequential loop,
        #: which later legs' deadline arithmetic depends on — existing
        #: single-threaded callers keep byte-identical behavior)
        self.fanout = fanout
        self.parallel: ParallelTransport | None = (
            ParallelTransport(self.clock, fanout)
            if fanout is not None
            else None
        )
        #: the materialized-view answer cache (None = uncached, the
        #: classic re-evaluate-everything mediator); accepts a policy
        #: (private cache) or a ready MatViewCache (shared warm cache)
        self.matview: MatViewCache | None = None
        if cache is not None:
            self.matview = (
                cache
                if isinstance(cache, MatViewCache)
                else MatViewCache(cache)
            )
            if self.matview.policy.enabled and self.matview.policy.delta:
                # Delta splicing needs the engine's pick provenance.
                enable_provenance()
        self._union_legs: dict[str, tuple[CacheLeg, ...]] = {}
        self.sources: dict[str, Source] = {}
        self.transports: dict[str, SourceTransport] = {}
        self.views: dict[str, ViewRegistration] = {}
        self.union_views: dict[str, "UnionViewRegistration"] = {}
        self.stats = QueryStats()
        #: counter increments on concurrently-served paths (repro.serve
        #: answers one mediator from many handler threads)
        self._stats_lock = threading.Lock()
        #: the diagnostics of the most recent pre-flight (inspection aid)
        self.last_preflight = None
        self._tls = threading.local()
        self._preflight_cache: dict = {}

    @property
    def last_degradation(self) -> DegradationReport | None:
        """What this thread's most recent answer left out (None = complete).

        Thread-local so concurrent server requests each observe their
        own request's degradation, not a sibling's; single-threaded
        callers see the classic "most recent answer" semantics.
        """
        return getattr(self._tls, "degradation", None)

    @last_degradation.setter
    def last_degradation(self, report: DegradationReport | None) -> None:
        self._tls.degradation = report

    @property
    def last_cache_outcome(self) -> str:
        """The matview cache's verdict on this thread's last answer:
        ``"off"`` (no cache configured), ``"bypass"`` (request opted
        out, MED006), ``"hit"``, ``"delta"``, or ``"miss"``."""
        return getattr(self._tls, "cache_outcome", "off")

    @last_cache_outcome.setter
    def last_cache_outcome(self, outcome: str) -> None:
        self._tls.cache_outcome = outcome

    # -- administration --------------------------------------------------

    def add_source(self, source: Source) -> None:
        """Register a wrapped source (behind the transport policy)."""
        if source.name in self.sources:
            raise MediatorError(f"source {source.name!r} already registered")
        self.sources[source.name] = source
        self.transports[source.name] = SourceTransport(
            source, self.policy, self.clock
        )

    def deadline(self, budget: float) -> Deadline:
        """A fan-out deadline ``budget`` seconds from now (this clock)."""
        return Deadline.after(self.clock, budget)

    def warm(self) -> int:
        """Pre-build every source's document indexes (serving state).

        View plans are compiled at registration already; after this,
        the first request is as fast as the thousandth.  Returns the
        number of documents indexed.
        """
        return sum(
            source.warm_indexes() for source in self.sources.values()
        )

    def close(self) -> None:
        """Release the parallel fan-out worker pool (idempotent)."""
        if self.parallel is not None:
            self.parallel.close()

    def health(self) -> dict[str, dict]:
        """Per-source transport health: breaker states, retries, ...

        The operational counterpart of ``stats``: one snapshot per
        source (see :meth:`SourceTransport.health`), renderable with
        :func:`repro.mediator.interface.render_health`.
        """
        return {
            name: transport.health()
            for name, transport in sorted(self.transports.items())
        }

    def _call_source(
        self, name: str, query: Query, deadline: Deadline | None = None
    ) -> Document:
        """One fan-out leg: the source's transport applies the policy."""
        return self.transports[name].call(query, deadline)

    def register_view(self, query: Query, source_name: str | None = None) -> ViewRegistration:
        """Register a view definition; infers its view DTD immediately.

        ``source_name`` defaults to the query's own ``source`` field,
        or to the only registered source.
        """
        target = source_name or query.source
        if target is None:
            if len(self.sources) != 1:
                raise MediatorError(
                    "query names no source and the mediator has "
                    f"{len(self.sources)} sources"
                )
            target = next(iter(self.sources))
        if target not in self.sources:
            raise MediatorError(f"unknown source {target!r}")
        if query.view_name in self.views:
            raise MediatorError(
                f"view {query.view_name!r} already registered"
            )
        source = self.sources[target]
        with obs.span("mediator.register_view") as sp:
            sp.set_attribute("view", query.view_name)
            sp.set_attribute("source", target)
            inference = infer_view_dtd(source.dtd, query, self.mode)
            registration = ViewRegistration(
                query, target, inference, plan=compile_query(query)
            )
        self.views[query.view_name] = registration
        return registration

    # -- the DTD services ------------------------------------------------

    def view_dtd(self, view_name: str) -> Dtd:
        """The inferred plain view DTD (what a generic client asks for)."""
        return self._view(view_name).dtd

    def view_sdtd(self, view_name: str) -> SpecializedDtd:
        """The inferred specialized view DTD (for stacked mediators)."""
        return self._view(view_name).sdtd

    # -- query answering ---------------------------------------------------

    def materialize(
        self, view_name: str, deadline: Deadline | None = None
    ) -> Document:
        """Evaluate a view against its source (through the transport)."""
        registration = self._view(view_name)
        return self._call_source(
            registration.source_name, registration.query, deadline
        )

    def preflight(self, query: Query, view_name: str):
        """Static pre-flight: lint a query against the view DTD.

        Runs the query-scope lint rules (one uncollapsed Tighten run)
        and returns the :class:`~repro.lint.DiagnosticReport`.  An
        error-severity finding (a provably-empty ``MIX101`` dead path)
        means the mediator can answer without any source fan-out; the
        run's shared cache is kept so :meth:`query_view` hands the same
        Tighten result to the simplifier -- pre-flight plus
        simplification cost one classification, not two.
        """
        from ..lint import lint_query

        registration = self._view(view_name)
        cache: dict = {}
        report = lint_query(
            query, registration.dtd, mode=self.mode, cache=cache
        )
        self.last_preflight = report
        self._preflight_cache = cache
        return report

    def query_view(
        self,
        query: Query,
        view_name: str,
        use_simplifier: bool = True,
        strategy: str = "auto",
        preflight: bool | None = None,
        deadline: Deadline | None = None,
        degrade: bool = True,
        cache: bool = True,
    ) -> Document:
        """Answer a query posed against a mediated view.

        With the simplifier on, the view DTD is consulted first: the
        static pre-flight rejects unsatisfiable queries with the empty
        view without materializing anything (recording the skipped
        fan-out), and valid sub-conditions are pruned.

        ``preflight`` defaults to ``use_simplifier``; pass ``False`` to
        measure the un-assisted path.

        ``strategy`` selects the execution plan:

        * ``"auto"`` -- compose the query with the view definition into
          a direct source query when the pair is composable (the
          TSIMMIS rewriting step of Section 1), otherwise materialize;
        * ``"compose"`` -- composition only; raises when not composable;
        * ``"materialize"`` -- always evaluate over the materialized view.

        Source calls go through the fault-tolerant transport under
        ``deadline`` (a shared budget; see :meth:`deadline`).  When
        the source fails permanently and ``degrade`` is true, the
        empty answer is returned instead and ``last_degradation``
        records the skipped source; ``degrade=False`` propagates the
        :class:`SourceTimeout` / :class:`SourceUnavailable` instead
        (docs/RELIABILITY.md).
        """
        if strategy not in ("auto", "compose", "materialize"):
            raise MediatorError(f"unknown strategy {strategy!r}")
        registration = self._view(view_name)
        self.stats.queries += 1
        self.last_degradation = None
        effective = query
        run_preflight = use_simplifier if preflight is None else preflight
        mv = self.matview
        token = None
        if mv is not None and mv.policy.enabled:
            if not cache:
                self.last_cache_outcome = "bypass"
                mv.note_bypass()
            else:
                key = (
                    "query",
                    view_name,
                    query_signature(query),
                    use_simplifier,
                    strategy,
                    run_preflight,
                )
                legs = (
                    CacheLeg(
                        registration.source_name,
                        self.sources[registration.source_name],
                        None,
                    ),
                )
                outcome = mv.probe(key, view_name, None, legs)
                if outcome.answer is not None:
                    self.last_cache_outcome = outcome.status
                    return outcome.answer
                self.last_cache_outcome = "miss"
                token = outcome.token
        elif mv is not None:
            self.last_cache_outcome = "disabled"
        else:
            self.last_cache_outcome = "off"
        tightening = None
        with obs.span("mediator.query_view") as sp:
            sp.set_attribute("view", view_name)
            if run_preflight:
                report = self.preflight(query, view_name)
                tightening = self._preflight_cache.get("tighten")
                if report.has_errors:
                    self.stats.preflight_rejections += 1
                    self.stats.fanouts_skipped += 1
                    self.stats.answered_without_source += 1
                    sp.set_attribute("outcome", "preflight_rejected")
                    from ..xmlmodel import Element, fresh_id

                    return Document(
                        Element(query.view_name, [], fresh_id())
                    )
            if use_simplifier:
                decision: SimplifierDecision = simplify_query(
                    query, registration.dtd, self.mode, tightening=tightening
                )
                if decision.answer_is_empty:
                    self.stats.answered_without_source += 1
                    sp.set_attribute("outcome", "simplified_empty")
                    from ..xmlmodel import Element, fresh_id

                    return Document(
                        Element(query.view_name, [], fresh_id())
                    )
                self.stats.conditions_pruned += decision.pruned_nodes
                effective = decision.query
            try:
                if strategy in ("auto", "compose"):
                    from .composition import compose_query

                    source = self.sources[registration.source_name]
                    composed = compose_query(
                        registration.query, effective, source.dtd
                    )
                    if composed is not None:
                        self.stats.composed += 1
                        sp.set_attribute("outcome", "composed")
                        answer = self._call_source(
                            registration.source_name, composed, deadline
                        )
                        if token is not None:
                            # A composed source query re-runs cleanly
                            # over a single document: delta-capable.
                            assert mv is not None
                            token.legs = (
                                CacheLeg(
                                    registration.source_name,
                                    self.sources[registration.source_name],
                                    composed,
                                ),
                            )
                            mv.store(
                                token, answer, [provenance_of(answer)]
                            )
                        return answer
                    if strategy == "compose":
                        raise MediatorError(
                            "query is not composable with the view definition"
                        )
                sp.set_attribute("outcome", "materialized")
                materialized = self.materialize(view_name, deadline)
                answer = evaluate_many(effective, [materialized])
                if token is not None:
                    # The answer's provenance points at the transient
                    # materialized view, not at source documents, so
                    # this entry is recompute-only.
                    assert mv is not None
                    mv.store(token, answer, [None])
                return answer
            except (SourceTimeout, SourceUnavailable) as error:
                if not degrade:
                    raise
                sp.set_attribute("outcome", "degraded")
                sp.add_event(
                    "degraded",
                    source=registration.source_name,
                    code=error.code,
                )
                return self._degraded_empty_answer(
                    query.view_name, registration.source_name, error
                )

    def _degraded_empty_answer(
        self, answer_name: str, source_name: str, error: MediatorError
    ) -> Document:
        """The degraded answer when a view's only source is down.

        A single-source view has nothing partial to offer, so the
        degraded answer is empty; the annotation (which source was
        skipped and why) is the point.  Ad-hoc client answers carry no
        published DTD, so there is nothing to validate here — view
        materializations go through the validating union path instead.
        """
        from ..xmlmodel import Element, fresh_id

        report = DegradationReport(
            view_name=answer_name,
            skipped={source_name: f"{error.code}: {error}"},
        )
        with self._stats_lock:
            self.stats.degraded_answers += 1
        self.last_degradation = report
        return Document(Element(answer_name, [], fresh_id()))

    def as_source(self, view_name: str) -> Source:
        """Export a view as a source for a higher-level mediator.

        The exported source's DTD is the inferred view DTD -- this is
        exactly what makes mediator stacking work: "it is important
        that the lower level mediators can derive and provide their
        view DTDs to the higher level ones" (Section 1).
        """
        registration = self._view(view_name)
        document = self.materialize(view_name)
        return Source(
            name=f"{self.name}.{view_name}",
            dtd=registration.dtd,
            documents=[document],
        )

    def explain(self, query: Query, view_name: str) -> "QueryPlan":
        """Describe how a query against a view would be answered.

        Runs the simplifier and the composability check without
        touching any source -- the "query processor derives more
        efficient plans" story of Section 1, made inspectable.  The
        planning work runs under a ``repro.obs`` span (a scoped tracer
        is installed when none is active), and the rendered span tree
        is attached as :attr:`QueryPlan.trace_lines` -- ``describe()``
        shows where the plan's time and decisions went.
        """
        scope = None
        if not obs.enabled():
            scope = obs.traced(clock=self.clock)
            scope.__enter__()
        try:
            with obs.span("mediator.explain") as sp:
                sp.set_attribute("view", view_name)
                plan = self._explain_plan(query, view_name)
                sp.set_attribute("strategy", plan.strategy)
        finally:
            if scope is not None:
                scope.__exit__(None, None, None)
        plan.trace_lines = sp.render().splitlines()
        return plan

    def _explain_plan(self, query: Query, view_name: str) -> "QueryPlan":
        registration = self._view(view_name)
        decision = simplify_query(query, registration.dtd, self.mode)
        composed = None
        if not decision.answer_is_empty:
            from .composition import compose_query

            source = self.sources[registration.source_name]
            composed = compose_query(
                registration.query, decision.query, source.dtd
            )
        if decision.answer_is_empty:
            strategy = "empty-answer"
        elif composed is not None:
            strategy = "compose"
        else:
            strategy = "materialize"
        transport = self.transports.get(registration.source_name)
        cache_status = "off"
        if self.matview is not None:
            key = (
                "query",
                view_name,
                query_signature(query),
                True,
                "auto",
                True,
            )
            legs = (
                CacheLeg(
                    registration.source_name,
                    self.sources[registration.source_name],
                    None,
                ),
            )
            cache_status = self.matview.peek(key, legs)
        return QueryPlan(
            view_name=view_name,
            classification=decision.classification,
            pruned_nodes=decision.pruned_nodes,
            strategy=strategy,
            composed_query=composed,
            effective_query=decision.query,
            source_health=[transport.health()] if transport else [],
            cache_status=cache_status,
        )

    def explain_union(self, view_name: str) -> "QueryPlan":
        """Describe how a union-view materialization would be served.

        The union counterpart of :meth:`explain`: reports the fan-out
        shape, per-source transport health, and -- with a configured
        cache -- what the materialized-view cache would do right now
        (``hit``, ``delta``, ``recompute``, or ``cold``) without
        touching any source or mutating the cache.
        """
        registration = self._union_view(view_name)
        scope = None
        if not obs.enabled():
            scope = obs.traced(clock=self.clock)
            scope.__enter__()
        try:
            with obs.span("mediator.explain") as sp:
                sp.set_attribute("view", view_name)
                cache_status = "off"
                if self.matview is not None:
                    cache_status = self.matview.peek(
                        self._union_cache_key(registration),
                        self._union_cache_legs(registration),
                    )
                sp.set_attribute("cache", cache_status)
                plan = QueryPlan(
                    view_name=view_name,
                    classification=None,
                    pruned_nodes=0,
                    strategy="union-fanout",
                    composed_query=None,
                    effective_query=None,
                    source_health=[
                        self.transports[name].health()
                        for name in registration.source_names
                    ],
                    cache_status=cache_status,
                )
        finally:
            if scope is not None:
                scope.__exit__(None, None, None)
        plan.trace_lines = sp.render().splitlines()
        return plan

    # -- union views -------------------------------------------------------

    def register_union_view(
        self, queries: list[Query], view_name: str
    ) -> "UnionViewRegistration":
        """Register a view unioning picks from several sources.

        Each query's ``source`` field names its source.  The combined
        view DTD is inferred per branch and merged (name collisions
        across sources become specializations -- see
        :mod:`repro.inference.union`).
        """
        from ..inference.union import UnionBranch, infer_union_view_dtd

        if view_name in self.views or view_name in self.union_views:
            raise MediatorError(f"view {view_name!r} already registered")
        branches: list[UnionBranch] = []
        source_names: list[str] = []
        for query in queries:
            if query.source is None:
                raise MediatorError(
                    "every union branch must name its source"
                )
            if query.source not in self.sources:
                raise MediatorError(f"unknown source {query.source!r}")
            branches.append(
                UnionBranch(self.sources[query.source].dtd, query)
            )
            source_names.append(query.source)
            compile_query(query)  # warm the plan cache for serving
        inference = infer_union_view_dtd(branches, view_name, self.mode)
        registration = UnionViewRegistration(
            view_name, branches, source_names, inference
        )
        self.union_views[view_name] = registration
        return registration

    def _union_cache_key(
        self, registration: "UnionViewRegistration"
    ) -> tuple:
        if registration._cache_key is None:
            registration._cache_key = (
                "union",
                registration.name,
                tuple(
                    query_signature(branch.query)
                    for branch in registration.branches
                ),
            )
        return registration._cache_key

    def _union_cache_legs(
        self, registration: "UnionViewRegistration"
    ) -> tuple[CacheLeg, ...]:
        legs = self._union_legs.get(registration.name)
        if legs is None:
            legs = tuple(
                CacheLeg(source_name, self.sources[source_name], branch.query)
                for branch, source_name in zip(
                    registration.branches, registration.source_names
                )
            )
            self._union_legs[registration.name] = legs
        return legs

    def materialize_union(
        self,
        view_name: str,
        deadline: Deadline | None = None,
        degrade: bool = True,
        cache: bool = True,
    ) -> Document:
        """Evaluate a union view across its sources (fault-tolerant).

        Each branch is one fan-out leg through its source's transport;
        all legs share ``deadline``.  With a :class:`FanoutPolicy`
        configured the legs run concurrently on the mediator's
        :class:`~repro.mediator.parallel.ParallelTransport` — a union
        over N sources costs the max, not the sum, of their latencies —
        otherwise they run in the legacy sequential loop.  Either way
        the answer (picks in branch order), the degradation report,
        and the ``degrade=False`` error (the first failing branch in
        branch order) are the same.

        When a leg fails permanently and ``degrade`` is true, its
        branch is skipped and the *partial* answer — the surviving
        branches' picks, in branch order — is returned, annotated in
        ``last_degradation``.  The partial answer is validated against
        the inferred union view DTD first: if dropping the branch
        would make the answer violate the view DTD the mediator raises
        :class:`DegradedAnswer` rather than return an unsound document
        (the soundness argument is spelled out in
        docs/RELIABILITY.md).

        With a configured :class:`MatViewCache` (``Mediator(cache=...)``),
        repeat materializations of an unchanged federation are served
        from the cache without touching any source, and a mutation
        localized to one source document is delta-spliced instead of
        recomputed; ``cache=False`` bypasses the cache for this one
        request (``MED006``).  Degraded answers are never cached.  See
        docs/PERFORMANCE.md.
        """
        from ..xmlmodel import Element, fresh_id

        registration = self._union_view(view_name)
        self.last_degradation = None
        mv = self.matview
        token = None
        if mv is not None and mv.policy.enabled:
            if not cache:
                self.last_cache_outcome = "bypass"
                mv.note_bypass()
            else:
                outcome = mv.probe(
                    self._union_cache_key(registration),
                    view_name,
                    registration.dtd,
                    self._union_cache_legs(registration),
                )
                if outcome.answer is not None:
                    self.last_cache_outcome = outcome.status
                    return outcome.answer
                self.last_cache_outcome = "miss"
                token = outcome.token
        elif mv is not None:
            self.last_cache_outcome = "disabled"
        else:
            self.last_cache_outcome = "off"
        report = DegradationReport(view_name=view_name)
        picks: list = []
        first_error: MediatorError | None = None
        legs = list(
            zip(registration.branches, registration.source_names)
        )
        use_parallel = self.parallel is not None and len(legs) > 1
        with obs.span("mediator.materialize_union") as sp:
            sp.set_attribute("view", view_name)
            sp.set_attribute("sources", len(registration.source_names))
            sp.set_attribute(
                "fanout", "parallel" if use_parallel else "sequential"
            )
            if use_parallel:
                results = self.parallel.fan_out(
                    [
                        (self.transports[source_name], branch.query)
                        for branch, source_name in legs
                    ],
                    deadline,
                )
                outcomes = [
                    (source_name, result.answer, result.error)
                    for (_, source_name), result in zip(legs, results)
                ]
            else:
                outcomes = []
                for branch, source_name in legs:
                    try:
                        answer = self._call_source(
                            source_name, branch.query, deadline
                        )
                    except (SourceTimeout, SourceUnavailable) as error:
                        if not degrade:
                            raise
                        outcomes.append((source_name, None, error))
                        continue
                    outcomes.append((source_name, answer, None))
            for source_name, answer, error in outcomes:
                if error is not None:
                    if not degrade:
                        raise error
                    if first_error is None:
                        first_error = error
                    report.skipped[source_name] = f"{error.code}: {error}"
                    sp.add_event(
                        "leg.skipped", source=source_name, code=error.code
                    )
                    continue
                report.answered.append(source_name)
                picks.extend(answer.root.children)
            document = Document(Element(view_name, picks, fresh_id()))
            sp.set_attribute("degraded", report.degraded)
            sp.set_attribute("answered", len(report.answered))
            sp.set_attribute("skipped", len(report.skipped))
            if report.degraded:
                report.answer_valid = validate_document(
                    document, registration.dtd
                ).ok
                sp.set_attribute("answer_valid", report.answer_valid)
                if not report.answer_valid:
                    raise DegradedAnswer(
                        f"view {view_name!r}: skipping "
                        f"{sorted(report.skipped)} leaves an answer that "
                        "violates the inferred view DTD; refusing to degrade",
                        document=document,
                        report=report,
                    ) from first_error
                with self._stats_lock:
                    self.stats.degraded_answers += 1
                self.last_degradation = report
            if token is not None and not report.skipped:
                assert mv is not None
                mv.store(
                    token,
                    document,
                    [
                        provenance_of(answer)
                        for _, answer, _ in outcomes
                    ],
                )
        return document

    def _union_view(self, view_name: str) -> "UnionViewRegistration":
        try:
            return self.union_views[view_name]
        except KeyError:
            raise MediatorError(f"unknown union view {view_name!r}")

    def _view(self, view_name: str) -> ViewRegistration:
        try:
            return self.views[view_name]
        except KeyError:
            raise MediatorError(f"unknown view {view_name!r}")
