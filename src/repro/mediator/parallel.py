"""Parallel source fan-out: a union pays max, not sum, of latencies.

The sequential fan-out in :class:`~repro.mediator.mediator.Mediator`
calls each union branch's transport in turn under one shared
:class:`~repro.mediator.transport.Deadline`; N sources cost the *sum*
of their latencies.  This module dispatches the legs on a bounded
worker pool so they cost the *max* — the single largest hot-path win
left after compilation and indexing (see ``BENCH_PR7.json``).

Three properties the sequential path had are preserved:

* **Determinism under** :class:`~repro.mediator.transport.FakeClock`.
  The fake clock doubles as a virtual-time scheduler (workers park on
  wake times; time jumps only when every worker is parked), so leg
  start times, timeout verdicts, ``CallStats``, degradation reports,
  and span timestamps are identical across runs — OS thread
  interleaving cannot leak into any observable.
* **Cooperative timeouts and shared deadlines.**  Each leg still runs
  through its :class:`~repro.mediator.transport.SourceTransport`
  against the same deadline budget; budget now drains concurrently
  (wall time), which is the point.
* **Per-source breakers.**  Breakers (and the metrics registry, and
  the engine's caches) are lock-guarded, because legs now hit them
  concurrently.

**Cost-aware dispatch.**  Every transport keeps a histogram of
measured answer latencies (``SourceTransport.latency``, the
``repro.obs`` histogram type).  The fan-out dispatches
**slowest-first** — the classic longest-processing-time heuristic:
when legs outnumber workers, starting the slowest source earliest
minimizes the makespan — and derives a **p95-based per-call timeout**
(``p95 × timeout_headroom``) for sources with enough history, so a
source that has gone slow is cut off early and degraded answers under
deadline pressure preferentially keep the fast, healthy sources.

See ``docs/RELIABILITY.md`` (semantics) and ``docs/SERVING.md`` (how
the serving front end drives this) for the full story.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass

from .. import obs
from ..errors import SourceTimeout, SourceUnavailable
from ..xmas import Query
from ..xmlmodel import Document
from .transport import Clock, Deadline, SourceTransport, SystemClock


@dataclass(frozen=True)
class FanoutPolicy:
    """How a mediator parallelizes its union fan-outs.

    ``max_workers`` bounds the pool (legs beyond it queue and start as
    workers free up).  ``timeout_headroom`` scales the p95 latency into
    a per-call timeout, floored at ``min_timeout`` so one fast answer
    cannot strangle a source's natural variance; the derivation only
    kicks in after ``min_history`` measured answers.  ``cost_aware``
    turns slowest-first ordering and timeout derivation off together
    (registration order, policy timeouts only).
    """

    max_workers: int = 4
    timeout_headroom: float = 2.0
    min_timeout: float = 0.05
    min_history: int = 4
    cost_aware: bool = True


@dataclass
class LegResult:
    """One fan-out leg's outcome, in the caller's original leg order."""

    source: str
    answer: Document | None = None
    error: Exception | None = None
    #: seconds this leg spent in its transport call (clock time)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _virtual(clock: Clock) -> bool:
    """Does this clock speak the virtual-worker protocol?"""
    return hasattr(clock, "reserve_workers") and hasattr(
        clock, "claim_worker"
    )


#: Is this thread currently running a fan-out leg?  Process-wide (not
#: per-instance): a leg that fans out again through a *different*
#: ParallelTransport — a stacked mediator, or a sharded source's
#: gather inside a union leg — must also run inline.  Nesting real
#: pools squares the thread count for no win, and under a virtual
#: clock the outer worker would block unparked on the inner fan-out,
#: deadlocking the fake clock's all-parked time-advance rule.
_FANOUT_STATE = threading.local()


class ParallelTransport:
    """Fan a set of transport calls out over a bounded worker pool.

    One instance per mediator (or server); the pool is created lazily
    and shared across fan-outs.  ``fan_out`` never raises for leg
    failures the transport classifies (:class:`SourceTimeout` /
    :class:`SourceUnavailable` land in the :class:`LegResult`); any
    *other* exception escaping a leg is a bug and is re-raised.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        policy: FanoutPolicy | None = None,
    ) -> None:
        self.clock: Clock = clock or SystemClock()
        self.policy = policy or FanoutPolicy()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        #: fan-outs dispatched in parallel / answered inline
        self.parallel_fanouts = 0
        self.inline_fanouts = 0

    # -- cost model ------------------------------------------------------

    def dispatch_order(
        self, legs: list[tuple[SourceTransport, Query]]
    ) -> list[int]:
        """Leg indexes in dispatch order (slowest p95 first).

        Sources without enough latency history sort ahead of known
        ones — an unmeasured source must be assumed slow, and starting
        it early is free when it turns out fast.  Ties (and the
        cost-model-off case) keep registration order, so the order is
        always deterministic.
        """
        indexes = list(range(len(legs)))
        if not self.policy.cost_aware:
            return indexes
        estimates: list[float] = []
        for transport, _ in legs:
            p95 = None
            if transport.latency.count >= self.policy.min_history:
                p95 = transport.latency_quantile(0.95)
            estimates.append(float("inf") if p95 is None else p95)
        indexes.sort(key=lambda i: (-estimates[i], i))
        return indexes

    def derived_timeout(self, transport: SourceTransport) -> float | None:
        """The p95-based per-call timeout for one leg (None = policy).

        Only derived once the source has ``min_history`` measured
        answers; the transport takes the *minimum* of this and its
        policy timeout, so derivation can only tighten.
        """
        if not self.policy.cost_aware:
            return None
        if transport.latency.count < self.policy.min_history:
            return None
        p95 = transport.latency_quantile(0.95)
        if p95 is None:
            return None
        return max(self.policy.min_timeout, p95 * self.policy.timeout_headroom)

    # -- fan-out ---------------------------------------------------------

    def fan_out(
        self,
        legs: list[tuple[SourceTransport, Query]],
        deadline: Deadline | None = None,
    ) -> list[LegResult]:
        """Call every leg; results come back in the input leg order."""
        if not legs:
            return []
        workers = min(self.policy.max_workers, len(legs))
        if workers <= 1 or len(legs) == 1 or getattr(
            _FANOUT_STATE, "active", False
        ):
            # Single-source serving path (the <5% overhead gate), a
            # worker-pool of one, or a nested fan-out from inside a
            # worker (stacked mediators, sharded-source gathers): run
            # inline — no threads, no pool, just the cost model.
            self.inline_fanouts += 1
            return [
                self._run_leg(transport, query, deadline)
                for transport, query in legs
            ]
        self.parallel_fanouts += 1
        order = self.dispatch_order(legs)
        results: list[LegResult | None] = [None] * len(legs)
        work: deque = deque()
        for index in order:
            transport, query = legs[index]
            leg_span = obs.start_span("fanout.leg")
            leg_span.set_attribute("source", transport.name)
            work.append((index, transport, query, leg_span))
        virtual = _virtual(self.clock)
        if virtual:
            # Reserve before any worker can run: a worker that parks
            # before its siblings' threads start must not advance time.
            self.clock.reserve_workers(workers)
        futures = [
            self._pool().submit(self._runner, work, results, deadline, virtual)
            for _ in range(workers)
        ]
        wait(futures)
        for future in futures:
            future.result()  # surface runner bugs, never leg failures
        return [result for result in results if result is not None]

    def _runner(
        self,
        work: deque,
        results: list,
        deadline: Deadline | None,
        virtual: bool,
    ) -> None:
        if virtual:
            self.clock.claim_worker()
        _FANOUT_STATE.active = True
        try:
            while True:
                try:
                    index, transport, query, leg_span = work.popleft()
                except IndexError:
                    break
                with obs.attach(leg_span):
                    results[index] = self._run_leg(
                        transport, query, deadline
                    )
                obs.finish_span(leg_span)
        finally:
            _FANOUT_STATE.active = False
            if virtual:
                self.clock.release_worker()

    def _run_leg(
        self,
        transport: SourceTransport,
        query: Query,
        deadline: Deadline | None,
    ) -> LegResult:
        started = self.clock.now()
        try:
            answer = transport.call(
                query, deadline, timeout=self.derived_timeout(transport)
            )
        except (SourceTimeout, SourceUnavailable) as error:
            return LegResult(
                source=transport.name,
                error=error,
                elapsed=self.clock.now() - started,
            )
        return LegResult(
            source=transport.name,
            answer=answer,
            elapsed=self.clock.now() - started,
        )

    # -- pool lifecycle --------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        executor = self._executor
        if executor is None:
            with self._executor_lock:
                executor = self._executor
                if executor is None:
                    executor = self._executor = ThreadPoolExecutor(
                        max_workers=self.policy.max_workers,
                        thread_name_prefix="repro-fanout",
                    )
        return executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def __enter__(self) -> "ParallelTransport":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
