"""The MIX mediator architecture (Figure 1).

Sources export XML + DTDs; the mediator registers XMAS views, infers
their view DTDs, serves them to clients and stacked mediators, and
answers queries through the DTD-based simplifier.  Source calls go
through a fault-tolerant transport (timeouts, retries, circuit
breakers, deadline budgets, degraded answers — see
docs/RELIABILITY.md), testable deterministically with the
fault-injection harness in :mod:`repro.mediator.faults`.
"""

from .composition import compose_query
from .faults import ERROR, OK, FaultPlan, FaultSpec, FaultySource, slow
from .interface import (
    QueryBuilder,
    StructureNode,
    render_health,
    structure_tree,
)
from .matview import (
    CacheLeg,
    CacheOutcome,
    MatViewCache,
    MatViewPolicy,
    plan_signature,
    query_signature,
)
from .mediator import (
    Mediator,
    QueryPlan,
    QueryStats,
    UnionViewRegistration,
    ViewRegistration,
)
from .parallel import FanoutPolicy, LegResult, ParallelTransport
from .sharding import (
    ShardGatherReport,
    ShardPolicy,
    ShardStats,
    ShardedSource,
    fragment_by_child,
    fragment_can_match,
    fragment_specialization_problem,
    partition_documents,
)
from .simplifier import SimplifierDecision, simplify_query
from .source import Source
from .transport import (
    BreakerPolicy,
    BreakerState,
    CallStats,
    CircuitBreaker,
    Clock,
    Deadline,
    DegradationReport,
    FakeClock,
    RetryPolicy,
    SourceTransport,
    SystemClock,
    TransportPolicy,
)

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "CacheLeg",
    "CacheOutcome",
    "CallStats",
    "CircuitBreaker",
    "Clock",
    "Deadline",
    "DegradationReport",
    "ERROR",
    "FakeClock",
    "FanoutPolicy",
    "FaultPlan",
    "FaultSpec",
    "FaultySource",
    "LegResult",
    "MatViewCache",
    "MatViewPolicy",
    "Mediator",
    "OK",
    "ParallelTransport",
    "QueryBuilder",
    "QueryPlan",
    "QueryStats",
    "RetryPolicy",
    "ShardGatherReport",
    "ShardPolicy",
    "ShardStats",
    "ShardedSource",
    "SimplifierDecision",
    "Source",
    "SourceTransport",
    "StructureNode",
    "SystemClock",
    "TransportPolicy",
    "UnionViewRegistration",
    "ViewRegistration",
    "compose_query",
    "fragment_by_child",
    "fragment_can_match",
    "fragment_specialization_problem",
    "partition_documents",
    "plan_signature",
    "query_signature",
    "render_health",
    "simplify_query",
    "slow",
    "structure_tree",
]
