"""The MIX mediator architecture (Figure 1).

Sources export XML + DTDs; the mediator registers XMAS views, infers
their view DTDs, serves them to clients and stacked mediators, and
answers queries through the DTD-based simplifier.
"""

from .composition import compose_query
from .interface import QueryBuilder, StructureNode, structure_tree
from .mediator import (
    Mediator,
    QueryPlan,
    QueryStats,
    UnionViewRegistration,
    ViewRegistration,
)
from .simplifier import SimplifierDecision, simplify_query
from .source import Source

__all__ = [
    "Mediator",
    "QueryBuilder",
    "QueryPlan",
    "QueryStats",
    "SimplifierDecision",
    "Source",
    "StructureNode",
    "UnionViewRegistration",
    "ViewRegistration",
    "compose_query",
    "simplify_query",
    "structure_tree",
]
