"""Sources and wrappers.

A :class:`Source` models a wrapped repository: it exports XML documents
together with the DTD describing them (the paper's premise is that XML
sources, unlike OEM sources, ship a DTD).  The wrapper's job --
translating native data to XML -- is outside our scope; a source here
simply holds valid documents and answers pick-element queries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dtd import Dtd, validate_document
from ..errors import ValidationError
from ..xmas import Query, evaluate_many
from ..xmlmodel import Document

if TYPE_CHECKING:
    from ..store import DocumentStore


@dataclass
class Source:
    """A wrapped XML repository with a DTD.

    Documents are validated on insertion; a source never holds a
    document that violates its own DTD (that is what makes the view
    DTD inference sound end-to-end).
    """

    name: str
    dtd: Dtd
    documents: list[Document] = field(default_factory=list)
    #: set False to skip validation for trusted bulk loads (benchmarks)
    validate: bool = True
    #: how many queries this source has answered (fan-out accounting:
    #: the mediator pre-flight is measured by what *never* gets here)
    queries_served: int = 0
    #: a :class:`~repro.store.DocumentStore` whose documents this
    #: source serves in addition to ``documents`` (loaded as handles in
    #: ``__post_init__``; validated per ``validate`` like any other)
    attach_store: "DocumentStore | None" = None
    #: guards ``queries_served``: concurrent ``repro serve`` handler
    #: threads hit the same source, and an unguarded ``+= 1`` is a
    #: read-modify-write that loses increments under contention
    _served_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        existing, self.documents = self.documents, []
        for document in existing:
            self.add_document(document)
        if self.attach_store is not None:
            for document in self.attach_store.documents():
                self.add_document(document)

    @classmethod
    def from_store(
        cls,
        name: str,
        dtd: Dtd,
        store: "DocumentStore",
        *,
        source: str | None = None,
        validate: bool = False,
    ) -> "Source":
        """A source backed by a persistent :class:`~repro.store.DocumentStore`.

        Loads the store's document handles (all of them, or only those
        ingested under ``source=``) without hydrating any trees; the
        compiled engine answers queries straight from the stored
        preorder arrays.  ``validate=True`` checks each document
        against ``dtd`` up front -- that hydrates every tree once, so
        leave it off for large corpora that were validated at ingest.
        """
        documents = store.documents(source=source)
        src = cls(name, dtd, [], validate=validate)
        for document in documents:
            src.add_document(document)
        return src

    def add_document(self, document: Document) -> None:
        """Add a document, validating it against the source DTD."""
        if self.validate:
            report = validate_document(document, self.dtd)
            if not report.ok:
                raise ValidationError(
                    f"document rejected by source {self.name!r}: {report}"
                )
        self.documents.append(document)

    def query(self, query: Query) -> Document:
        """Answer a pick-element query over all documents.

        An empty source is a degenerate *healthy* source, not an
        error: the answer is the empty-but-valid view document (no
        picks), exactly what evaluating over zero documents yields.
        Failing here used to conflate "nothing to say" with "cannot
        answer", which the fault-tolerant transport layer must keep
        apart (docs/RELIABILITY.md).
        """
        with self._served_lock:
            self.queries_served += 1
        return evaluate_many(query, self.documents)

    def warm_indexes(self) -> int:
        """Pre-build the document indexes the compiled engine uses.

        Serving latency work moved to load time; returns the number of
        documents indexed.  A no-op for the legacy backend (indexes are
        simply never consulted).
        """
        from ..xmlmodel import document_index

        for document in self.documents:
            document_index(document)
        return len(self.documents)

    def size(self) -> int:
        """Total number of elements across all documents."""
        return sum(document.size() for document in self.documents)
