"""Deterministic fault injection for sources.

Every transport policy in :mod:`repro.mediator.transport` is testable
without wall-clock sleeps because faults and time are both injected:

* a :class:`FaultPlan` decides, per call, whether a source errors and
  how long it "takes" — either from an explicit scripted ``schedule``
  or from a seeded error-rate/latency model (same seed, same
  outcomes);
* a :class:`FaultySource` is a :class:`Source` that consults its plan
  before answering, sleeping its injected latency on the *injectable
  clock* (so a :class:`FakeClock` makes latency exact and free) and
  raising :class:`FaultInjected` on scheduled errors.

The cookbook in ``docs/RELIABILITY.md`` shows the standard recipes
(flaky source, dead source, slow source, burst outage).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..dtd import Dtd
from ..errors import FaultInjected
from ..xmas import Query
from ..xmlmodel import Document
from .source import Source
from .transport import Clock, SystemClock


@dataclass(frozen=True)
class FaultSpec:
    """The scripted outcome of one call: added latency, then error?"""

    error: bool = False
    latency: float = 0.0


#: shorthands for writing schedules by hand
OK = FaultSpec()
ERROR = FaultSpec(error=True)


def slow(latency: float) -> FaultSpec:
    """A call that succeeds after ``latency`` injected seconds."""
    return FaultSpec(latency=latency)


@dataclass
class FaultPlan:
    """A per-call outcome schedule — explicit, stochastic, or both.

    Outcomes are drawn in call order:

    1. while ``fail_first`` calls remain, the call errors (burst
       outage at startup — exercises retries and breaker tripping);
    2. otherwise, while the explicit ``schedule`` has entries left,
       the next entry is used verbatim;
    3. otherwise the seeded stochastic model applies: with
       probability ``error_rate`` the call errors; latency is
       ``latency`` plus a uniform draw in ``[0, latency_jitter]``.

    ``dead=True`` overrides everything: the source never answers (a
    permanently broken wrapper).  Same seed ⇒ same outcome sequence,
    so every test and benchmark is reproducible.
    """

    error_rate: float = 0.0
    latency: float = 0.0
    latency_jitter: float = 0.0
    dead: bool = False
    fail_first: int = 0
    schedule: list[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._cursor = 0
        self._fail_remaining = self.fail_first

    def next_outcome(self) -> FaultSpec:
        """The outcome of the next call (advances the plan)."""
        if self.dead:
            return ERROR
        if self._fail_remaining > 0:
            self._fail_remaining -= 1
            return ERROR
        if self._cursor < len(self.schedule):
            spec = self.schedule[self._cursor]
            self._cursor += 1
            return spec
        latency = self.latency
        if self.latency_jitter:
            latency += self._rng.uniform(0.0, self.latency_jitter)
        error = (
            self.error_rate > 0.0
            and self._rng.random() < self.error_rate
        )
        return FaultSpec(error=error, latency=latency)

    def reset(self) -> None:
        """Rewind to call zero (same seed ⇒ identical replay)."""
        self._rng = random.Random(self.seed)
        self._cursor = 0
        self._fail_remaining = self.fail_first


class FaultySource(Source):
    """A :class:`Source` whose wrapper misbehaves on schedule.

    Injected latency is slept on the injectable clock *before* the
    underlying evaluation, so a transport measuring the same clock
    sees exactly the scheduled delay; injected errors raise
    :class:`FaultInjected` (diagnostic ``MED005``).  Counters record
    what was injected for assertions and reports.
    """

    def __init__(
        self,
        name: str,
        dtd: Dtd,
        documents: list[Document] | None = None,
        *,
        plan: FaultPlan | None = None,
        clock: Clock | None = None,
        validate: bool = True,
    ) -> None:
        super().__init__(name, dtd, documents or [], validate=validate)
        self.plan = plan or FaultPlan()
        self.clock: Clock = clock or SystemClock()
        self.injected_errors = 0
        self.injected_latency = 0.0

    def query(self, query: Query) -> Document:
        spec = self.plan.next_outcome()
        if spec.latency > 0:
            self.injected_latency += spec.latency
            self.clock.sleep(spec.latency)
        if spec.error:
            self.injected_errors += 1
            raise FaultInjected(
                f"injected fault in source {self.name!r} "
                f"(call {self.injected_errors + self.queries_served})"
            )
        return super().query(query)
