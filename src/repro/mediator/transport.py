"""Fault-tolerant source calls: timeouts, retries, circuit breakers.

The paper's Figure 1 stacks mediators over wrappers that always
answer; a real federation cannot assume that.  This module wraps every
:meth:`Source.query <repro.mediator.source.Source.query>` in a
*transport policy*:

* a **per-call timeout** and a **deadline budget** shared by every
  call of one fan-out (a slow source cannot starve its siblings);
* **bounded retries** with exponential backoff and seeded jitter;
* a per-source **circuit breaker** (closed / open / half-open, with a
  failure-rate threshold over a sliding window) so a broken source
  fails fast instead of burning the deadline of every query.

Time is injectable: every component takes a :class:`Clock`, and
:class:`FakeClock` advances only when something sleeps on it, so the
whole policy — backoff schedules, breaker recovery, deadline
exhaustion — is testable deterministically without wall-clock sleeps
(see :mod:`repro.mediator.faults` for the matching fault-injection
harness).

Timeouts are detected *cooperatively*: the transport cannot preempt a
synchronous wrapper, so it measures each call's elapsed time on the
clock, discards answers that arrive after the effective timeout, and
charges the elapsed time against the deadline budget.  With
:class:`FakeClock` + latency schedules this is exact; with the system
clock it is an accounting discipline, not preemption.

Semantics, the state machine, and the soundness argument for degraded
answers are documented in ``docs/RELIABILITY.md``.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Protocol

from .. import obs
from ..errors import ReproError, SourceTimeout, SourceUnavailable
from ..xmas import Query
from ..xmlmodel import Document
from .source import Source

# ---------------------------------------------------------------------------
# clocks
# ---------------------------------------------------------------------------


class Clock(Protocol):
    """The time interface every transport component is written against."""

    def now(self) -> float:
        """Monotonic seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (advance time)."""
        ...


class SystemClock:
    """Wall-clock time (``time.monotonic`` / ``time.sleep``)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock:
    """A manual clock: time advances only via :meth:`sleep`/:meth:`advance`.

    Deterministic by construction — the test suite never sleeps for
    real.  ``sleeps`` records every sleep request so backoff schedules
    can be asserted exactly.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self._now += max(0.0, seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        self._now += max(0.0, seconds)


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


@dataclass
class Deadline:
    """A budget shared across one fan-out's source calls.

    Every call charges its elapsed time (including backoff sleeps)
    against the same budget, so the deadline of a federated query is a
    property of the *query*, not of each source call.
    """

    clock: Clock
    expires_at: float

    @classmethod
    def after(cls, clock: Clock, budget: float) -> "Deadline":
        """A deadline ``budget`` seconds from now on ``clock``."""
        return cls(clock, clock.now() + budget)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - self.clock.now())

    @property
    def expired(self) -> bool:
        return self.clock.now() >= self.expires_at

    def require(self, what: str) -> None:
        """Raise :class:`SourceTimeout` when the budget is spent."""
        if self.expired:
            raise SourceTimeout(f"deadline budget exhausted before {what}")


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``attempts`` counts total tries (1 = fail-fast).  The delay before
    retry ``k`` (1-based) is ``base_delay * multiplier**(k-1)`` capped
    at ``max_delay``, then jittered by a uniform factor in
    ``[1-jitter, 1+jitter]`` drawn from the transport's seeded RNG —
    deterministic for a fixed seed, decorrelated across sources.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def backoff(self, retry_number: int, rng: random.Random) -> float:
        """Delay before the ``retry_number``-th retry (1-based)."""
        delay = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (retry_number - 1),
        )
        if self.jitter:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay


@dataclass(frozen=True)
class BreakerPolicy:
    """When a source trips open and how it recovers.

    The breaker trips when, among the last ``window`` calls (and at
    least ``min_calls`` of them), the failure rate reaches
    ``failure_rate``.  After ``reset_timeout`` seconds open it admits
    ``half_open_probes`` trial calls; that many consecutive successes
    close it, any failure reopens it.
    """

    window: int = 8
    min_calls: int = 4
    failure_rate: float = 0.5
    reset_timeout: float = 30.0
    half_open_probes: int = 1


@dataclass(frozen=True)
class TransportPolicy:
    """The full per-source call policy: timeout + retries + breaker.

    ``timeout`` is the per-call limit in seconds (``None`` = no
    limit).  ``seed`` makes the jitter RNG deterministic; each
    transport derives its own stream from it and the source name.
    """

    timeout: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    seed: int = 0


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """A per-source breaker: closed → open → half-open → closed.

    * **closed** — calls flow; outcomes feed a sliding window; when
      the windowed failure rate reaches the threshold, trip open.
    * **open** — calls are rejected without touching the source until
      ``reset_timeout`` elapses, then the next call probes half-open.
    * **half-open** — up to ``half_open_probes`` calls are admitted;
      that many consecutive successes close the breaker (window
      cleared), any failure reopens it and restarts the timer.
    """

    def __init__(self, policy: BreakerPolicy, clock: Clock) -> None:
        self.policy = policy
        self.clock = clock
        self._state = BreakerState.CLOSED
        self._outcomes: deque[bool] = deque(maxlen=policy.window)
        self._opened_at = 0.0
        self._half_open_successes = 0
        self._half_open_inflight = 0
        #: times the breaker tripped open (including reopens)
        self.times_opened = 0
        #: calls rejected while open
        self.rejections = 0

    @property
    def state(self) -> BreakerState:
        """Current state, applying the open → half-open timeout."""
        if (
            self._state is BreakerState.OPEN
            and self.clock.now() - self._opened_at
            >= self.policy.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._half_open_successes = 0
            self._half_open_inflight = 0
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Counts rejections.)"""
        state = self.state
        if state is BreakerState.OPEN:
            self.rejections += 1
            return False
        if state is BreakerState.HALF_OPEN:
            if self._half_open_inflight >= self.policy.half_open_probes:
                self.rejections += 1
                return False
            self._half_open_inflight += 1
        return True

    def record_success(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._release_slot()
            self._half_open_successes += 1
            if self._half_open_successes >= self.policy.half_open_probes:
                self._state = BreakerState.CLOSED
                self._outcomes.clear()
                self._half_open_successes = 0
                self._half_open_inflight = 0
            return
        self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._release_slot()
            self._trip()
            return
        self._outcomes.append(False)
        if len(self._outcomes) >= self.policy.min_calls:
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.policy.failure_rate:
                self._trip()

    def release_probe(self) -> None:
        """Give back a half-open probe slot taken by :meth:`allow`.

        Every admission in HALF_OPEN must be balanced by exactly one of
        ``record_success``, ``record_failure``, or this method.  The
        transport calls it when a call exits *without a verdict* — the
        shared deadline expired before the source was tried, or a
        non-transport exception escaped — otherwise the slot leaks and,
        with ``half_open_probes`` slots leaked, the breaker rejects
        every probe forever (HALF_OPEN has no re-arm timer).

        Reads the raw state on purpose: the ``state`` property's
        OPEN→HALF_OPEN transition must not fire from a cleanup path.
        """
        if self._state is BreakerState.HALF_OPEN:
            self._release_slot()

    def _release_slot(self) -> None:
        if self._half_open_inflight > 0:
            self._half_open_inflight -= 1

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self.clock.now()
        self.times_opened += 1
        self._outcomes.clear()
        # A trip ends any half-open episode: stale probe accounting
        # must not survive into the *next* half-open window.
        self._half_open_successes = 0
        self._half_open_inflight = 0


# ---------------------------------------------------------------------------
# the transport
# ---------------------------------------------------------------------------


@dataclass
class CallStats:
    """Per-source transport accounting (surfaced by ``Mediator.health``)."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    successes: int = 0
    failures: int = 0
    timeouts: int = 0
    breaker_rejections: int = 0


class SourceTransport:
    """A :class:`Source` behind a :class:`TransportPolicy`.

    ``call`` is the only entry point the mediator uses for source
    fan-outs; it applies, in order: breaker admission, deadline check,
    the (cooperatively timed) source call, failure classification, and
    the backoff/retry loop.  All failures surface as
    :class:`SourceTimeout` or :class:`SourceUnavailable` with the last
    underlying error attached as ``__cause__``.
    """

    def __init__(
        self,
        source: Source,
        policy: TransportPolicy | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.source = source
        self.policy = policy or TransportPolicy()
        self.clock = clock or SystemClock()
        self.breaker = CircuitBreaker(self.policy.breaker, self.clock)
        # Stable per-source jitter stream: deterministic for a fixed
        # policy seed, decorrelated between sources of one mediator.
        self._rng = random.Random(f"{self.policy.seed}:{source.name}")
        self.stats = CallStats()

    @property
    def name(self) -> str:
        return self.source.name

    def call(self, query: Query, deadline: Deadline | None = None) -> Document:
        """Answer ``query`` under the policy; raise on terminal failure."""
        self.stats.calls += 1
        with obs.span("transport.call") as sp:
            sp.set_attribute("source", self.name)
            # Read the state *before* allow(): the property applies the
            # OPEN -> HALF_OPEN timeout (idempotent at one clock
            # instant), and a True allow() in HALF_OPEN takes a probe
            # slot this call is then responsible for giving back.
            admitted_state = self.breaker.state
            if not self.breaker.allow():
                self.stats.breaker_rejections += 1
                sp.set_attribute("outcome", "breaker_rejected")
                sp.add_event("breaker.rejected", state=admitted_state.value)
                raise SourceUnavailable(
                    f"source {self.name!r} unavailable: circuit breaker open"
                )
            sp.set_attribute("breaker", admitted_state.value)
            probe_pending = admitted_state is BreakerState.HALF_OPEN
            retry = self.policy.retry
            last_error: Exception | None = None
            timed_out = False
            attempt = 0
            try:
                for attempt in range(1, max(1, retry.attempts) + 1):
                    if deadline is not None and deadline.expired:
                        self.stats.timeouts += 1
                        sp.set_attribute("outcome", "deadline_expired")
                        sp.add_event("deadline.expired", attempt=attempt)
                        # The budget died between attempts: the *fan-out*
                        # is out of time, which is a deadline condition,
                        # not a verdict on this source.  The breaker is
                        # not charged (the probe slot, if any, is given
                        # back in the finally below).
                        raise SourceTimeout(
                            f"deadline budget exhausted before calling source "
                            f"{self.name!r} (attempt {attempt})"
                        ) from last_error
                    self.stats.attempts += 1
                    sp.add_event("attempt", number=attempt)
                    effective_timeout = self._effective_timeout(deadline)
                    started = self.clock.now()
                    try:
                        answer = self.source.query(query)
                    except ReproError as error:
                        last_error = error
                        timed_out = False
                        self.stats.failures += 1
                        probe_pending = False
                        self.breaker.record_failure()
                        sp.add_event(
                            "failure",
                            attempt=attempt,
                            error=type(error).__name__,
                        )
                    else:
                        elapsed = self.clock.now() - started
                        if (
                            effective_timeout is not None
                            and elapsed > effective_timeout
                        ):
                            # The answer arrived after its budget: discard it.
                            last_error = SourceTimeout(
                                f"source {self.name!r} answered in "
                                f"{elapsed:.3f}s, over its "
                                f"{effective_timeout:.3f}s budget"
                            )
                            timed_out = True
                            self.stats.timeouts += 1
                            probe_pending = False
                            self.breaker.record_failure()
                            sp.add_event(
                                "timeout.discarded",
                                attempt=attempt,
                                elapsed=round(elapsed, 6),
                            )
                        else:
                            self.stats.successes += 1
                            probe_pending = False
                            self.breaker.record_success()
                            sp.set_attribute("attempts", attempt)
                            sp.set_attribute("outcome", "success")
                            return answer
                    if self.breaker.state is not BreakerState.CLOSED:
                        # tripped mid-loop (or half-open probe failed)
                        sp.add_event(
                            "breaker.state", state=self.breaker.state.value
                        )
                        break
                    if attempt >= max(1, retry.attempts):
                        break
                    delay = retry.backoff(attempt, self._rng)
                    if deadline is not None and delay >= deadline.remaining():
                        break  # backing off would outlive the budget
                    self.stats.retries += 1
                    sp.add_event("backoff", delay=round(delay, 6))
                    self.clock.sleep(delay)
            finally:
                # Balance the half-open admission on every exit path
                # that recorded no verdict: deadline expiry above, or a
                # non-transport exception escaping source.query.
                if probe_pending:
                    self.breaker.release_probe()
            sp.set_attribute("attempts", attempt)
            if timed_out and isinstance(last_error, SourceTimeout):
                sp.set_attribute("outcome", "timeout")
                raise last_error
            sp.set_attribute("outcome", "unavailable")
            raise SourceUnavailable(
                f"source {self.name!r} unavailable after "
                f"{attempt} attempt(s): {last_error}"
            ) from last_error

    def _effective_timeout(self, deadline: Deadline | None) -> float | None:
        timeout = self.policy.timeout
        if deadline is None:
            return timeout
        remaining = deadline.remaining()
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def health(self) -> dict:
        """A flat snapshot for ``Mediator.health()`` / the CLI."""
        return {
            "source": self.name,
            "breaker": self.breaker.state.value,
            "times_opened": self.breaker.times_opened,
            "calls": self.stats.calls,
            "attempts": self.stats.attempts,
            "retries": self.stats.retries,
            "successes": self.stats.successes,
            "failures": self.stats.failures,
            "timeouts": self.stats.timeouts,
            "breaker_rejections": self.stats.breaker_rejections,
        }


@dataclass
class DegradationReport:
    """What a degraded (partial) answer left out, and why.

    Attached to ``Mediator.last_degradation`` whenever a fan-out
    skipped sources; ``skipped`` maps each skipped source to the
    diagnostic code + message of its terminal failure.  ``answer_valid``
    records that the partial answer was checked against the inferred
    view DTD (degradation refuses to return an invalid partial answer —
    see docs/RELIABILITY.md for the soundness argument).
    """

    view_name: str
    skipped: dict[str, str] = field(default_factory=dict)
    answered: list[str] = field(default_factory=list)
    answer_valid: bool = True

    @property
    def degraded(self) -> bool:
        return bool(self.skipped)

    def describe(self) -> str:
        lines = [f"answer for view {self.view_name!r}:"]
        if not self.degraded:
            lines.append("  complete (no sources skipped)")
            return "\n".join(lines)
        lines.append(
            f"  DEGRADED: {len(self.skipped)} source(s) skipped, "
            f"{len(self.answered)} answered"
        )
        for name, reason in sorted(self.skipped.items()):
            lines.append(f"    - {name}: {reason}")
        lines.append(
            "  partial answer validates against the inferred view DTD: "
            f"{self.answer_valid}"
        )
        return "\n".join(lines)
