"""Fault-tolerant source calls: timeouts, retries, circuit breakers.

The paper's Figure 1 stacks mediators over wrappers that always
answer; a real federation cannot assume that.  This module wraps every
:meth:`Source.query <repro.mediator.source.Source.query>` in a
*transport policy*:

* a **per-call timeout** and a **deadline budget** shared by every
  call of one fan-out (a slow source cannot starve its siblings);
* **bounded retries** with exponential backoff and seeded jitter;
* a per-source **circuit breaker** (closed / open / half-open, with a
  failure-rate threshold over a sliding window) so a broken source
  fails fast instead of burning the deadline of every query.

Time is injectable: every component takes a :class:`Clock`, and
:class:`FakeClock` advances only when something sleeps on it, so the
whole policy — backoff schedules, breaker recovery, deadline
exhaustion — is testable deterministically without wall-clock sleeps
(see :mod:`repro.mediator.faults` for the matching fault-injection
harness).

Timeouts are detected *cooperatively*: the transport cannot preempt a
synchronous wrapper, so it measures each call's elapsed time on the
clock, discards answers that arrive after the effective timeout, and
charges the elapsed time against the deadline budget.  With
:class:`FakeClock` + latency schedules this is exact; with the system
clock it is an accounting discipline, not preemption.

Semantics, the state machine, and the soundness argument for degraded
answers are documented in ``docs/RELIABILITY.md``.
"""

from __future__ import annotations

import heapq
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Protocol

from .. import obs
from ..errors import ReproError, SourceTimeout, SourceUnavailable
from ..xmas import Query
from ..xmlmodel import Document
from .source import Source

# ---------------------------------------------------------------------------
# clocks
# ---------------------------------------------------------------------------


class Clock(Protocol):
    """The time interface every transport component is written against."""

    def now(self) -> float:
        """Monotonic seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (advance time)."""
        ...


class SystemClock:
    """Wall-clock time (``time.monotonic`` / ``time.sleep``)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock:
    """A manual clock: time advances only via :meth:`sleep`/:meth:`advance`.

    Deterministic by construction — the test suite never sleeps for
    real.  ``sleeps`` records every sleep request so backoff schedules
    can be asserted exactly.

    **Virtual-time scheduling.**  The parallel fan-out
    (:mod:`repro.mediator.parallel`) runs source calls on real worker
    threads; to keep them deterministic the clock doubles as a
    virtual-time scheduler.  The dispatching thread *reserves* worker
    slots up front (:meth:`reserve_workers`), each worker *claims* one
    as its first act (:meth:`claim_worker`) and *releases* it when its
    work queue is drained (:meth:`release_worker`).  A ``sleep`` from a
    claimed worker does not advance time — it parks the thread on a
    wake time.  Only when **every** reserved worker is parked (or
    released) does the clock jump to the earliest wake time and resume
    the threads due then.  Because time can never move while any worker
    is between sleeps, every ``now()`` read, timeout verdict, and span
    timestamp is a pure function of the scheduled latencies — identical
    across runs regardless of OS thread interleaving.  Reserving up
    front (rather than on claim) is what closes the startup race: a
    worker that sleeps before its siblings' threads have even started
    cannot advance time past their start.

    Threads that never claimed (the single-threaded test suite, the
    dispatching thread itself) keep the legacy semantics: ``sleep``
    advances time immediately.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self.sleeps: list[float] = []
        self._cond = threading.Condition()
        #: reserved virtual-worker slots (claimed or still starting up)
        self._reserved = 0
        #: thread idents that claimed a slot
        self._workers: set[int] = set()
        #: claimed workers currently parked in a virtual sleep
        self._parked = 0
        #: min-heap of (wake_at, seq) for parked workers
        self._waiters: list[tuple[float, int]] = []
        self._seq = 0

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        wait = max(0.0, seconds)
        with self._cond:
            self.sleeps.append(seconds)
            if threading.get_ident() not in self._workers:
                # Legacy path: a non-worker owns time and moves it.
                self._now += wait
                self._wake_due()
                return
            if wait == 0.0:
                return
            self._seq += 1
            entry = (self._now + wait, self._seq)
            heapq.heappush(self._waiters, entry)
            self._parked += 1
            self._advance_if_stalled()
            while self._now < entry[0]:
                self._cond.wait()
            # _parked was given back in _wake_due when this entry
            # became due: from that instant this thread is logically
            # runnable (it may just not hold the OS's attention yet),
            # and counting it as parked would let a sibling's
            # release_worker() advance time right past it.

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        with self._cond:
            self._now += max(0.0, seconds)
            self._wake_due()

    # -- virtual-worker protocol (used by the parallel fan-out) ----------

    def reserve_workers(self, n: int) -> None:
        """Account for ``n`` workers about to claim (dispatcher side)."""
        with self._cond:
            self._reserved += n

    def claim_worker(self) -> None:
        """Mark the current thread as one of the reserved workers."""
        with self._cond:
            self._workers.add(threading.get_ident())

    def release_worker(self) -> None:
        """Give back this thread's slot (its work queue is drained)."""
        with self._cond:
            self._workers.discard(threading.get_ident())
            self._reserved = max(0, self._reserved - 1)
            self._advance_if_stalled()

    def _advance_if_stalled(self) -> None:
        # With the lock held: when every reserved worker is parked, no
        # thread can observe time anymore — jump to the earliest waiter.
        if self._reserved and self._parked >= self._reserved and self._waiters:
            self._now = max(self._now, self._waiters[0][0])
            self._wake_due()

    def _wake_due(self) -> None:
        while self._waiters and self._waiters[0][0] <= self._now:
            heapq.heappop(self._waiters)
            # One popped entry = one worker now runnable again.
            self._parked = max(0, self._parked - 1)
        self._cond.notify_all()


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


@dataclass
class Deadline:
    """A budget shared across one fan-out's source calls.

    Every call charges its elapsed time (including backoff sleeps)
    against the same budget, so the deadline of a federated query is a
    property of the *query*, not of each source call.
    """

    clock: Clock
    expires_at: float

    @classmethod
    def after(cls, clock: Clock, budget: float) -> "Deadline":
        """A deadline ``budget`` seconds from now on ``clock``."""
        return cls(clock, clock.now() + budget)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - self.clock.now())

    @property
    def expired(self) -> bool:
        return self.clock.now() >= self.expires_at

    def require(self, what: str) -> None:
        """Raise :class:`SourceTimeout` when the budget is spent."""
        if self.expired:
            raise SourceTimeout(f"deadline budget exhausted before {what}")


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``attempts`` counts total tries (1 = fail-fast).  The delay before
    retry ``k`` (1-based) is ``base_delay * multiplier**(k-1)`` capped
    at ``max_delay``, then jittered by a uniform factor in
    ``[1-jitter, 1+jitter]`` drawn from the transport's seeded RNG —
    deterministic for a fixed seed, decorrelated across sources.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def backoff(self, retry_number: int, rng: random.Random) -> float:
        """Delay before the ``retry_number``-th retry (1-based)."""
        delay = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (retry_number - 1),
        )
        if self.jitter:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay


@dataclass(frozen=True)
class BreakerPolicy:
    """When a source trips open and how it recovers.

    The breaker trips when, among the last ``window`` calls (and at
    least ``min_calls`` of them), the failure rate reaches
    ``failure_rate``.  After ``reset_timeout`` seconds open it admits
    ``half_open_probes`` trial calls; that many consecutive successes
    close it, any failure reopens it.
    """

    window: int = 8
    min_calls: int = 4
    failure_rate: float = 0.5
    reset_timeout: float = 30.0
    half_open_probes: int = 1


@dataclass(frozen=True)
class TransportPolicy:
    """The full per-source call policy: timeout + retries + breaker.

    ``timeout`` is the per-call limit in seconds (``None`` = no
    limit).  ``seed`` makes the jitter RNG deterministic; each
    transport derives its own stream from it and the source name.
    """

    timeout: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    seed: int = 0


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """A per-source breaker: closed → open → half-open → closed.

    * **closed** — calls flow; outcomes feed a sliding window; when
      the windowed failure rate reaches the threshold, trip open.
    * **open** — calls are rejected without touching the source until
      ``reset_timeout`` elapses, then the next call probes half-open.
    * **half-open** — up to ``half_open_probes`` calls are admitted;
      that many consecutive successes close the breaker (window
      cleared), any failure reopens it and restarts the timer.
    """

    def __init__(self, policy: BreakerPolicy, clock: Clock) -> None:
        self.policy = policy
        self.clock = clock
        # The parallel fan-out and the serving front end admit calls
        # from many threads at once; every transition and the probe
        # accounting run under this lock.  Methods that already hold it
        # use `_advance_state` (not the `state` property) — the lock is
        # deliberately non-reentrant to keep the happy path cheap
        # (bench_faults.py gates transport overhead at <5%).
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._outcomes: deque[bool] = deque(maxlen=policy.window)
        self._opened_at = 0.0
        self._half_open_successes = 0
        self._half_open_inflight = 0
        #: times the breaker tripped open (including reopens)
        self.times_opened = 0
        #: calls rejected while open
        self.rejections = 0

    @property
    def state(self) -> BreakerState:
        """Current state, applying the open → half-open timeout."""
        with self._lock:
            return self._advance_state()

    def _advance_state(self) -> BreakerState:
        """Apply the open → half-open timeout; caller holds ``_lock``."""
        if (
            self._state is BreakerState.OPEN
            and self.clock.now() - self._opened_at
            >= self.policy.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._half_open_successes = 0
            self._half_open_inflight = 0
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Counts rejections.)"""
        return self.admit()[0]

    def admit(self) -> tuple[bool, BreakerState]:
        """Atomic admission: ``(admitted, state the verdict was made in)``.

        Callers that need to know whether their admission took a
        half-open probe slot (and so owe the breaker a verdict or a
        ``release_probe``) must use this rather than reading ``state``
        and calling ``allow`` separately: under a real clock the
        breaker can transition between the two, and the caller would
        mislabel its admission and leak the slot.
        """
        with self._lock:
            state = self._state
            if state is BreakerState.CLOSED:
                # Fast path: no clock read, no transition to apply.
                return True, state
            state = self._advance_state()
            if state is BreakerState.OPEN:
                self.rejections += 1
                return False, state
            if state is BreakerState.HALF_OPEN:
                if self._half_open_inflight >= self.policy.half_open_probes:
                    self.rejections += 1
                    return False, state
                self._half_open_inflight += 1
            return True, state

    def record_success(self) -> None:
        with self._lock:
            if self._state is BreakerState.CLOSED:
                # Fast path mirror of `admit`'s: a closed breaker just
                # feeds its sliding window.
                self._outcomes.append(True)
                return
            if self._advance_state() is BreakerState.HALF_OPEN:
                self._release_slot()
                self._half_open_successes += 1
                if self._half_open_successes >= self.policy.half_open_probes:
                    self._state = BreakerState.CLOSED
                    self._outcomes.clear()
                    self._half_open_successes = 0
                    self._half_open_inflight = 0
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            if self._advance_state() is BreakerState.HALF_OPEN:
                self._release_slot()
                self._trip()
                return
            self._outcomes.append(False)
            if len(self._outcomes) >= self.policy.min_calls:
                failures = sum(1 for ok in self._outcomes if not ok)
                if failures / len(self._outcomes) >= self.policy.failure_rate:
                    self._trip()

    def release_probe(self) -> None:
        """Give back a half-open probe slot taken by :meth:`allow`.

        Every admission in HALF_OPEN must be balanced by exactly one of
        ``record_success``, ``record_failure``, or this method.  The
        transport calls it when a call exits *without a verdict* — the
        shared deadline expired before the source was tried, or a
        non-transport exception escaped — otherwise the slot leaks and,
        with ``half_open_probes`` slots leaked, the breaker rejects
        every probe forever (HALF_OPEN has no re-arm timer).

        Reads the raw state on purpose: the ``state`` property's
        OPEN→HALF_OPEN transition must not fire from a cleanup path.
        """
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._release_slot()

    def _release_slot(self) -> None:
        if self._half_open_inflight > 0:
            self._half_open_inflight -= 1

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self.clock.now()
        self.times_opened += 1
        self._outcomes.clear()
        # A trip ends any half-open episode: stale probe accounting
        # must not survive into the *next* half-open window.
        self._half_open_successes = 0
        self._half_open_inflight = 0

    def probe_slots_inflight(self) -> int:
        """Half-open probe admissions not yet balanced (test hook)."""
        with self._lock:
            return self._half_open_inflight


# ---------------------------------------------------------------------------
# the transport
# ---------------------------------------------------------------------------


@dataclass
class CallStats:
    """Per-source transport accounting (surfaced by ``Mediator.health``)."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    successes: int = 0
    failures: int = 0
    timeouts: int = 0
    breaker_rejections: int = 0
    gate_rejections: int = 0


class SourceTransport:
    """A :class:`Source` behind a :class:`TransportPolicy`.

    ``call`` is the only entry point the mediator uses for source
    fan-outs; it applies, in order: breaker admission, deadline check,
    the (cooperatively timed) source call, failure classification, and
    the backoff/retry loop.  All failures surface as
    :class:`SourceTimeout` or :class:`SourceUnavailable` with the last
    underlying error attached as ``__cause__``.
    """

    def __init__(
        self,
        source: Source,
        policy: TransportPolicy | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.source = source
        self.policy = policy or TransportPolicy()
        self.clock = clock or SystemClock()
        self.breaker = CircuitBreaker(self.policy.breaker, self.clock)
        # Stable per-source jitter stream: deterministic for a fixed
        # policy seed, decorrelated between sources of one mediator.
        self._rng = random.Random(f"{self.policy.seed}:{source.name}")
        self.stats = CallStats()
        # Counters are read-modify-write; the serving front end calls
        # one transport from many threads at once.
        self._stats_lock = threading.Lock()
        #: measured per-attempt latencies of answers (successes and
        #: over-budget discards) — the cost model behind slowest-first
        #: dispatch and p95-derived timeouts (repro.mediator.parallel).
        #: Deliberately NOT registered in the global metrics registry:
        #: cross-test registry resets must not skew dispatch, and the
        #: happy path has a <5% overhead gate (bench_faults.py) with no
        #: room for a second lock-guarded observation per call.  The
        #: quantiles are surfaced through ``health()`` instead.
        self.latency = obs.Histogram()
        #: optional per-source concurrency gate (a semaphore) installed
        #: by the serving front end (repro.serve); ``None`` — the
        #: default everywhere else — bypasses it entirely.  Real-time
        #: only: blocking a virtual-clock worker on a semaphore would
        #: deadlock the fake clock's scheduler.
        self.gate: threading.Semaphore | None = None

    @property
    def name(self) -> str:
        return self.source.name

    def latency_quantile(self, q: float = 0.95) -> float | None:
        """A quantile of this source's measured answer latencies."""
        return self.latency.quantile(q)

    def _bump(self, attribute: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(
                self.stats, attribute, getattr(self.stats, attribute) + amount
            )

    def call(
        self,
        query: Query,
        deadline: Deadline | None = None,
        timeout: float | None = None,
    ) -> Document:
        """Answer ``query`` under the policy; raise on terminal failure.

        ``timeout`` tightens (never loosens) the policy's per-call
        timeout for this call only — the parallel fan-out derives it
        from the source's latency history (p95 × headroom) so a source
        that has gone slow is cut off early and the deadline budget is
        spent on its healthy siblings.
        """
        gate = self.gate
        if gate is None:
            return self._call(query, deadline, timeout)
        budget = None if deadline is None else deadline.remaining()
        if not gate.acquire(timeout=budget):
            self._bump("gate_rejections")
            raise SourceTimeout(
                f"deadline budget exhausted waiting for a "
                f"{self.name!r} concurrency slot"
            )
        try:
            return self._call(query, deadline, timeout)
        finally:
            gate.release()

    def _call(
        self,
        query: Query,
        deadline: Deadline | None = None,
        timeout: float | None = None,
    ) -> Document:
        # Stat deltas accumulate in fast locals and flush under ONE
        # lock acquisition in the outer finally — a lock round-trip per
        # event would not fit the <5% happy-path overhead gate
        # (bench_faults.py).
        n_attempts = n_retries = n_successes = 0
        n_failures = n_timeouts = n_breaker_rejections = 0
        try:
            with obs.span("transport.call") as sp:
                # Happy-path span recording is guarded: with tracing
                # off the guard costs one attribute read where the
                # no-op calls would cost half a microsecond — real
                # money under the <5% overhead gate.  Cold paths
                # (failures, rejections) record unguarded.
                recording = sp.recording
                if recording:
                    sp.set_attribute("source", self.name)
                # One atomic admission: an admission in HALF_OPEN takes
                # a probe slot this call is then responsible for giving
                # back, so the verdict and the state it was made in
                # must come from the same lock acquisition.
                admitted, admitted_state = self.breaker.admit()
                if not admitted:
                    n_breaker_rejections = 1
                    sp.set_attribute("outcome", "breaker_rejected")
                    sp.add_event(
                        "breaker.rejected", state=admitted_state.value
                    )
                    raise SourceUnavailable(
                        f"source {self.name!r} unavailable: "
                        f"circuit breaker open"
                    )
                if recording:
                    sp.set_attribute("breaker", admitted_state.value)
                probe_pending = admitted_state is BreakerState.HALF_OPEN
                retry = self.policy.retry
                last_error: Exception | None = None
                timed_out = False
                attempt = 0
                try:
                    for attempt in range(1, max(1, retry.attempts) + 1):
                        if deadline is not None and deadline.expired:
                            n_timeouts += 1
                            sp.set_attribute("outcome", "deadline_expired")
                            sp.add_event("deadline.expired", attempt=attempt)
                            # The budget died between attempts: the
                            # *fan-out* is out of time, which is a
                            # deadline condition, not a verdict on this
                            # source.  The breaker is not charged (the
                            # probe slot, if any, is given back in the
                            # finally below).
                            raise SourceTimeout(
                                f"deadline budget exhausted before calling "
                                f"source {self.name!r} (attempt {attempt})"
                            ) from last_error
                        n_attempts += 1
                        if recording:
                            sp.add_event("attempt", number=attempt)
                        effective_timeout = self._effective_timeout(
                            deadline, timeout
                        )
                        started = self.clock.now()
                        try:
                            answer = self.source.query(query)
                        except ReproError as error:
                            last_error = error
                            timed_out = False
                            n_failures += 1
                            probe_pending = False
                            self.breaker.record_failure()
                            sp.add_event(
                                "failure",
                                attempt=attempt,
                                error=type(error).__name__,
                            )
                        else:
                            elapsed = self.clock.now() - started
                            self.latency.observe(elapsed)
                            if (
                                effective_timeout is not None
                                and elapsed > effective_timeout
                            ):
                                # Arrived after its budget: discard it.
                                last_error = SourceTimeout(
                                    f"source {self.name!r} answered in "
                                    f"{elapsed:.3f}s, over its "
                                    f"{effective_timeout:.3f}s budget"
                                )
                                timed_out = True
                                n_timeouts += 1
                                probe_pending = False
                                self.breaker.record_failure()
                                sp.add_event(
                                    "timeout.discarded",
                                    attempt=attempt,
                                    elapsed=round(elapsed, 6),
                                )
                            else:
                                n_successes = 1
                                probe_pending = False
                                self.breaker.record_success()
                                if recording:
                                    sp.set_attribute("attempts", attempt)
                                    sp.set_attribute("outcome", "success")
                                return answer
                        if self.breaker.state is not BreakerState.CLOSED:
                            # tripped mid-loop (or half-open probe failed)
                            sp.add_event(
                                "breaker.state",
                                state=self.breaker.state.value,
                            )
                            break
                        if attempt >= max(1, retry.attempts):
                            break
                        delay = retry.backoff(attempt, self._rng)
                        if (
                            deadline is not None
                            and delay >= deadline.remaining()
                        ):
                            break  # backing off would outlive the budget
                        n_retries += 1
                        sp.add_event("backoff", delay=round(delay, 6))
                        self.clock.sleep(delay)
                finally:
                    # Balance the half-open admission on every exit path
                    # that recorded no verdict: deadline expiry above, or
                    # a non-transport exception escaping source.query.
                    if probe_pending:
                        self.breaker.release_probe()
                sp.set_attribute("attempts", attempt)
                if timed_out and isinstance(last_error, SourceTimeout):
                    sp.set_attribute("outcome", "timeout")
                    raise last_error
                sp.set_attribute("outcome", "unavailable")
                raise SourceUnavailable(
                    f"source {self.name!r} unavailable after "
                    f"{attempt} attempt(s): {last_error}"
                ) from last_error
        finally:
            with self._stats_lock:
                stats = self.stats
                stats.calls += 1
                stats.attempts += n_attempts
                stats.retries += n_retries
                stats.successes += n_successes
                stats.failures += n_failures
                stats.timeouts += n_timeouts
                stats.breaker_rejections += n_breaker_rejections

    def _effective_timeout(
        self, deadline: Deadline | None, override: float | None = None
    ) -> float | None:
        timeout = self.policy.timeout
        if override is not None:
            timeout = override if timeout is None else min(timeout, override)
        if deadline is None:
            return timeout
        remaining = deadline.remaining()
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def health(self) -> dict:
        """A flat snapshot for ``Mediator.health()`` / the CLI."""
        return {
            "source": self.name,
            "breaker": self.breaker.state.value,
            "times_opened": self.breaker.times_opened,
            "calls": self.stats.calls,
            "attempts": self.stats.attempts,
            "retries": self.stats.retries,
            "successes": self.stats.successes,
            "failures": self.stats.failures,
            "timeouts": self.stats.timeouts,
            "breaker_rejections": self.stats.breaker_rejections,
            "gate_rejections": self.stats.gate_rejections,
            "latency_p50": self.latency.quantile(0.5),
            "latency_p95": self.latency.quantile(0.95),
        }


@dataclass
class DegradationReport:
    """What a degraded (partial) answer left out, and why.

    Attached to ``Mediator.last_degradation`` whenever a fan-out
    skipped sources; ``skipped`` maps each skipped source to the
    diagnostic code + message of its terminal failure.  ``answer_valid``
    records that the partial answer was checked against the inferred
    view DTD (degradation refuses to return an invalid partial answer —
    see docs/RELIABILITY.md for the soundness argument).
    """

    view_name: str
    skipped: dict[str, str] = field(default_factory=dict)
    answered: list[str] = field(default_factory=list)
    answer_valid: bool = True

    @property
    def degraded(self) -> bool:
        return bool(self.skipped)

    def describe(self) -> str:
        lines = [f"answer for view {self.view_name!r}:"]
        if not self.degraded:
            lines.append("  complete (no sources skipped)")
            return "\n".join(lines)
        lines.append(
            f"  DEGRADED: {len(self.skipped)} source(s) skipped, "
            f"{len(self.answered)} answered"
        )
        for name, reason in sorted(self.skipped.items()):
            lines.append(f"    - {name}: {reason}")
        lines.append(
            "  partial answer validates against the inferred view DTD: "
            f"{self.answer_valid}"
        )
        return "\n".join(lines)
