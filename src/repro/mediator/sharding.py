"""Sharded sources: one logical source over N typed fragments.

The paper's mediator treats a source as one monolithic document
collection.  This module scales that premise horizontally in the style
of distributed XML design: a :class:`ShardedSource` presents **one
logical source** — one name, one logical DTD, one ``query()`` entry
point — backed by N *fragments*, each an ordinary
:class:`~repro.mediator.source.Source` typed by its own **fragment
DTD**.  Two fragmentation shapes are supported:

* **horizontal partition** — whole documents distributed across
  fragments (:func:`partition_documents`); every fragment may reuse
  the logical DTD, or a tighter specialization of it when the
  partition is content-aware (journal-only vs. conference-only
  bibliography sites);
* **subtree fragmentation** — one large document split along a
  repeated child (:func:`fragment_by_child`): each fragment replicates
  the spine and carries a contiguous chunk of the repeated subtrees.

Every fragment DTD must be a *specialization* of the logical DTD
(same root, declared names a subset, each content model a
sub-language — checked at construction with the language kernel's
``is_subset``), so every fragment document is also valid under the
logical DTD and the mediator's view-DTD inference over the logical
DTD stays sound.

**Fragmentation-aware pruning.**  Because fragments are typed, the
compiled plan's letter sets (:class:`~repro.xmas.engine.PlanNode`)
and the fragment DTD's reachability analysis
(:func:`~repro.dtd.analysis.reachable_names`) decide *statically*
whether a fragment can possibly contribute: a valid fragment document
only contains names reachable in the fragment DTD, and a pick exists
only when **every** condition node matches, so one condition node
whose letter set misses the fragment's reachable names proves the
fragment's answer empty — the shard is never called
(:func:`fragment_can_match`).  Prunes are counted in the ``sharding``
section of ``kernel_stats()`` and traced under ``shard.prune`` spans.

**Scatter-gather.**  Surviving shards fan out through the existing
:class:`~repro.mediator.parallel.ParallelTransport`: per-shard
circuit breakers, retry/backoff, latency histograms, slowest-p95-first
dispatch, and p95-derived timeouts all generalize from per-source to
per-shard for free, with an optional per-gather deadline budget
(``ShardPolicy.gather_budget``).  Answers merge **deterministically in
shard order** (fan-out results come back in input leg order, so the
merge — and therefore every trace and counter — is run-identical
under :class:`~repro.mediator.transport.FakeClock`).  When a shard
fails permanently, ``ShardPolicy.partial`` decides between failing the
logical call (the default — the outer transport's retry policy then
re-gathers) and releasing the surviving shards' merged answer
annotated with diagnostic ``MED008`` (:class:`ShardGatherReport`,
``last_gather``).

The merged answer re-registers engine pick provenance with document
ordinals shifted into the logical document list, so the materialized-
view cache (:mod:`repro.mediator.matview`) keys entries by per-shard
document identity and a mutation in one shard is delta-maintained
shard-locally — the delta query re-runs over the one dirty fragment
document only.

See docs/SHARDING.md for the fragmentation model, the pruning
soundness argument, per-shard fault semantics, and the benchmark
methodology behind ``benchmarks/bench_sharding.py``.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field

from .. import obs
from ..dtd import Dtd, Pcdata, validate_document
from ..dtd.analysis import reachable_names
from ..errors import PARTIAL_SHARD_GATHER, ShardConfigError
from ..regex import is_subset
from ..regex import kernel
from ..xmas import Query
from ..xmas.engine import (
    CompiledPlan,
    PickOrigin,
    compile_query,
    provenance_enabled,
    provenance_of,
    record_provenance,
)
from ..xmlmodel import Document, Element, fresh_id
from .parallel import FanoutPolicy, ParallelTransport
from .source import Source
from .transport import (
    Clock,
    Deadline,
    SourceTransport,
    SystemClock,
    TransportPolicy,
)


# ---------------------------------------------------------------------------
# policy, reports, stats
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPolicy:
    """How a sharded source plans and gathers.

    ``prune`` turns fragmentation-aware pruning off (every query calls
    every shard — the oracle mode the differential tests and the
    benchmark equality gate compare against).  ``partial`` releases a
    merged answer when some shards fail permanently (``MED008``)
    instead of failing the logical call.  ``gather_budget`` is an
    optional per-gather deadline in seconds, shared by all shard legs
    of one query.  ``check_fragments`` verifies at construction that
    every fragment DTD specializes the logical DTD (leave it on
    outside benchmarks; the check is cached-DFA cheap).
    """

    prune: bool = True
    partial: bool = False
    gather_budget: float | None = None
    check_fragments: bool = True


@dataclass
class ShardGatherReport:
    """What one sharded gather did (``ShardedSource.last_gather``)."""

    source: str
    #: shard names that answered, in shard order
    answered: list[str] = field(default_factory=list)
    #: shard name -> "CODE: reason" for permanently failed shards
    skipped: dict[str, str] = field(default_factory=dict)
    #: shard names pruned statically (never called), in shard order
    pruned: list[str] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        """Did the released answer drop a failed shard (``MED008``)?"""
        return bool(self.skipped)


@dataclass
class ShardStats:
    """Per-``ShardedSource`` counters (aggregated into ``kernel_stats()``)."""

    queries: int = 0
    #: shard calls avoided by static pruning
    shards_pruned: int = 0
    #: shard legs actually dispatched
    shards_called: int = 0
    #: legs that failed permanently (timeout / unavailable)
    shard_failures: int = 0
    #: gathers released partial under ``ShardPolicy.partial`` (MED008)
    partial_gathers: int = 0
    #: queries answered empty with zero shard calls (all shards pruned)
    all_pruned: int = 0


# ---------------------------------------------------------------------------
# static analysis: specialization and pruning
# ---------------------------------------------------------------------------


def fragment_specialization_problem(
    fragment: Dtd, logical: Dtd
) -> str | None:
    """Why ``fragment`` is no specialization of ``logical`` (None = is).

    A fragment DTD specializes the logical DTD when it has the same
    root, declares a subset of the logical names, and every declared
    content model accepts a sub-language of the logical one — then
    every fragment-valid document is logical-valid by induction, which
    is what keeps view-DTD inference over the logical DTD sound for
    sharded answers.
    """
    if logical.root is not None and fragment.root != logical.root:
        return (
            f"fragment root {fragment.root!r} differs from logical "
            f"root {logical.root!r}"
        )
    undeclared = fragment.names - logical.names
    if undeclared:
        return (
            "fragment declares names outside the logical DTD: "
            f"{sorted(undeclared)}"
        )
    for name, fragment_type in fragment.types.items():
        logical_type = logical.type_of(name)
        fragment_pcdata = isinstance(fragment_type, Pcdata)
        logical_pcdata = isinstance(logical_type, Pcdata)
        if fragment_pcdata and logical_pcdata:
            continue
        if fragment_pcdata != logical_pcdata:
            return (
                f"{name!r} is #PCDATA in one DTD and structured in "
                "the other"
            )
        if not is_subset(fragment_type, logical_type):
            return (
                f"content model of {name!r} is not a sub-language of "
                "the logical declaration"
            )
    return None


def fragment_can_match(
    plan: CompiledPlan,
    dtd: Dtd,
    reachable: frozenset[str] | None = None,
) -> bool:
    """Can a document valid under ``dtd`` satisfy this compiled plan?

    ``False`` is a *proof* of emptiness (the prune is sound): a valid
    fragment document's root carries the fragment DTD's root name and
    its elements only carry names reachable from it, while a pick
    requires every condition node of the plan to match somewhere.  So
    the fragment is prunable when the plan's root letter set excludes
    the fragment root, or when any node's letter set is disjoint from
    the fragment's reachable names.  Wildcard nodes (``names is
    None``) constrain nothing.  ``True`` promises nothing — the shard
    is called and may still answer empty.
    """
    if reachable is None:
        reachable = reachable_names(dtd)
    for node in plan.nodes:
        names = node.names
        if names is None:
            continue
        if node.parent < 0 and dtd.root is not None:
            if dtd.root not in names:
                return False
            continue
        if names.isdisjoint(reachable):
            return False
    return True


# ---------------------------------------------------------------------------
# fragmentation helpers
# ---------------------------------------------------------------------------


def partition_documents(
    documents: list[Document], n_shards: int
) -> list[list[Document]]:
    """Split a document list into ``n_shards`` contiguous chunks.

    Contiguous (not round-robin) so the concatenation of the chunks in
    shard order *is* the original list — the sharded answer merges in
    exactly the unsharded document order.  Chunk sizes differ by at
    most one; with fewer documents than shards the tail chunks are
    empty (an empty shard is a healthy shard that answers empty).
    """
    if n_shards < 1:
        raise ShardConfigError(f"n_shards must be >= 1, got {n_shards}")
    base, extra = divmod(len(documents), n_shards)
    chunks: list[list[Document]] = []
    cursor = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        chunks.append(documents[cursor : cursor + size])
        cursor += size
    return chunks


def fragment_by_child(
    document: Document, child_name: str, n_fragments: int
) -> list[Document]:
    """Subtree fragmentation: split one document along a repeated child.

    The root's ``child_name`` children are chunked contiguously into
    at most ``n_fragments`` groups; every other root child (the
    *spine* — required siblings like ``meta``) is replicated into each
    fragment in its original relative position, so each fragment stays
    valid under any DTD the whole document satisfied.  All elements
    are deep-copied with fresh ids — fragments share no elements with
    the original or each other.

    Soundness caveat (see docs/SHARDING.md): answers are preserved for
    queries whose conditions below the root all sit inside a *single*
    ``child_name`` subtree.  A query that picks inside the replicated
    spine would count its picks once per fragment, and a query
    relating two distinct ``child_name`` siblings (e.g. an inequality
    across two ``<venue>`` conditions) can lose matches that the
    fragmentation separates.  Keep such views on horizontal
    partitions, which are unconditionally sound.
    """
    root = document.root
    targets = [
        child for child in root.children if child.name == child_name
    ]
    if not targets:
        raise ShardConfigError(
            f"document root {root.name!r} has no {child_name!r} "
            "children to fragment by"
        )
    groups = [
        chunk
        for chunk in partition_documents(targets, n_fragments)
        if chunk
    ]
    assigned = {
        id(target): index
        for index, chunk in enumerate(groups)
        for target in chunk
    }
    fragments: list[list[Element]] = [[] for _ in groups]
    for child in root.children:
        if child.name == child_name:
            fragments[assigned[id(child)]].append(
                child.deep_copy(fresh_ids=True)
            )
        else:
            for children in fragments:
                children.append(child.deep_copy(fresh_ids=True))
    return [
        Document(Element(root.name, children, fresh_id()))
        for children in fragments
    ]


# ---------------------------------------------------------------------------
# the sharded source
# ---------------------------------------------------------------------------


class ShardedSource(Source):
    """One logical source scattered over N fragment shards.

    Constructed from ordinary :class:`Source` objects (one per
    fragment, each typed by its fragment DTD) and usable everywhere a
    ``Source`` is: ``Mediator.add_source`` wraps it in the outer
    transport unchanged, ``documents`` presents the concatenated
    fragment documents in stable shard order (which is what keys
    matview cache entries per shard document), and ``query()`` runs
    prune → scatter → gather → merge.
    """

    # Source is a dataclass (value equality, unhashable); a sharded
    # source is an identity object — it sits in WeakSets and transport
    # tables.
    __eq__ = object.__eq__
    __hash__ = object.__hash__

    def __init__(
        self,
        name: str,
        dtd: Dtd,
        shards: "list[Source]",
        *,
        policy: ShardPolicy | None = None,
        transport_policy: TransportPolicy | None = None,
        clock: Clock | None = None,
        fanout: FanoutPolicy | None = None,
        validate: bool = True,
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ShardConfigError(
                f"sharded source {name!r} needs at least one shard"
            )
        shard_names = [shard.name for shard in shards]
        if len(set(shard_names)) != len(shard_names):
            raise ShardConfigError(
                f"duplicate shard names in {name!r}: {sorted(shard_names)}"
            )
        self.name = name
        self.dtd = dtd
        self.validate = validate
        self.queries_served = 0
        self.policy = policy or ShardPolicy()
        self.clock: Clock = clock or SystemClock()
        self.shards = shards
        self._shard_by_name = {shard.name: shard for shard in shards}
        if self.policy.check_fragments:
            for shard in shards:
                problem = fragment_specialization_problem(shard.dtd, dtd)
                if problem is not None:
                    raise ShardConfigError(
                        f"shard {shard.name!r} of {name!r}: {problem}"
                    )
        transport_policy = transport_policy or TransportPolicy()
        #: one transport per shard: per-shard breaker, retry policy,
        #: latency histogram — the cost model the dispatch order and
        #: derived timeouts run on
        self.transports = [
            SourceTransport(shard, transport_policy, self.clock)
            for shard in shards
        ]
        self.parallel = ParallelTransport(self.clock, fanout)
        #: per-shard reachable-name sets (fragment DTDs are immutable
        #: after construction, so these are computed once)
        self._reachable = [
            reachable_names(shard.dtd) for shard in shards
        ]
        self.stats = ShardStats()
        self._stats_lock = threading.Lock()
        self._tls = threading.local()
        _LIVE_SHARDED.add(self)

    # -- Source surface --------------------------------------------------

    @property
    def documents(self) -> list[Document]:  # type: ignore[override]
        """The logical document list: fragment documents in shard order."""
        return [
            document
            for shard in self.shards
            for document in shard.documents
        ]

    @property
    def last_gather(self) -> ShardGatherReport | None:
        """This thread's most recent gather report (None before any)."""
        return getattr(self._tls, "gather", None)

    @last_gather.setter
    def last_gather(self, report: ShardGatherReport | None) -> None:
        self._tls.gather = report

    def add_document(
        self, document: Document, shard: str | None = None
    ) -> None:
        """Route a document to a shard.

        With ``shard`` named, the document goes there (the shard's own
        validation applies).  Without, it is routed to the first shard
        whose fragment DTD validates it — content-aware fragmentations
        route themselves; raises :class:`ShardConfigError` when no
        fragment accepts the document (or when validation is off and
        no shard is named, since routing needs validation).
        """
        if shard is not None:
            target = self._shard_by_name.get(shard)
            if target is None:
                raise ShardConfigError(
                    f"{self.name!r} has no shard named {shard!r}"
                )
            target.add_document(document)
            return
        if not self.validate:
            raise ShardConfigError(
                f"sharded source {self.name!r} has validation off; "
                "name a shard to route the document to"
            )
        for candidate in self.shards:
            if validate_document(document, candidate.dtd).ok:
                candidate.add_document(document)
                return
        raise ShardConfigError(
            f"document fits no fragment DTD of {self.name!r}"
        )

    # -- planning ----------------------------------------------------------

    def prune(self, query: Query) -> tuple[list[str], list[str]]:
        """``(survivor_names, pruned_names)`` for a query, in shard order.

        The static planning step of :meth:`query`, exposed for
        inspection: no shard is called, no counter moves.
        """
        plan = compile_query(query)
        survivors: list[str] = []
        pruned: list[str] = []
        for index, shard in enumerate(self.shards):
            if not self.policy.prune or fragment_can_match(
                plan, shard.dtd, self._reachable[index]
            ):
                survivors.append(shard.name)
            else:
                pruned.append(shard.name)
        return survivors, pruned

    def shard_health(self) -> dict[str, dict]:
        """Per-shard transport health (breaker states, retries, ...)."""
        return {
            transport.name: transport.health()
            for transport in self.transports
        }

    # -- the gather --------------------------------------------------------

    def query(self, query: Query) -> Document:
        """Prune, scatter surviving shards, gather, merge in shard order."""
        with self._stats_lock:
            self.queries_served += 1
            self.stats.queries += 1
        self.last_gather = None
        report = ShardGatherReport(source=self.name)
        plan = compile_query(query)
        survivors: list[int] = []
        with obs.span("shard.prune") as sp:
            sp.set_attribute("source", self.name)
            sp.set_attribute("shards", len(self.shards))
            for index, shard in enumerate(self.shards):
                if not self.policy.prune or fragment_can_match(
                    plan, shard.dtd, self._reachable[index]
                ):
                    survivors.append(index)
                else:
                    report.pruned.append(shard.name)
            sp.set_attribute("pruned", len(report.pruned))
            sp.set_attribute("survivors", len(survivors))
        with self._stats_lock:
            self.stats.shards_pruned += len(report.pruned)
            if not survivors:
                self.stats.all_pruned += 1
        if not survivors:
            self.last_gather = report
            return self._empty_answer(query)
        deadline = (
            Deadline.after(self.clock, self.policy.gather_budget)
            if self.policy.gather_budget is not None
            else None
        )
        with obs.span("shard.gather") as sp:
            sp.set_attribute("source", self.name)
            sp.set_attribute("legs", len(survivors))
            results = self.parallel.fan_out(
                [(self.transports[index], query) for index in survivors],
                deadline,
            )
            with self._stats_lock:
                self.stats.shards_called += len(survivors)
            picks: list[Element] = []
            origins: list[PickOrigin] | None = (
                [] if provenance_enabled() else None
            )
            offsets = self._document_offsets()
            first_error: Exception | None = None
            failures = 0
            for index, result in zip(survivors, results):
                shard_name = self.shards[index].name
                if result.error is not None:
                    failures += 1
                    if not self.policy.partial:
                        with self._stats_lock:
                            self.stats.shard_failures += failures
                        raise result.error
                    if first_error is None:
                        first_error = result.error
                    report.skipped[shard_name] = (
                        f"{result.error.code}: {result.error}"
                    )
                    sp.add_event(
                        "shard.skipped",
                        shard=shard_name,
                        code=result.error.code,
                    )
                    continue
                report.answered.append(shard_name)
                answer = result.answer
                assert answer is not None
                picks.extend(answer.root.children)
                if origins is not None:
                    shard_origins = provenance_of(answer)
                    if shard_origins is None:
                        origins = None
                    else:
                        base = offsets[index]
                        origins.extend(
                            PickOrigin(base + o.doc, o.pos, o.end)
                            for o in shard_origins
                        )
            with self._stats_lock:
                self.stats.shard_failures += failures
            if report.skipped and not report.answered:
                # Partial mode with nothing gathered: there is no
                # partial answer to offer, so the logical call fails
                # like an unsharded source would.
                assert first_error is not None
                raise first_error
            if report.skipped:
                with self._stats_lock:
                    self.stats.partial_gathers += 1
                sp.add_event(
                    "partial_gather", code=PARTIAL_SHARD_GATHER
                )
            sp.set_attribute("failed", failures)
            sp.set_attribute("partial", bool(report.skipped))
            sp.set_attribute("picks", len(picks))
            merged = Document(
                Element(query.view_name, picks, fresh_id())
            )
            if origins is not None:
                record_provenance(merged, tuple(origins))
        self.last_gather = report
        return merged

    def _document_offsets(self) -> list[int]:
        """Per shard: the ordinal of its first document in the logical
        concatenated list (provenance ``doc`` fields shift by this)."""
        offsets: list[int] = []
        base = 0
        for shard in self.shards:
            offsets.append(base)
            base += len(shard.documents)
        return offsets

    def _empty_answer(self, query: Query) -> Document:
        answer = Document(Element(query.view_name, [], fresh_id()))
        if provenance_enabled():
            # An all-pruned answer has provably no picks; an empty
            # origin tuple keeps matview entries delta-capable.
            record_provenance(answer, ())
        return answer

    def close(self) -> None:
        """Release the gather worker pool (idempotent)."""
        self.parallel.close()

    def __repr__(self) -> str:
        return (
            f"ShardedSource(name={self.name!r}, "
            f"shards={[shard.name for shard in self.shards]})"
        )


# ---------------------------------------------------------------------------
# kernel-registry integration
# ---------------------------------------------------------------------------

_LIVE_SHARDED: "weakref.WeakSet[ShardedSource]" = weakref.WeakSet()


def _clear_stats() -> None:
    for source in list(_LIVE_SHARDED):
        with source._stats_lock:
            source.stats = ShardStats()


def _aggregate() -> dict:
    totals = {
        "sources": 0,
        "shards": 0,
        "queries": 0,
        "pruned": 0,
        "called": 0,
        "failures": 0,
        "partial_gathers": 0,
        "all_pruned": 0,
    }
    for source in list(_LIVE_SHARDED):
        stats = source.stats
        totals["sources"] += 1
        totals["shards"] += len(source.shards)
        totals["queries"] += stats.queries
        totals["pruned"] += stats.shards_pruned
        totals["called"] += stats.shards_called
        totals["failures"] += stats.shard_failures
        totals["partial_gathers"] += stats.partial_gathers
        totals["all_pruned"] += stats.all_pruned
    return totals


def _registry_info() -> dict:
    totals = _aggregate()
    return {
        "hits": totals["pruned"],
        "misses": totals["called"],
        "size": totals["shards"],
    }


kernel.register_cache("mediator.sharding", _clear_stats, _registry_info)
kernel.register_stats_section("sharding", _aggregate)
