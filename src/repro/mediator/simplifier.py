"""The DTD-based query simplifier (Section 1's second benefit).

Before a query touches any source, the mediator classifies it against
the target DTD (the tightening side effect of Section 4.2):

* UNSATISFIABLE -- answer with the empty view immediately; no source
  access, no evaluation.  This is the headline saving.
* VALID / SATISFIABLE -- additionally *prune* the condition tree:
  a subtree whose constraints every candidate element is guaranteed to
  satisfy can be replaced by a bare existence test (cheaper to
  evaluate), provided it binds no variable the query still needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..dtd import Dtd
from ..xmas import Condition, Query
from ..inference.classify import Classification, InferenceMode
from ..inference.tighten import TightenResult, tighten


@dataclass
class SimplifierDecision:
    """What the simplifier concluded about a query."""

    classification: Classification
    query: Query
    #: number of condition nodes removed by valid-subtree pruning
    pruned_nodes: int = 0

    @property
    def answer_is_empty(self) -> bool:
        """The mediator may answer without evaluating anything."""
        return self.classification is Classification.UNSATISFIABLE


def _needed_variables(query: Query) -> frozenset[str]:
    """Variables the query result or constraints depend on."""
    needed = {query.pick_variable}
    for pair in query.inequalities:
        needed.update(pair)
    return frozenset(needed)


def _prune(
    node: Condition,
    result: TightenResult,
    needed: frozenset[str],
    pick_variable: str,
    counter: list[int],
) -> Condition:
    """Replace valid subtrees by bare existence tests."""
    typing = result.typings.get(id(node))
    keeps_variable = node.variable is not None and node.variable in needed
    is_pick_ancestor = pick_variable in {
        n.variable for n in node.iter_nodes() if n.variable
    }
    if (
        typing is not None
        and typing.classification.is_valid
        and not keeps_variable
        and not is_pick_ancestor
        and node.children
    ):
        # Narrow the name test to the feasible names: a name that was
        # infeasible must keep being rejected after the subtree is gone.
        from ..xmas import NameTest

        counter[0] += sum(1 for _ in node.iter_nodes()) - 1
        return replace(
            node,
            test=NameTest(tuple(sorted(typing.keys))),
            children=(),
            pcdata=None,
        )
    return replace(
        node,
        children=tuple(
            _prune(child, result, needed, pick_variable, counter)
            for child in node.children
        ),
    )


def simplify_query(
    query: Query,
    dtd: Dtd,
    mode: InferenceMode = InferenceMode.EXACT,
    tightening: TightenResult | None = None,
) -> SimplifierDecision:
    """Classify and prune a query against a DTD.

    The pruned query is equivalent to the original over every document
    valid under ``dtd``: only subtrees proven to hold for *every*
    candidate element are reduced to existence tests, and subtrees
    binding variables the query still needs are kept intact.

    ``tightening`` may carry a precomputed Tighten run for this
    query/DTD pair (the mediator pre-flight shares its own run so the
    query pays for one classification, not two); per-node
    classifications do not depend on specialization collapse, so an
    uncollapsed run is accepted.
    """
    result = (
        tightening
        if tightening is not None
        else tighten(dtd, query, mode, collapse=False, strict=False)
    )
    classification = result.classification
    if dtd.root is not None and dtd.root not in result.root.keys:
        # The condition tree is anchored at the document root: a root
        # test that cannot match the document type is unsatisfiable
        # even when its names exist elsewhere in the DTD.
        classification = Classification.UNSATISFIABLE
    if classification is Classification.UNSATISFIABLE:
        return SimplifierDecision(classification, query)
    counter = [0]
    pruned_root = _prune(
        query.root,
        result,
        _needed_variables(query),
        query.pick_variable,
        counter,
    )
    pruned_query = replace(query, root=pruned_root)
    return SimplifierDecision(classification, pruned_query, counter[0])
