"""Query/view composition: rewrite a client query to run on the source.

Section 1's TSIMMIS walkthrough: the mediator "first combines the
incoming query and the view into a query which refers directly to the
source data".  For pick-element queries a large, useful subclass
composes cleanly: the client query navigates *into* the picked
elements, so its condition chain can be grafted onto the view's pick
node.  The composed query returns exactly what evaluating the client
query over the materialized view would -- without materializing.

Composability conditions (checked; :func:`compose_query` returns
``None`` and the mediator falls back to materialization otherwise):

* the client root tests the view name, carries no text condition, and
  has exactly one child condition (the common navigate-in case);
* neither query uses recursive path steps;
* the client pick is not the view root itself (the view root does not
  exist in the source);
* the view's pick names cannot nest within each other in the source
  DTD (nested picks are *copied* twice into the view, changing answer
  multiplicities in a way no single source query reproduces).

Correctness (tested on random documents):
``evaluate(composed, source) == evaluate(client, evaluate(view, source))``
up to element identity (the materialized path re-IDs copies).

Execution note: a composed query is still *one source call*, so the
mediator sends it through the same fault-tolerant transport
(:mod:`repro.mediator.transport`) as any other fan-out leg — timeout,
retries, and the source's circuit breaker all apply, and a permanent
failure degrades exactly like the materialized path would
(docs/RELIABILITY.md).
"""

from __future__ import annotations

from dataclasses import replace

from ..dtd import Dtd
from ..xmas import Condition, NameTest, Query
from ..xmas.analysis import has_recursive_steps, pick_path


def _rename_client_variables(query: Query, taken: frozenset[str]) -> Query:
    """Prefix client variables that collide with view variables."""
    collisions = query.root.variables() & taken
    if not collisions:
        return query
    mapping = {name: f"c_{name}" for name in collisions}
    while set(mapping.values()) & taken:
        mapping = {k: f"c_{v}" for k, v in mapping.items()}

    def rebuild(node: Condition) -> Condition:
        return replace(
            node,
            variable=mapping.get(node.variable, node.variable),
            children=tuple(rebuild(child) for child in node.children),
        )

    return replace(
        query,
        root=rebuild(query.root),
        pick_variable=mapping.get(query.pick_variable, query.pick_variable),
        inequalities=frozenset(
            frozenset(mapping.get(v, v) for v in pair)
            for pair in query.inequalities
        ),
    )


def _pick_names_can_nest(names: tuple[str, ...], dtd: Dtd | None) -> bool:
    """Can an element of one pick name contain another pick name?"""
    if dtd is None:
        return False  # caller accepts the risk without a DTD
    from ..dtd import reachable_names

    for outer in names:
        if outer not in dtd:
            continue
        inner_reach = reachable_names(dtd, outer) - {outer}
        if any(name in inner_reach for name in names):
            return True
        # self-nesting (recursion through outer) also counts
        if outer in {
            n
            for ref in dtd.referenced_names(outer)
            if ref in dtd
            for n in reachable_names(dtd, ref)
        }:
            return True
    return False


def _merge_pick_conditions(
    view_pick: Condition, client_step: Condition
) -> Condition | None:
    """Conjoin the view pick's constraints with the client's step."""
    if view_pick.test.names is None or client_step.test.names is None:
        shared = (
            client_step.test.names
            if view_pick.test.names is None
            else view_pick.test.names
        )
        if shared is None:
            return None
    else:
        shared = tuple(
            name
            for name in view_pick.test.names
            if name in client_step.test.names
        )
    if not shared:
        return None
    if view_pick.pcdata is not None or client_step.pcdata is not None:
        if view_pick.children or client_step.children:
            return None
        if (
            view_pick.pcdata is not None
            and client_step.pcdata is not None
            and view_pick.pcdata != client_step.pcdata
        ):
            return None
        pcdata = view_pick.pcdata or client_step.pcdata
        return Condition(
            NameTest(shared),
            client_step.variable,
            (),
            pcdata,
            False,
        )
    return Condition(
        NameTest(shared),
        client_step.variable,
        view_pick.children + client_step.children,
        None,
        False,
    )


def compose_query(
    view_query: Query,
    client_query: Query,
    source_dtd: Dtd | None = None,
) -> Query | None:
    """Rewrite ``client_query``-over-the-view into a source query.

    Returns ``None`` when the pair is outside the composable class;
    the caller should then materialize the view and evaluate directly.
    ``source_dtd`` enables the nested-picks safety check; without it,
    composition is refused whenever the view's pick test has more than
    one name (conservative).
    """
    if has_recursive_steps(view_query) or has_recursive_steps(client_query):
        return None
    client_root = client_query.root
    if not client_root.test.accepts(view_query.view_name):
        return None
    if client_root.pcdata is not None or client_root.recursive:
        return None
    if len(client_root.children) != 1:
        return None
    if client_query.pick_variable == (client_root.variable or ""):
        return None  # the view root has no source counterpart
    if client_root.variable is not None:
        # A binding on the view root cannot be translated; refuse if
        # anything depends on it.
        used = {client_query.pick_variable} | {
            v for pair in client_query.inequalities for v in pair
        }
        if client_root.variable in used:
            return None

    view_path = pick_path(view_query)
    view_pick = view_path.pick
    pick_names = view_pick.test.names
    if pick_names is None:
        return None
    if len(pick_names) > 1 or source_dtd is not None:
        if _pick_names_can_nest(pick_names, source_dtd):
            return None
        if len(pick_names) > 1 and source_dtd is None:
            return None

    client = _rename_client_variables(
        client_query, view_query.root.variables()
    )
    client_step = client.root.children[0]
    merged_pick = _merge_pick_conditions(view_pick, client_step)
    if merged_pick is None:
        return None
    # Keep the view-pick variable only if the view's inequalities need it.
    view_needs = {v for pair in view_query.inequalities for v in pair}
    if view_pick.variable in view_needs and merged_pick.variable is None:
        merged_pick = replace(merged_pick, variable=view_pick.variable)
    elif view_pick.variable in view_needs:
        return None  # both sides bind the pick; renaming both is unsafe

    def graft(node: Condition) -> Condition:
        if node is view_pick:
            return merged_pick
        return replace(
            node, children=tuple(graft(child) for child in node.children)
        )

    composed_root = graft(view_query.root)
    return Query(
        client.view_name,
        client.pick_variable,
        composed_root,
        view_query.inequalities | client.inequalities,
        view_query.source,
    )
