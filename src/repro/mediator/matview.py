"""Materialized-view answer cache with provenance-based maintenance.

The mediator of the paper is *on-demand*: every ``materialize_union``
or ``query_view`` call fans out to the sources and re-evaluates, even
when nothing changed.  Two earlier pieces make materialization sound:

* the inferred view DTD says what a valid answer looks like, and
* the global mutation clock (:mod:`repro.xmlmodel.element`) stamps
  every document edit, so "nothing changed" is an O(1) question.

A :class:`MatViewCache` keeps validated answers keyed by (kind, view
name, compiled-plan signature) and revalidates hits with exactly the
fast-path/re-arm discipline of
:func:`repro.xmlmodel.index.document_index`:

1. **O(1) fast path** -- the global clock has not moved since the
   entry was last validated: serve the answer.
2. **Re-arm scan** -- the clock moved, but a scan shows none of the
   entry's contributing documents did: re-stamp the entry and serve.
3. **Delta maintenance** -- exactly one contributing document mutated
   and the entry knows which slice of the answer that document
   produced (the engine's :class:`~repro.xmas.engine.PickOrigin`
   provenance): re-run pick-projection over that one document, splice
   the fresh picks into the materialized answer, re-validate the
   spliced answer against the inferred view DTD, re-stamp.  Validation
   failure (``MED007``) falls back to a full recompute.
4. **Invalidate** -- anything else (several dirty documents, changed
   document lists, no provenance): drop the entry and recompute.

Served answers are **shared snapshots**: a hit returns the cached
master document itself rather than a per-hit deep copy (the copy would
cost more than the recompute it saves on small answers, and dominates
the hit path on large ones).  This is sound under the model's own
mutation contract -- edits MUST go through the stamped ``Element``
APIs -- because an edit to a served answer bumps the global clock, and
the next probe's re-arm scan covers the master's elements too: a
poisoned master is invalidated, never served.  Delta maintenance never
edits a served master in place either; it builds a *new* root sharing
the untouched pick subtrees, so answers held from earlier hits stay
stable.

Entries are LRU-bounded by an answer-size byte budget and the cache is
thread-safe: one warm cache is shared by ``ParallelTransport`` workers
and ``MediatorServer`` handler threads.  Counters fold into
``kernel_stats()`` (section ``"matview"``) and reset with
``clear_caches()`` through the :mod:`repro.regex.kernel` registry.
Delta maintenance is mediator-local: it re-evaluates over the
mediator's own reference to the dirty document, never through the
source transport -- no retries, no latency, deterministic under
``FakeClock``.

See docs/PERFORMANCE.md (caching section) and ``ISSUE`` PR 8.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from .. import obs
from ..errors import STALE_DELTA_FALLBACK
from ..regex import kernel
from ..xmas import Query, evaluate_many
from ..xmas.engine import CompiledPlan, PickOrigin, compile_query
from ..xmlmodel import Document
from ..xmlmodel.element import mutation_stamp
from ..xmlmodel.index import DocumentIndex, document_index


if TYPE_CHECKING:
    from ..dtd import Dtd
    from .source import Source


# ---------------------------------------------------------------------------
# policy and keying
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatViewPolicy:
    """Knobs for a mediator's materialized-view cache.

    ``enabled=False`` keeps the cache object but never serves from it
    (the cheap comparator for the disabled-overhead benchmark gate);
    ``delta=False`` disables splicing, so any mutation of a
    contributing document costs a full recompute; ``validate_deltas``
    re-validates every spliced answer against the inferred view DTD
    before release (the soundness belt -- leave it on outside
    benchmarks); ``max_bytes`` bounds the sum of cached answer-size
    estimates (LRU eviction).
    """

    enabled: bool = True
    delta: bool = True
    validate_deltas: bool = True
    max_bytes: int = 8 << 20


def plan_signature(plan: CompiledPlan) -> tuple:
    """A stable, hashable fingerprint of a compiled plan.

    Two queries with the same signature materialize the same answer
    over the same documents, so the signature (not the query object)
    keys cache entries.
    """
    return (
        tuple(
            (
                None
                if node.names is None
                else tuple(sorted(node.names)),
                node.variable,
                node.pcdata,
                node.recursive,
                node.parent,
                node.end,
            )
            for node in plan.nodes
        ),
        plan.pick_path,
        plan.projectable,
    )


def query_signature(query: Query) -> tuple:
    """``plan_signature`` of a query (compiled through the plan cache)."""
    return plan_signature(compile_query(query))


@dataclass(frozen=True)
class CacheLeg:
    """One source's contribution to a cached view.

    ``delta_query`` is a query that, evaluated over a *single* source
    document, yields exactly that document's contribution to the
    answer (a union branch's query, or a composed source query).
    ``None`` marks the leg recompute-only: mutations under it always
    invalidate.
    """

    source_name: str
    source: "Source"
    delta_query: Query | None


# ---------------------------------------------------------------------------
# entries
# ---------------------------------------------------------------------------


class _DocState:
    """One contributing document's slice of a cached answer.

    ``start:stop`` is the half-open range of top-level answer children
    this document produced (``-1`` when unknown -- entry is then
    recompute-only); ``index`` is the document's
    :class:`DocumentIndex` at entry-build time, kept so staleness can
    be decided with the same completeness argument as
    ``_index_is_fresh``: new elements necessarily hang off a mutated
    indexed parent.
    """

    __slots__ = ("leg", "document", "index", "start", "stop")

    def __init__(
        self,
        leg: int,
        document: Document,
        index: DocumentIndex,
        start: int,
        stop: int,
    ) -> None:
        self.leg = leg
        self.document = document
        self.index = index
        self.start = start
        self.stop = stop

    def fresh_at(self, stamp: int) -> bool:
        if self.document.mutation_version > stamp:
            return False
        # Delegated so store-backed indexes can answer from their
        # on-disk generation counter instead of scanning Element rows.
        return self.index.fresh_at(stamp)


class _Entry:
    __slots__ = (
        "key",
        "view_name",
        "dtd",
        "answer",
        "pick_elems",
        "bytes",
        "built_stamp",
        "stamp",
        "legs",
        "leg_docs",
        "docs",
        "spliceable",
    )

    def __init__(
        self,
        key: tuple,
        view_name: str,
        dtd: Optional["Dtd"],
        answer: Document,
        legs: tuple[CacheLeg, ...],
        leg_docs: tuple[tuple[Document, ...], ...],
        docs: list[_DocState],
        built_stamp: int,
        spliceable: bool,
    ) -> None:
        self.key = key
        self.view_name = view_name
        self.dtd = dtd
        self.answer = answer
        # The master is served by reference, so a caller edit (through
        # the stamped APIs) must be detectable: keep the element set,
        # one tuple per top-level pick so delta maintenance can swap
        # slices without re-walking untouched subtrees.  New elements
        # can only appear under a mutated (hence stamped, hence
        # caught) parent.
        self.pick_elems = [
            tuple(child.iter()) for child in answer.root.children
        ]
        self.bytes = estimate_bytes(answer)
        self.built_stamp = built_stamp
        self.stamp = built_stamp
        self.legs = legs
        self.leg_docs = leg_docs
        self.docs = docs
        self.spliceable = spliceable

    def answer_intact(self) -> bool:
        stamp = self.built_stamp
        if self.answer.root.mutation_version > stamp:
            return False
        for elems in self.pick_elems:
            for el in elems:
                if el.mutation_version > stamp:
                    return False
        return True

    def provenance(self) -> list[tuple[str, int, tuple[int, int]]]:
        """Per contributing document: (source, picks, answer slice)."""
        return [
            (
                self.legs[state.leg].source_name,
                max(0, state.stop - state.start),
                (state.start, state.stop),
            )
            for state in self.docs
        ]


def estimate_bytes(document: Document) -> int:
    """A cheap, deterministic answer-size estimate for the byte budget."""
    total = 0
    for element in document.root.iter():
        total += 56 + len(element.name)
        if isinstance(element.content, str):
            total += len(element.content)
    return total


def _estimate_subtrees(elements) -> int:
    """:func:`estimate_bytes` over a slice of pick subtrees.

    Lets delta maintenance adjust an entry's byte estimate by walking
    only the swapped picks instead of the whole answer.
    """
    total = 0
    for root in elements:
        for element in root.iter():
            total += 56 + len(element.name)
            if isinstance(element.content, str):
                total += len(element.content)
    return total


@dataclass
class _MissToken:
    """Handed out on a miss; redeemed by :meth:`MatViewCache.store`.

    ``stamp`` is the mutation clock *before* the caller started
    evaluating: a mutation landing mid-evaluation leaves the stored
    entry conservatively stale, so the next lookup re-checks it.
    """

    key: tuple
    view_name: str
    dtd: Optional["Dtd"]
    legs: tuple[CacheLeg, ...]
    stamp: int


@dataclass
class CacheOutcome:
    """What a :meth:`MatViewCache.probe` decided.

    ``status`` is ``"hit"`` / ``"delta"`` / ``"miss"``; on a miss
    ``reason`` says why (``cold`` / ``stale`` / ``docs-changed`` /
    ``stale-delta`` / ``disabled``) and ``token`` (when cacheable)
    should be passed to :meth:`MatViewCache.store` with the computed
    answer.
    """

    status: str
    answer: Document | None = None
    token: _MissToken | None = None
    reason: str = ""


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------


class MatViewCache:
    """A thread-safe LRU answer cache for one (or several) mediators."""

    def __init__(self, policy: MatViewPolicy | None = None) -> None:
        self.policy = policy or MatViewPolicy()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.deltas = 0
        self.recomputes = 0
        self.evictions = 0
        self.stale_delta_fallbacks = 0
        self.bypasses = 0
        _LIVE_CACHES.add(self)

    # -- inspection ------------------------------------------------------

    def info(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "deltas": self.deltas,
                "recomputes": self.recomputes,
                "evictions": self.evictions,
                "stale_delta_fallbacks": self.stale_delta_fallbacks,
                "bypasses": self.bypasses,
                "entries": len(self._entries),
                "bytes": self._bytes,
            }

    def provenance(
        self, key: tuple
    ) -> list[tuple[str, int, tuple[int, int]]] | None:
        """The per-document provenance of a cached answer (or None)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.provenance() if entry is not None else None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.invalidations = 0
            self.deltas = 0
            self.recomputes = 0
            self.evictions = 0
            self.stale_delta_fallbacks = 0
            self.bypasses = 0

    def note_bypass(self) -> None:
        """Count an explicit per-request cache bypass (``MED006``)."""
        with self._lock:
            self.bypasses += 1

    # -- the decision procedure ------------------------------------------

    def _docs_unchanged(self, entry: _Entry) -> bool:
        for leg, stored in zip(entry.legs, entry.leg_docs):
            current = leg.source.documents
            if len(current) != len(stored):
                return False
            for live, kept in zip(current, stored):
                if live is not kept:
                    return False
        return True

    def _classify(
        self, entry: _Entry
    ) -> tuple[str, _DocState | None]:
        """``(verdict, dirty_doc)`` for a held entry, without mutating it.

        Verdicts: ``fast-hit`` (clock unmoved), ``rearm-hit`` (moved,
        entry untouched), ``delta`` (one dirty spliceable document),
        ``docs-changed``, ``answer-mutated`` (a caller edited the
        served master), ``stale``.
        """
        if not self._docs_unchanged(entry):
            return "docs-changed", None
        stamp = mutation_stamp()
        if stamp == entry.stamp:
            return "fast-hit", None
        if not entry.answer_intact():
            return "answer-mutated", None
        dirty = [
            state
            for state in entry.docs
            if not state.fresh_at(entry.built_stamp)
        ]
        if not dirty:
            return "rearm-hit", None
        if (
            self.policy.delta
            and entry.spliceable
            and len(dirty) == 1
            and entry.legs[dirty[0].leg].delta_query is not None
        ):
            return "delta", dirty[0]
        return "stale", None

    def peek(self, key: tuple, legs: Sequence[CacheLeg]) -> str:
        """Non-mutating classification for ``explain()``.

        Returns ``"hit"``, ``"delta"``, ``"recompute"``, or ``"cold"``.
        """
        if not self.policy.enabled:
            return "disabled"
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return "cold"
            verdict, _ = self._classify(entry)
        if verdict in ("fast-hit", "rearm-hit"):
            return "hit"
        if verdict == "delta":
            return "delta"
        return "recompute"

    def probe(
        self,
        key: tuple,
        view_name: str,
        dtd: Optional["Dtd"],
        legs: Sequence[CacheLeg],
    ) -> CacheOutcome:
        """Look up (and, when possible, delta-maintain) a cached answer.

        Returns a hit/delta outcome carrying the shared master answer
        (a stable snapshot -- see the module docstring), or a miss
        outcome whose token the caller redeems with :meth:`store`
        after recomputing.
        """
        legs = tuple(legs)
        if not self.policy.enabled:
            return CacheOutcome("miss", reason="disabled")
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return self._miss(
                    key, view_name, dtd, legs, "cold"
                )
            stamp = mutation_stamp()
            verdict, dirty = self._classify(entry)
            if verdict in ("fast-hit", "rearm-hit"):
                if verdict == "rearm-hit":
                    entry.stamp = stamp
                self.hits += 1
                self._entries.move_to_end(key)
                with obs.span("matview.hit") as sp:
                    sp.set_attribute("view", view_name)
                    sp.set_attribute("bytes", entry.bytes)
                    sp.set_attribute(
                        "elements", len(entry.answer.root.children)
                    )
                return CacheOutcome("hit", answer=entry.answer)
            if verdict == "delta":
                assert dirty is not None
                maintained = self._maintain(entry, dirty)
                if maintained is not None:
                    self.deltas += 1
                    self._entries.move_to_end(key)
                    return CacheOutcome("delta", answer=maintained)
                # stale-delta fallback (MED007): entry already dropped
                self.stale_delta_fallbacks += 1
                self.misses += 1
                return self._miss(
                    key, view_name, dtd, legs, "stale-delta"
                )
            # docs-changed or stale: drop and recompute
            self._drop(key)
            self.invalidations += 1
            self.misses += 1
            return self._miss(key, view_name, dtd, legs, verdict)

    def _miss(
        self,
        key: tuple,
        view_name: str,
        dtd: Optional["Dtd"],
        legs: tuple[CacheLeg, ...],
        reason: str,
    ) -> CacheOutcome:
        with obs.span("matview.miss") as sp:
            sp.set_attribute("view", view_name)
            sp.set_attribute("reason", reason)
        token = _MissToken(key, view_name, dtd, legs, mutation_stamp())
        return CacheOutcome("miss", token=token, reason=reason)

    def _drop(self, key: tuple) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry.bytes

    # -- delta maintenance ----------------------------------------------

    @staticmethod
    def _splice_validates(root, new_children, schema) -> bool:
        """Validate only what the splice could have broken.

        The untouched picks are shared with the previous master, which
        validated when it was built (inference soundness), so a delta
        only needs (a) the root's content model over the *new* child
        word and (b) a deep check of the fresh subtrees.  IDs need no
        re-check: every answer element carries a ``fresh_id``, unique
        by construction.
        """
        from ..dtd import Pcdata, validate_element
        from ..regex import to_dfa

        if root.name not in schema:
            return False
        declared = schema.type_of(root.name)
        if isinstance(declared, Pcdata):
            return False
        word = [(child.name, 0) for child in root.children]
        if not to_dfa(declared).accepts(word):
            return False
        return all(
            validate_element(child, schema).ok
            for child in new_children
        )

    def _maintain(
        self, entry: _Entry, dirty: _DocState
    ) -> Document | None:
        """Splice one dirty document's fresh picks into the answer.

        The master is never edited in place -- answers served from
        earlier hits must stay stable -- so maintenance builds a *new*
        root whose child list splices the fresh picks between the
        untouched pick subtrees (shared by reference).  Returns the
        new master, or ``None`` after dropping the entry when the
        spliced answer no longer validates against the inferred view
        DTD (``MED007``).
        """
        from ..xmlmodel import Element, fresh_id

        leg = entry.legs[dirty.leg]
        assert leg.delta_query is not None
        with obs.span("matview.delta") as sp:
            sp.set_attribute("view", entry.view_name)
            sp.set_attribute("source", leg.source_name)
            stamp = mutation_stamp()
            fresh = evaluate_many(leg.delta_query, [dirty.document])
            new_children = list(fresh.root.children)
            old = entry.answer.root.content
            assert isinstance(old, list)
            start, stop = dirty.start, dirty.stop
            spliced = old[:start] + new_children + old[stop:]
            maintained = Document(
                Element(entry.answer.root.name, spliced, fresh_id())
            )
            shift = len(new_children) - (stop - start)
            dirty.stop += shift
            if shift:
                seen_dirty = False
                for state in entry.docs:
                    if state is dirty:
                        seen_dirty = True
                        continue
                    if seen_dirty:
                        state.start += shift
                        state.stop += shift
            sp.set_attribute("spliced_elements", len(new_children))
            sp.set_attribute("shift", shift)
            if entry.dtd is not None and self.policy.validate_deltas:
                if not self._splice_validates(
                    maintained.root, new_children, entry.dtd
                ):
                    sp.add_event(
                        "stale_delta_fallback",
                        code=STALE_DELTA_FALLBACK,
                    )
                    self._drop(entry.key)
                    return None
            dirty.index = document_index(dirty.document)
            entry.answer = maintained
            entry.pick_elems[start:stop] = [
                tuple(child.iter()) for child in new_children
            ]
            entry.built_stamp = stamp
            entry.stamp = stamp
            self._bytes -= entry.bytes
            entry.bytes += _estimate_subtrees(
                new_children
            ) - _estimate_subtrees(old[start:stop])
            self._bytes += entry.bytes
            sp.set_attribute("bytes", entry.bytes)
        self._evict()
        return entry.answer

    # -- population ------------------------------------------------------

    def store(
        self,
        token: _MissToken,
        answer: Document,
        origins_per_leg: Sequence[tuple[PickOrigin, ...] | None],
    ) -> None:
        """Redeem a miss token with the freshly computed answer.

        The answer document becomes the entry's master *by reference*
        (the caller hands ownership to the cache and receives the same
        shared-snapshot semantics as a hit).  ``origins_per_leg``
        aligns with the token's legs: each entry is the engine
        provenance of that leg's answer (``None`` when unavailable --
        the stored entry is then recompute-only).  Degraded answers
        must not be stored; the mediator checks.
        """
        legs = token.legs
        docs: list[_DocState] = []
        leg_docs: list[tuple[Document, ...]] = []
        spliceable = True
        offset = 0
        for leg_index, (leg, origins) in enumerate(
            zip(legs, origins_per_leg)
        ):
            documents = tuple(leg.source.documents)
            leg_docs.append(documents)
            if origins is None or any(o.pos < 0 for o in origins):
                # No provenance for this leg: the entry can still be
                # validated and invalidated, but never spliced, so the
                # (now meaningless) answer offsets stay at -1.
                spliceable = False
                for document in documents:
                    docs.append(
                        _DocState(
                            leg_index,
                            document,
                            document_index(document),
                            -1,
                            -1,
                        )
                    )
                continue
            counts = [0] * len(documents)
            for origin in origins:
                counts[origin.doc] += 1
            for ordinal, document in enumerate(documents):
                start = offset
                offset += counts[ordinal]
                docs.append(
                    _DocState(
                        leg_index,
                        document,
                        document_index(document),
                        start,
                        offset,
                    )
                )
        entry = _Entry(
            token.key,
            token.view_name,
            token.dtd,
            answer,
            legs,
            tuple(leg_docs),
            docs,
            token.stamp,
            spliceable,
        )
        with obs.span("matview.recompute") as sp:
            sp.set_attribute("view", token.view_name)
            sp.set_attribute("bytes", entry.bytes)
            sp.set_attribute("elements", len(answer.root.children))
            with self._lock:
                if entry.bytes > self.policy.max_bytes:
                    self.evictions += 1
                    return
                self._drop(token.key)
                self._entries[token.key] = entry
                self._bytes += entry.bytes
                self.recomputes += 1
                self._evict()

    def _evict(self) -> None:
        with self._lock:
            while (
                self._bytes > self.policy.max_bytes
                and len(self._entries) > 1
            ):
                _, entry = self._entries.popitem(last=False)
                self._bytes -= entry.bytes
                self.evictions += 1


# ---------------------------------------------------------------------------
# kernel-registry integration
# ---------------------------------------------------------------------------

_LIVE_CACHES: "weakref.WeakSet[MatViewCache]" = weakref.WeakSet()


def _clear_live_caches() -> None:
    for cache in list(_LIVE_CACHES):
        cache.clear()


def _aggregate() -> dict:
    totals = {
        "hits": 0,
        "misses": 0,
        "invalidations": 0,
        "deltas": 0,
        "recomputes": 0,
        "evictions": 0,
        "stale_delta_fallbacks": 0,
        "bypasses": 0,
        "entries": 0,
        "bytes": 0,
    }
    for cache in list(_LIVE_CACHES):
        info = cache.info()
        for name in totals:
            totals[name] += info[name]
    return totals


def _registry_info() -> dict:
    totals = _aggregate()
    return {
        "hits": totals["hits"],
        "misses": totals["misses"],
        "invalidations": totals["invalidations"],
        "size": totals["entries"],
    }


kernel.register_cache(
    "mediator.matview", _clear_live_caches, _registry_info
)
kernel.register_stats_section("matview", _aggregate)
