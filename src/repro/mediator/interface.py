"""The DTD-based query interface (Section 1, citing [BGL+]).

"The view DTD is passed to the DTD-based query interface which
displays the structure of the view elements and also provides fill-in
windows and menus that allow the user to place conditions on the
elements."  This module is the model behind such an interface:

* :func:`structure_tree` renders the element structure a user would
  browse (names, content descriptions, cardinalities, recursion cuts);
* :class:`QueryBuilder` turns point-and-click style choices (descend
  here, require that, fill in this value, pick these elements) into a
  well-formed pick-element XMAS query;
* :func:`render_health` is the operations side of the same console:
  the per-source transport health (breaker states, retries, timeouts)
  a mediator operator would watch (docs/RELIABILITY.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dtd import Dtd, Pcdata
from ..errors import MediatorError, UnknownNameError
from ..regex import to_string
from ..xmas import Condition, Query, cond, query as make_query


@dataclass
class StructureNode:
    """One element of the structure display."""

    name: str
    content: str  # the content model, or "#PCDATA"
    children: list["StructureNode"] = field(default_factory=list)
    recursive_cut: bool = False  # subtree elided because of recursion

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        suffix = "  (...)" if self.recursive_cut else ""
        lines = [f"{pad}{self.name} : {self.content}{suffix}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def structure_tree(dtd: Dtd, root: str | None = None, max_depth: int = 12) -> StructureNode:
    """The browsable structure of a DTD, rooted at the document type."""
    start = root if root is not None else dtd.root
    if start is None:
        raise MediatorError("DTD has no document type; pass root= explicitly")

    def visit(name: str, depth: int, seen: frozenset[str]) -> StructureNode:
        content = dtd.type_of(name)
        if isinstance(content, Pcdata):
            return StructureNode(name, "#PCDATA")
        rendered = to_string(content)
        if name in seen or depth >= max_depth:
            return StructureNode(name, rendered, [], recursive_cut=True)
        children = [
            visit(child, depth + 1, seen | {name})
            for child in sorted(dtd.referenced_names(name))
        ]
        return StructureNode(name, rendered, children)

    return visit(start, 0, frozenset())


class QueryBuilder:
    """Assemble a pick-element query from interface gestures.

    Example::

        q = (QueryBuilder(dtd, view_name="withJournals")
             .descend("department")
             .condition_text("name", "CS")
             .descend("professor", "gradStudent", pick=True)
             .require("publication", containing=["journal"], distinct=2)
             .build())
    """

    def __init__(self, dtd: Dtd, view_name: str = "answer") -> None:
        self.dtd = dtd
        self.view_name = view_name
        #: path of (names, side-conditions) from the root downward
        self._path: list[tuple[tuple[str, ...], list[Condition]]] = []
        self._pick_level: int | None = None
        self._inequalities: list[tuple[str, str]] = []
        self._fresh = 0

    def _check_names(self, names: tuple[str, ...]) -> None:
        unknown = [name for name in names if name not in self.dtd]
        if unknown:
            raise UnknownNameError(
                f"names {unknown} are not in the DTD (known: "
                f"{sorted(self.dtd.names)[:10]}...)"
            )

    def descend(self, *names: str, pick: bool = False) -> "QueryBuilder":
        """Add a path step matching any of ``names``; mark the pick level."""
        if not names:
            raise MediatorError("descend needs at least one name")
        self._check_names(tuple(names))
        self._path.append((tuple(names), []))
        if pick:
            self._pick_level = len(self._path) - 1
        return self

    def condition_text(self, name: str, value: str) -> "QueryBuilder":
        """Require a child whose text equals ``value`` (a fill-in field)."""
        self._require_current()
        self._check_names((name,))
        self._path[-1][1].append(cond(name, pcdata=value))
        return self

    def require(
        self,
        *names: str,
        containing: list[str] | None = None,
        distinct: int = 1,
    ) -> "QueryBuilder":
        """Require ``distinct`` different children matching ``names``.

        ``containing`` lists grandchild names each required child must
        contain (a checkbox per nested element in the interface).
        """
        self._require_current()
        self._check_names(tuple(names))
        inner = tuple(cond(child) for child in (containing or []))
        variables: list[str] = []
        for _ in range(distinct):
            self._fresh += 1
            variable = f"V{self._fresh}"
            variables.append(variable)
            self._path[-1][1].append(
                cond(*names, var=variable, children=inner)
            )
        for i, left in enumerate(variables):
            for right in variables[i + 1:]:
                self._inequalities.append((left, right))
        return self

    def _require_current(self) -> None:
        if not self._path:
            raise MediatorError("descend into an element before adding conditions")

    def build(self, pick_variable: str = "P") -> Query:
        """Produce the query; the deepest ``pick=True`` step is selected."""
        if not self._path:
            raise MediatorError("empty query: descend at least once")
        if self._pick_level is None:
            raise MediatorError("no pick level marked (descend(..., pick=True))")
        node: Condition | None = None
        for level in range(len(self._path) - 1, -1, -1):
            names, side = self._path[level]
            children = list(side)
            if node is not None:
                children.append(node)
            variable = pick_variable if level == self._pick_level else None
            node = cond(*names, var=variable, children=tuple(children))
        assert node is not None
        return make_query(
            self.view_name,
            pick_variable,
            node,
            self._inequalities,
        )


def render_health(health: dict[str, dict]) -> str:
    """Render ``Mediator.health()`` as a fixed-width operator table.

    One row per source: breaker state, call/attempt/retry counters,
    failure and timeout counts — the at-a-glance dashboard for a
    federation under fault (``repro ask --stats`` prints this).
    """
    if not health:
        return "no sources registered"
    headers = (
        "source", "breaker", "calls", "attempts", "retries",
        "ok", "fail", "timeout", "rejected",
    )
    rows = [
        (
            snap["source"],
            snap["breaker"],
            str(snap["calls"]),
            str(snap["attempts"]),
            str(snap["retries"]),
            str(snap["successes"]),
            str(snap["failures"]),
            str(snap["timeouts"]),
            str(snap["breaker_rejections"]),
        )
        for snap in health.values()
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    def line(cells: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    return "\n".join([line(headers)] + [line(row) for row in rows])
