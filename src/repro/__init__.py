"""repro -- view DTD inference for XML mediators.

A full reproduction of Papakonstantinou & Velikhov, *Enhancing
Semistructured Data Mediators with Document Type Definitions*
(ICDE 1999): the MIX mediator architecture, XMAS pick-element queries,
and the view-DTD inference algorithms (type refinement, Tighten,
Merge, result-list inference) with their soundness/tightness quality
framework.

Quickstart::

    from repro import dtd, parse_query, infer_view_dtd

    source = dtd({
        "professor": "name, (journal | conference)*",
        "name": "#PCDATA", "journal": "#PCDATA", "conference": "#PCDATA",
    }, root="professor")
    q = parse_query("SELECT X WHERE X:<professor><journal/></professor>")
    result = infer_view_dtd(source, q)
    print(result.describe())

Subpackages:

* :mod:`repro.regex`     -- content models as regular expressions
* :mod:`repro.xmlmodel`  -- the XML abstraction (elements, documents)
* :mod:`repro.dtd`       -- DTDs, specialized DTDs, validation
* :mod:`repro.xmas`      -- the query language
* :mod:`repro.inference` -- the view-DTD inference algorithms
* :mod:`repro.mediator`  -- the MIX mediator
* :mod:`repro.workloads` -- paper examples and synthetic generators
"""

from .dtd import (
    PCDATA,
    Dtd,
    SpecializedDtd,
    dtd,
    parse_dtd,
    parse_paper_dtd,
    parse_paper_sdtd,
    satisfies_sdtd,
    sdtd,
    serialize_dtd,
    validate_document,
)
from .inference import (
    Classification,
    InferenceMode,
    InferenceResult,
    check_soundness,
    infer_list_type,
    infer_view_dtd,
    merge_sdtd,
    naive_view_dtd,
    refine,
    tighten,
)
from .lint import DiagnosticReport, Severity, lint_dtd, lint_query, run_lint
from .mediator import Mediator, QueryBuilder, Source, simplify_query, structure_tree
from .regex import parse_regex, to_string
from .xmas import Query, evaluate, parse_query
from .xmlmodel import Document, Element, parse_document, serialize_document

__version__ = "1.0.0"

__all__ = [
    "Classification",
    "DiagnosticReport",
    "Document",
    "Dtd",
    "Element",
    "InferenceMode",
    "InferenceResult",
    "Mediator",
    "PCDATA",
    "Query",
    "QueryBuilder",
    "Severity",
    "Source",
    "SpecializedDtd",
    "__version__",
    "check_soundness",
    "dtd",
    "lint_dtd",
    "lint_query",
    "evaluate",
    "infer_list_type",
    "infer_view_dtd",
    "merge_sdtd",
    "naive_view_dtd",
    "parse_document",
    "parse_dtd",
    "parse_paper_dtd",
    "parse_paper_sdtd",
    "parse_query",
    "parse_regex",
    "refine",
    "run_lint",
    "satisfies_sdtd",
    "sdtd",
    "serialize_document",
    "serialize_dtd",
    "simplify_query",
    "structure_tree",
    "tighten",
    "to_string",
    "validate_document",
]
