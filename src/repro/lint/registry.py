"""The plugin-style rule registry and the shared lint context.

A rule is a :class:`LintRule` subclass with a stable code (claimed in
the unified namespace of :mod:`repro.errors`), a scope saying which
inputs it needs, and a ``check`` method yielding diagnostics.  Rules
register themselves with the :func:`register_rule` decorator at import
time; :func:`repro.lint.engine.run_lint` selects the applicable ones.

The :class:`LintContext` carries the inputs of one run plus a shared
cache so expensive analyses (one Tighten run per query) are computed
once and reused by every rule -- and can be handed onward to the
mediator's query simplifier, making the pre-flight effectively free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from ..errors import QueryAnalysisError, register_diagnostic_code
from .diagnostics import Diagnostic, Severity, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dtd import Dtd, SpecializedDtd
    from ..inference.classify import InferenceMode
    from ..inference.pipeline import InferenceResult
    from ..inference.tighten import TightenResult
    from ..xmas import Query


@dataclass
class LintConfig:
    """Tunable thresholds for advisory rules."""

    #: warn when wildcard expansion multiplies the condition tree by
    #: more than this many names (MIX104)
    wildcard_expansion_limit: int = 16


@dataclass
class LintContext:
    """Everything a rule may look at during one run."""

    dtd: "Dtd | None" = None
    query: "Query | None" = None
    sdtd: "SpecializedDtd | None" = None
    inference: "InferenceResult | None" = None
    mode: "InferenceMode | None" = None
    #: source texts, when available, for best-effort line/column spans
    dtd_text: str | None = None
    query_text: str | None = None
    config: LintConfig = field(default_factory=LintConfig)
    #: shared per-run computations, keyed by analysis name
    cache: dict[str, Any] = field(default_factory=dict)
    #: label attached to every diagnostic (multi-input runs)
    origin: str = ""

    def tightening(self) -> "TightenResult | None":
        """The (uncollapsed) Tighten run of query-vs-DTD, shared.

        ``None`` when the query is outside the pick-element class the
        algorithm handles (recursive steps, several pick nodes) -- the
        scope rules report those cases instead.
        """
        if "tighten" in self.cache:
            return self.cache["tighten"]
        result: "TightenResult | None" = None
        if self.query is not None and self.dtd is not None:
            from ..inference.classify import InferenceMode
            from ..inference.tighten import tighten

            mode = self.mode if self.mode is not None else InferenceMode.EXACT
            try:
                result = tighten(
                    self.dtd, self.query, mode, collapse=False, strict=False
                )
            except QueryAnalysisError:
                result = None
        self.cache["tighten"] = result
        return result


class LintRule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` names the inputs the rule needs: ``"dtd"``, ``"query"``
    (implies a DTD to check against), ``"sdtd"``, or ``"view"`` (an
    :class:`~repro.inference.pipeline.InferenceResult`).
    """

    code: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    scope: str = "dtd"
    anchor: str = ""
    description: str = ""

    def applicable(self, ctx: LintContext) -> bool:
        if self.scope == "dtd":
            return ctx.dtd is not None
        if self.scope == "query":
            return ctx.query is not None and ctx.dtd is not None
        if self.scope == "sdtd":
            return ctx.sdtd is not None
        if self.scope == "view":
            return ctx.inference is not None
        raise ValueError(f"unknown rule scope {self.scope!r}")

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def finding(
        self,
        ctx: LintContext,
        message: str,
        span: Span | None = None,
        severity: Severity | None = None,
        **data: Any,
    ) -> Diagnostic:
        """Build a diagnostic pre-filled from the rule's attributes."""
        return Diagnostic(
            code=self.code,
            severity=severity if severity is not None else self.severity,
            message=message,
            span=span,
            rule=self.name,
            anchor=self.anchor,
            data=data,
            origin=ctx.origin,
        )


#: code -> rule instance, in registration order (dicts preserve it)
_REGISTRY: dict[str, LintRule] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator: instantiate and register a rule.

    The rule's code is claimed in the unified diagnostic-code namespace
    (collisions with exception codes or other rules raise).
    """
    rule = cls()
    if not rule.code or not rule.name:
        raise ValueError(f"rule {cls.__name__} needs a code and a name")
    if rule.code in _REGISTRY:
        raise ValueError(f"lint rule code {rule.code!r} already registered")
    register_diagnostic_code(rule.code, rule.description or rule.name)
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[LintRule]:
    """Every registered rule, in registration order."""
    return list(_REGISTRY.values())


def rules_for_scopes(scopes: Iterable[str]) -> list[LintRule]:
    wanted = set(scopes)
    return [rule for rule in _REGISTRY.values() if rule.scope in wanted]


def rule_by_code(code: str) -> LintRule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"no lint rule with code {code!r}")


def iter_rule_catalog() -> Iterator[tuple[str, str, str, str, str]]:
    """(code, name, severity, scope, anchor) rows for documentation."""
    for rule in _REGISTRY.values():
        yield (
            rule.code,
            rule.name,
            rule.severity.value,
            rule.scope,
            rule.anchor,
        )
