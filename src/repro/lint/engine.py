"""The lint driver: select rules, run them, collect a report.

:func:`run_lint` is the programmatic entry point; the CLI's ``repro
lint``, the mediator pre-flight, and the inference pipeline all go
through it.  Rule selection takes exact codes or prefixes (``MIX``
selects every query rule), mirroring familiar linters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from .diagnostics import DiagnosticReport
from .registry import LintConfig, LintContext, all_rules

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dtd import Dtd, SpecializedDtd
    from ..inference.classify import InferenceMode
    from ..inference.pipeline import InferenceResult
    from ..xmas import Query


def _selected(code: str, patterns: Iterable[str] | None) -> bool:
    if patterns is None:
        return True
    return any(code == p or code.startswith(p) for p in patterns)


def run_lint(
    dtd: "Dtd | None" = None,
    query: "Query | None" = None,
    sdtd: "SpecializedDtd | None" = None,
    inference: "InferenceResult | None" = None,
    *,
    mode: "InferenceMode | None" = None,
    config: LintConfig | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    scopes: Iterable[str] | None = None,
    dtd_text: str | None = None,
    query_text: str | None = None,
    cache: dict[str, Any] | None = None,
    origin: str = "",
) -> DiagnosticReport:
    """Run every applicable registered rule and collect the findings.

    Inputs are all optional; a rule runs when the inputs its scope
    needs are present (query rules additionally need the DTD to check
    against).  ``select``/``ignore`` filter by code or code prefix;
    ``scopes`` restricts to rule scopes (the pre-flight runs only
    ``{"query"}``).  ``cache`` may be a caller-owned dict: shared
    analyses (the Tighten run) land in it, so callers can reuse them
    after the lint pass -- the mediator feeds the cached tightening
    straight into the query simplifier.
    """
    ctx = LintContext(
        dtd=dtd,
        query=query,
        sdtd=sdtd,
        inference=inference,
        mode=mode,
        dtd_text=dtd_text,
        query_text=query_text,
        config=config if config is not None else LintConfig(),
        cache=cache if cache is not None else {},
        origin=origin,
    )
    ignore = list(ignore) if ignore is not None else None
    select = list(select) if select is not None else None
    scope_set = set(scopes) if scopes is not None else None
    report = DiagnosticReport()
    for rule in all_rules():
        if scope_set is not None and rule.scope not in scope_set:
            continue
        if not _selected(rule.code, select):
            continue
        if ignore is not None and _selected(rule.code, ignore):
            continue
        if not rule.applicable(ctx):
            continue
        report.extend(rule.check(ctx))
    return report


def lint_query(
    query: "Query",
    dtd: "Dtd",
    *,
    mode: "InferenceMode | None" = None,
    config: LintConfig | None = None,
    cache: dict[str, Any] | None = None,
    query_text: str | None = None,
    origin: str = "",
) -> DiagnosticReport:
    """Pre-flight form: only query-scope rules, no DTD re-audit.

    This is what the mediator runs before fanning a query out to
    sources -- it must stay cheap (one uncollapsed Tighten run, shared
    via ``cache``).
    """
    return run_lint(
        dtd=dtd,
        query=query,
        mode=mode,
        config=config,
        scopes={"query"},
        cache=cache,
        query_text=query_text,
        origin=origin,
    )


def lint_dtd(
    dtd: "Dtd",
    *,
    config: LintConfig | None = None,
    dtd_text: str | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    origin: str = "",
) -> DiagnosticReport:
    """Audit a DTD alone (no query)."""
    return run_lint(
        dtd=dtd,
        config=config,
        dtd_text=dtd_text,
        select=select,
        ignore=ignore,
        origin=origin,
    )
