"""XMAS query-vs-DTD rules: MIX1xx.

The load-bearing analyses come straight from the inference layer: one
(uncollapsed) run of Algorithm Tighten per query classifies every
condition node as valid / satisfiable / unsatisfiable (Section 4.2's
side effect), and the lint rules turn that into findings -- a
provably-empty query is an *error* (the mediator pre-flight
short-circuits it), an always-true sub-condition is a simplification
hint, recursion and wildcard blowup are scope/cost warnings.
"""

from __future__ import annotations

from typing import Iterable

from ..inference.classify import Classification
from ..xmas.analysis import has_recursive_steps
from ..xmas.ast import Condition, Query
from .diagnostics import Diagnostic, Severity
from .locate import condition_path, query_span
from .registry import LintContext, LintRule, register_rule


def _span_for(ctx: LintContext, root: Condition, node: Condition):
    token = None
    if node.test.names:
        token = node.test.names[0]
    return query_span(ctx.query_text, condition_path(root, node), token)


def query_classification(ctx: LintContext) -> Classification | None:
    """The overall verdict, shared across rules (and the pre-flight).

    Combines the Tighten side effect with the root-anchoring check of
    the query simplifier: a root test that cannot match the document
    type is unsatisfiable even when its names occur deeper in the DTD.
    ``None`` when the query is outside the pick-element class.
    """
    if "classification" in ctx.cache:
        return ctx.cache["classification"]
    result = ctx.tightening()
    verdict: Classification | None = None
    if result is not None:
        verdict = result.classification
        assert ctx.dtd is not None
        if ctx.dtd.root is not None and ctx.dtd.root not in result.root.keys:
            verdict = Classification.UNSATISFIABLE
    ctx.cache["classification"] = verdict
    return verdict


@register_rule
class ClassificationRule(LintRule):
    code = "MIX100"
    name = "classification"
    severity = Severity.INFO
    scope = "query"
    anchor = "Section 4.2 (Tighten's valid/satisfiable/unsatisfiable)"
    description = "reports the Tighten classification of the query"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.query is not None
        verdict = query_classification(ctx)
        if verdict is None:
            return
        yield self.finding(
            ctx,
            f"query {ctx.query.view_name!r} is {verdict.value} against "
            "the source DTD",
            classification=verdict.value,
        )


@register_rule
class DeadPathRule(LintRule):
    code = "MIX101"
    name = "dead-path"
    severity = Severity.ERROR
    scope = "query"
    anchor = "Section 1 / 4.2 (query simplifier: provably empty queries)"
    description = "query is unsatisfiable: no valid document matches"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.query is not None and ctx.dtd is not None
        verdict = query_classification(ctx)
        if verdict is not Classification.UNSATISFIABLE:
            return
        result = ctx.tightening()
        if result is None:  # pragma: no cover - verdict implies a result
            return
        resolved_root = result.query.root if result.query else ctx.query.root
        origins = self._dead_origins(resolved_root, result)
        if origins:
            for node in origins:
                yield self.finding(
                    ctx,
                    f"condition <{node.test}> can never be satisfied by "
                    "an element valid under the source DTD (dead path); "
                    "the answer is provably empty",
                    span=_span_for(ctx, resolved_root, node),
                    classification=verdict.value,
                )
        else:
            # Every node is individually feasible, but the root test
            # cannot match the document type.
            yield self.finding(
                ctx,
                f"root condition <{resolved_root.test}> cannot match the "
                f"document type {ctx.dtd.root!r}; the answer is provably "
                "empty",
                span=_span_for(ctx, resolved_root, resolved_root),
                classification=verdict.value,
            )

    @staticmethod
    def _dead_origins(root: Condition, result) -> list[Condition]:
        """Deepest infeasible nodes: infeasible, all children feasible."""

        def feasible(node: Condition) -> bool:
            typing = result.typings.get(id(node))
            return typing is not None and typing.feasible

        origins = []
        for node in root.iter_nodes():
            if not feasible(node) and all(
                feasible(child) for child in node.children
            ):
                origins.append(node)
        return origins


@register_rule
class RedundantConditionRule(LintRule):
    code = "MIX102"
    name = "redundant-condition"
    severity = Severity.INFO
    scope = "query"
    anchor = "Section 1 (simplifier prunes valid sub-conditions)"
    description = "sub-condition always holds; an existence test suffices"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.query is not None
        result = ctx.tightening()
        if result is None:
            return
        verdict = query_classification(ctx)
        if verdict is Classification.UNSATISFIABLE:
            return  # dead queries get MIX101, not simplification hints
        resolved_root = result.query.root if result.query else ctx.query.root
        for node in resolved_root.iter_nodes():
            if not node.children:
                continue  # bare existence tests are already minimal
            typing = result.typings.get(id(node))
            if typing is None or not typing.classification.is_valid:
                continue
            yield self.finding(
                ctx,
                f"condition <{node.test}> with its {len(node.children)} "
                "child condition(s) holds for every matching element; "
                "a bare existence test is equivalent and cheaper",
                span=_span_for(ctx, resolved_root, node),
                children=len(node.children),
            )


@register_rule
class RecursivePathRule(LintRule):
    code = "MIX103"
    name = "recursive-path-step"
    severity = Severity.WARNING
    scope = "query"
    anchor = "Section 4.4 footnote 9; Example 3.5"
    description = "recursive path steps are outside inference's scope"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.query is not None
        if not has_recursive_steps(ctx.query):
            return
        root = ctx.query.root
        for node in root.iter_nodes():
            if node.recursive:
                yield self.finding(
                    ctx,
                    f"recursive path step <{node.test}*>: view-DTD "
                    "inference and the DTD-based simplifier do not apply "
                    "(evaluation still works)",
                    span=_span_for(ctx, root, node),
                )


@register_rule
class WildcardBlowupRule(LintRule):
    code = "MIX104"
    name = "wildcard-expansion-blowup"
    severity = Severity.WARNING
    scope = "query"
    anchor = "Section 2.1 preprocessing (wildcard -> all-names disjunction)"
    description = "wildcard expansion multiplies the condition tree"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.query is not None and ctx.dtd is not None
        wildcards = [
            node
            for node in ctx.query.root.iter_nodes()
            if node.test.is_wildcard
        ]
        if not wildcards:
            return
        width = len(ctx.dtd.names)
        if width <= ctx.config.wildcard_expansion_limit:
            return
        yield self.finding(
            ctx,
            f"{len(wildcards)} wildcard name test(s) expand to a "
            f"{width}-way disjunction each (DTD declares {width} names); "
            "inference cost grows with the expansion -- consider naming "
            "the intended elements",
            span=_span_for(ctx, ctx.query.root, wildcards[0]),
            wildcard_nodes=len(wildcards),
            dtd_names=width,
        )


@register_rule
class UndeclaredQueryNameRule(LintRule):
    code = "MIX105"
    name = "undeclared-query-name"
    severity = Severity.WARNING
    scope = "query"
    anchor = "Section 2.1 (conditions over the source DTD's names)"
    description = "query mentions element names the DTD does not declare"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.query is not None and ctx.dtd is not None
        root = ctx.query.root
        for node in root.iter_nodes():
            if node.test.names is None:
                continue
            missing = [n for n in node.test.names if n not in ctx.dtd]
            if not missing:
                continue
            all_missing = len(missing) == len(node.test.names)
            yield self.finding(
                ctx,
                f"condition <{node.test}> mentions undeclared element "
                f"name(s) {missing}; "
                + (
                    "the condition can never match"
                    if all_missing
                    else "those disjuncts can never match"
                ),
                span=_span_for(ctx, root, node),
                names=missing,
            )


@register_rule
class PickClassRule(LintRule):
    code = "MIX106"
    name = "outside-pick-element-class"
    severity = Severity.WARNING
    scope = "query"
    anchor = "Section 4.4 (single pick node per query)"
    description = "query is outside the pick-element class"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.query is not None
        picks = ctx.query.pick_nodes()
        if len(picks) == 1:
            return
        yield self.finding(
            ctx,
            f"pick variable {ctx.query.pick_variable!r} is bound at "
            f"{len(picks)} nodes; the DTD-based analyses need exactly "
            "one pick node",
            pick_nodes=len(picks),
        )
