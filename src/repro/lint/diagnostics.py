"""The diagnostics framework: severities, spans, findings, reports.

A :class:`Diagnostic` is one static finding with a stable code from the
unified namespace of :mod:`repro.errors`, a severity, a human message,
an optional source :class:`Span`, and machine-readable extras.  A
:class:`DiagnosticReport` aggregates the findings of one lint run and
renders them as text (CLI default) or JSON (``--format json``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make ``repro lint`` exit nonzero and make the
    mediator pre-flight reject a query; warnings and infos are advice.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Errors first: ERROR=0, WARNING=1, INFO=2."""
        return _SEVERITY_ORDER.index(self)


_SEVERITY_ORDER = [Severity.ERROR, Severity.WARNING, Severity.INFO]


@dataclass(frozen=True)
class Span:
    """Where a finding points.

    ``subject`` is a structural locator that always exists -- an element
    name for DTD findings, a ``/``-joined condition path for query
    findings.  ``line``/``column`` (1-based) are filled in best-effort
    when the lint run was given source text (see
    :mod:`repro.lint.locate`).
    """

    subject: str
    line: int | None = None
    column: int | None = None

    def __str__(self) -> str:
        if self.line is None:
            return self.subject
        if self.column is None:
            return f"{self.subject} (line {self.line})"
        return f"{self.subject} (line {self.line}, column {self.column})"

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"subject": self.subject}
        if self.line is not None:
            data["line"] = self.line
        if self.column is not None:
            data["column"] = self.column
        return data


@dataclass(frozen=True)
class Diagnostic:
    """One static finding."""

    code: str
    severity: Severity
    message: str
    span: Span | None = None
    #: the kebab-case rule name that produced this finding
    rule: str = ""
    #: where in the paper the underlying analysis comes from
    anchor: str = ""
    #: machine-readable extras (classification verdicts, name lists, ...)
    data: dict[str, Any] = field(default_factory=dict)
    #: which workload/input the finding belongs to (multi-input runs)
    origin: str = ""

    def render(self) -> str:
        """The CLI text form: ``error[MIX101] at span: message``."""
        parts = [f"{self.severity.value}[{self.code}]"]
        if self.origin:
            parts.append(f"({self.origin})")
        if self.span is not None:
            parts.append(f"at {self.span}:")
        parts.append(self.message)
        return " ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "rule": self.rule,
        }
        if self.span is not None:
            data["span"] = self.span.to_dict()
        if self.anchor:
            data["anchor"] = self.anchor
        if self.data:
            data["data"] = self.data
        if self.origin:
            data["origin"] = self.origin
        return data


@dataclass
class DiagnosticReport:
    """All findings of one lint run, ordered by severity then code."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self.diagnostics)

    def sorted(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.code, d.origin, d.message),
        )

    def by_code(self, code: str) -> list[Diagnostic]:
        """Findings with the given code."""
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def with_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.with_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.with_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self.with_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        """True exactly when an error-severity finding is present."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """The process exit code ``repro lint`` should use."""
        return 1 if self.has_errors else 0

    def summary(self) -> str:
        """``2 errors, 1 warning, 3 infos`` (omitting zero buckets)."""
        parts = []
        for label, bucket in (
            ("error", self.errors),
            ("warning", self.warnings),
            ("info", self.infos),
        ):
            if bucket:
                plural = "" if len(bucket) == 1 else "s"
                parts.append(f"{len(bucket)} {label}{plural}")
        return ", ".join(parts) if parts else "clean"

    def render(self, show_anchors: bool = True) -> str:
        """The multi-line text report."""
        lines = []
        for diagnostic in self.sorted():
            lines.append(diagnostic.render())
            if show_anchors and diagnostic.anchor:
                lines.append(f"  = paper: {diagnostic.anchor}")
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self, indent: int | None = None) -> str:
        """Machine-readable form for ``repro lint --format json``."""
        payload = {
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
                "exit_code": self.exit_code,
            },
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def merged_with(self, other: "DiagnosticReport") -> "DiagnosticReport":
        """A new report holding both runs' findings."""
        return DiagnosticReport(list(self.diagnostics) + list(other.diagnostics))
