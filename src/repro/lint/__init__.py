"""Static diagnostics for XMAS queries, DTDs, and s-DTDs.

``repro lint`` -- a rule-based static analyzer in the spirit of static
query analysis over XML views: it reuses the inference layer's
classifications (Algorithm Tighten's valid / satisfiable /
unsatisfiable side effect, Section 4.2) and the DTD structural
analyses (reachability, recursion, XML 1.0 determinism,
one-unambiguity) as cheap *pre-flight* checks with stable diagnostic
codes, severities, source spans, and JSON output.

Three integration layers:

* the ``repro lint`` CLI command (:mod:`repro.cli`), nonzero exit
  exactly when an error-severity finding is present;
* the mediator pre-flight (:meth:`repro.mediator.Mediator.preflight`),
  which short-circuits provably-empty queries before any source
  fan-out;
* the inference pipeline
  (:meth:`repro.inference.InferenceResult.diagnostics`), attaching
  findings to every inferred view DTD.

Rule modules register themselves on import; importing this package is
what populates the registry.
"""

from .diagnostics import Diagnostic, DiagnosticReport, Severity, Span
from .engine import lint_dtd, lint_query, run_lint
from .registry import (
    LintConfig,
    LintContext,
    LintRule,
    all_rules,
    iter_rule_catalog,
    register_rule,
    rule_by_code,
    rules_for_scopes,
)

# importing the rule modules populates the registry
from . import rules_dtd as _rules_dtd  # noqa: E402,F401
from . import rules_query as _rules_query  # noqa: E402,F401
from . import rules_sdtd as _rules_sdtd  # noqa: E402,F401
from . import rules_view as _rules_view  # noqa: E402,F401

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "LintConfig",
    "LintContext",
    "LintRule",
    "Severity",
    "Span",
    "all_rules",
    "iter_rule_catalog",
    "lint_dtd",
    "lint_query",
    "register_rule",
    "rule_by_code",
    "rules_for_scopes",
    "run_lint",
]
