"""Best-effort source spans.

The ASTs carry no positions (they are frozen semantic objects shared
by every algorithm), so the lint layer recovers line/column spans from
the *source text* when the caller has it: the CLI passes file contents,
programmatic callers usually do not, and the structural ``subject``
locator is always present either way.
"""

from __future__ import annotations

import re

from .diagnostics import Span


def _line_col(text: str, index: int) -> tuple[int, int]:
    """1-based line/column of a character offset."""
    line = text.count("\n", 0, index) + 1
    last_newline = text.rfind("\n", 0, index)
    column = index - last_newline
    return line, column


def locate_declaration(text: str | None, name: str) -> tuple[int, int] | None:
    """Find the declaration of element ``name`` in DTD source text.

    Understands both standard ``<!ELEMENT name ...`` declarations and
    the paper's ``<name : model>`` notation.
    """
    if not text:
        return None
    escaped = re.escape(name)
    for pattern in (
        rf"<!ELEMENT\s+({escaped})[\s(>]",
        rf"<\s*(?:\(root\)\s*)?({escaped})\s*:",
    ):
        match = re.search(pattern, text)
        if match:
            return _line_col(text, match.start(1))
    return None


def locate_token(text: str | None, token: str) -> tuple[int, int] | None:
    """First word-boundary occurrence of ``token`` in query source text."""
    if not text:
        return None
    match = re.search(rf"(?<![\w]){re.escape(token)}(?![\w])", text)
    if match:
        return _line_col(text, match.start())
    return None


def dtd_span(text: str | None, name: str) -> Span:
    """A span pointing at a DTD declaration."""
    found = locate_declaration(text, name)
    if found is None:
        return Span(name)
    return Span(name, found[0], found[1])


def query_span(text: str | None, subject: str, token: str | None = None) -> Span:
    """A span pointing into a query condition tree.

    ``subject`` is the structural path; ``token`` (usually the node's
    first constant name) drives the textual lookup.
    """
    found = locate_token(text, token) if token else None
    if found is None:
        return Span(subject)
    return Span(subject, found[0], found[1])


def condition_path(root, target) -> str:
    """The ``/``-joined name-test path from the query root to a node.

    Falls back to the target's own name test when the node is not
    under ``root`` (cannot happen for nodes produced by the same
    query).
    """
    trail = _find_trail(root, target)
    if trail is None:  # pragma: no cover - defensive
        return str(target.test)
    return "/".join(str(node.test) for node in trail)


def _find_trail(node, target, trail=()):  # type: ignore[no-untyped-def]
    trail = trail + (node,)
    if node is target:
        return trail
    for child in node.children:
        found = _find_trail(child, target, trail)
        if found is not None:
            return found
    return None
