"""Inferred-view rules: VIEW3xx.

These run when the lint context carries a full
:class:`~repro.inference.pipeline.InferenceResult` -- the pipeline
attaches them to every inferred view DTD via
:meth:`InferenceResult.diagnostics`, surfacing what used to be buried
fields (the empty-view classification, Merge's non-tightness signals).
"""

from __future__ import annotations

from typing import Iterable

from .diagnostics import Diagnostic, Severity, Span
from .registry import LintContext, LintRule, register_rule


@register_rule
class EmptyViewRule(LintRule):
    code = "VIEW301"
    name = "empty-view"
    severity = Severity.WARNING
    scope = "view"
    anchor = "Section 4.2 (UNSATISFIABLE views are provably empty)"
    description = "the registered view is provably empty"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.inference is not None
        if not ctx.inference.is_empty_view:
            return
        yield self.finding(
            ctx,
            f"view {ctx.inference.query.view_name!r} is provably empty: "
            "its condition is unsatisfiable against the source DTD, so "
            "every materialization is the bare view element",
            span=Span(ctx.inference.query.view_name),
        )


@register_rule
class LossyMergeRule(LintRule):
    code = "VIEW302"
    name = "lossy-merge"
    severity = Severity.INFO
    scope = "view"
    anchor = "Example 4.3 (merging inadvertently introduces non-tightness)"
    description = "Merge unioned genuinely different specializations"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.inference is not None
        for name in ctx.inference.merge.lossy_names:
            yield self.finding(
                ctx,
                f"plain view DTD merged genuinely different "
                f"specializations of {name!r}; the plain DTD is looser "
                "than the specialized one -- serve the s-DTD to clients "
                "that understand tags",
                span=Span(name),
            )
