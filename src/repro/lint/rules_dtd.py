"""DTD structure rules: DTD1xx.

These unify the scattered structural analyses of :mod:`repro.dtd`
behind stable diagnostic codes: undeclared references, unreachable
declarations (the Example 3.1 pruning step, as a finding instead of a
silent drop), XML 1.0 determinism (Glushkov), one-unambiguity (BKW --
whether *any* deterministic model exists), and recursion (Section 3.4,
which changes which algorithms apply).
"""

from __future__ import annotations

from typing import Iterable

from ..dtd.analysis import (
    nondeterministic_names,
    reachable_names,
    recursive_names,
)
from ..dtd.dtd import Pcdata
from ..dtd.one_unambiguity import is_one_unambiguous
from .diagnostics import Diagnostic, Severity
from .locate import dtd_span
from .registry import LintContext, LintRule, register_rule


@register_rule
class UndeclaredReferenceRule(LintRule):
    code = "DTD101"
    name = "undeclared-reference"
    severity = Severity.ERROR
    scope = "dtd"
    anchor = "Definition 2.2 (types are regexes over declared names)"
    description = "content model references an undeclared element name"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.dtd is not None
        for name, missing in sorted(ctx.dtd.undeclared_references().items()):
            yield self.finding(
                ctx,
                f"content model of {name!r} references undeclared "
                f"names: {sorted(missing)}",
                span=dtd_span(ctx.dtd_text, name),
                referenced=sorted(missing),
            )


@register_rule
class UnreachableDeclarationRule(LintRule):
    code = "DTD102"
    name = "unreachable-declaration"
    severity = Severity.WARNING
    scope = "dtd"
    anchor = "Example 3.1 (inference eliminates unreferenced names)"
    description = "declaration not reachable from the document type"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.dtd is not None
        if ctx.dtd.root is None:
            return  # no document type: every declaration is a root candidate
        reachable = reachable_names(ctx.dtd)
        for name in sorted(ctx.dtd.names - reachable):
            yield self.finding(
                ctx,
                f"element {name!r} is declared but unreachable from "
                f"document type {ctx.dtd.root!r}",
                span=dtd_span(ctx.dtd_text, name),
                root=ctx.dtd.root,
            )


@register_rule
class NondeterministicModelRule(LintRule):
    code = "DTD103"
    name = "nondeterministic-content-model"
    severity = Severity.WARNING
    scope = "dtd"
    anchor = "XML 1.0 determinism; repairable via repro.dtd.determinize"
    description = "content model is not XML-1.0 deterministic"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.dtd is not None
        offenders = nondeterministic_names(ctx.dtd)
        ctx.cache["nondeterministic"] = offenders
        for name in sorted(offenders):
            yield self.finding(
                ctx,
                f"content model of {name!r} violates XML 1.0 "
                "determinism (Glushkov automaton is nondeterministic)",
                span=dtd_span(ctx.dtd_text, name),
            )


@register_rule
class OneAmbiguousModelRule(LintRule):
    code = "DTD104"
    name = "one-ambiguous-language"
    severity = Severity.WARNING
    scope = "dtd"
    anchor = "Brüggemann-Klein & Wood 1998 (one-unambiguous languages)"
    description = "no deterministic content model exists for this language"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.dtd is not None
        # Only languages already flagged DTD103 can be one-ambiguous;
        # the shared cache avoids re-deciding determinism.
        offenders = ctx.cache.get("nondeterministic")
        if offenders is None:
            offenders = nondeterministic_names(ctx.dtd)
        for name in sorted(offenders):
            content = ctx.dtd.type_of(name)
            if isinstance(content, Pcdata):  # pragma: no cover - DTD103 skips
                continue
            if not is_one_unambiguous(content):
                yield self.finding(
                    ctx,
                    f"the language of {name!r} has *no* deterministic "
                    "content model; xmlize can only approximate it",
                    span=dtd_span(ctx.dtd_text, name),
                )


@register_rule
class RecursiveDtdRule(LintRule):
    code = "DTD105"
    name = "recursive-name"
    severity = Severity.INFO
    scope = "dtd"
    anchor = "Section 3.4 / Example 3.5 (no tightest DTDs under recursion)"
    description = "element name participates in a reference cycle"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.dtd is not None
        names = recursive_names(ctx.dtd)
        if not names:
            return
        listed = ", ".join(sorted(names))
        yield self.finding(
            ctx,
            f"DTD is recursive via {listed}; view-DTD inference rejects "
            "queries whose conditions traverse these cycles",
            span=dtd_span(ctx.dtd_text, sorted(names)[0]),
            names=sorted(names),
        )
