"""Specialized-DTD hygiene rules: SDT2xx.

An s-DTD is the artifact a mediator hands to stacked mediators and to
the DTD-based query interface (Section 3.3), so a malformed one
propagates: undeclared tagged references break consumers outright, and
dangling specialization tags -- declared ``n^i`` that nothing reaches
after Merge/collapse -- mislead clients about which refinements exist.
"""

from __future__ import annotations

from typing import Iterable

from ..dtd.analysis import dangling_specializations
from ..dtd.sdtd import format_tagged
from .diagnostics import Diagnostic, Severity, Span
from .registry import LintContext, LintRule, register_rule


@register_rule
class UndeclaredTaggedReferenceRule(LintRule):
    code = "SDT201"
    name = "undeclared-tagged-reference"
    severity = Severity.ERROR
    scope = "sdtd"
    anchor = "Definition 3.8 (s-DTD content models over declared n^i)"
    description = "s-DTD content model references an undeclared tagged name"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.sdtd is not None
        for key, missing in sorted(ctx.sdtd.undeclared_references().items()):
            rendered = sorted(format_tagged(m) for m in missing)
            yield self.finding(
                ctx,
                f"type of {format_tagged(key)} references undeclared "
                f"tagged names: {rendered}",
                span=Span(format_tagged(key)),
                referenced=rendered,
            )


@register_rule
class DanglingSpecializationRule(LintRule):
    code = "SDT202"
    name = "dangling-specialization"
    severity = Severity.WARNING
    scope = "sdtd"
    anchor = "footnote 8 / Section 4.3 (collapse and Merge drop tags)"
    description = "specialization tag declared but never used"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        assert ctx.sdtd is not None
        for key in sorted(dangling_specializations(ctx.sdtd)):
            yield self.finding(
                ctx,
                f"specialization {format_tagged(key)} is declared but "
                "unused (nothing references it"
                + (
                    " from the root); stale after Merge/collapse?"
                    if ctx.sdtd.root is not None
                    else "); stale after Merge/collapse?"
                ),
                span=Span(format_tagged(key)),
            )
