"""Dataguides (Goldman & Widom, VLDB 1997) -- the related-work baseline.

Section 5 of the paper compares DTDs against dataguides: "they do not
capture constraints on order and cardinality and they do not capture
constraints on the siblings ... however dataguides do not require the
same type name to define the same type, so in this respect dataguides
are similar to s-DTDs."

This subpackage makes those claims measurable (experiment E15):

* :func:`build_dataguide` computes the strong dataguide of a document
  set (for tree-shaped data: the trie of label paths);
* :func:`conforms` checks a document against a dataguide (dataguides
  are *data-derived*: they can reject unseen-but-valid documents,
  unlike a sound view DTD);
* :func:`dataguide_to_sdtd` converts a dataguide into a specialized
  DTD whose content models are ``(child1 | ... | childk)*`` -- the
  order/cardinality-free description a dataguide carries, directly
  comparable to inferred view DTDs by the looseness metrics.
"""

from .guide import (
    DataGuide,
    GuideNode,
    build_dataguide,
    conforms,
    dataguide_to_sdtd,
)

__all__ = [
    "DataGuide",
    "GuideNode",
    "build_dataguide",
    "conforms",
    "dataguide_to_sdtd",
]
