"""Strong dataguides over tree-shaped XML data.

A strong dataguide has exactly one node per distinct *label path*
occurring in the data (for trees, the path trie), each node recording
the child labels seen under that path and whether text content was
seen.  Two properties matter for the paper's comparison:

* a dataguide is **data-derived**: it describes exactly the paths seen
  so far, so it may *reject* a document the source DTD allows
  (overfitting), while a sound view DTD never rejects a real view;
* a dataguide forgets **order, cardinality and sibling constraints**:
  under a path, only the *set* of child labels is known.

:func:`dataguide_to_sdtd` materializes the second point: each guide
node becomes a specialization (the paper's remark that dataguide nodes
are like s-DTD specializations) whose content model is the
order/cardinality-free ``(child1 | ... | childk)*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..dtd import PCDATA, SpecializedDtd, TaggedName
from ..xmlmodel import Document, Element


@dataclass
class GuideNode:
    """One node of a strong dataguide: a distinct label path."""

    label: str
    children: dict[str, "GuideNode"] = field(default_factory=dict)
    #: text content observed at this path
    has_text: bool = False
    #: element (non-text) content observed at this path
    has_elements: bool = False
    #: how many data elements this node summarizes
    count: int = 0

    def child(self, label: str) -> "GuideNode":
        if label not in self.children:
            self.children[label] = GuideNode(label)
        return self.children[label]

    def iter_nodes(self) -> Iterator["GuideNode"]:
        yield self
        for child in self.children.values():
            yield from child.iter_nodes()


@dataclass
class DataGuide:
    """A strong dataguide for a corpus of same-rooted documents."""

    root: GuideNode

    @property
    def n_nodes(self) -> int:
        return sum(1 for _ in self.root.iter_nodes())

    def paths(self) -> list[tuple[str, ...]]:
        """All label paths, root-first, lexicographic."""
        result: list[tuple[str, ...]] = []

        def visit(node: GuideNode, prefix: tuple[str, ...]) -> None:
            path = prefix + (node.label,)
            result.append(path)
            for label in sorted(node.children):
                visit(node.children[label], path)

        visit(self.root, ())
        return result

    def render(self) -> str:
        """Indented path display (what Lore's UI showed)."""
        lines: list[str] = []

        def visit(node: GuideNode, depth: int) -> None:
            marker = " #text" if node.has_text else ""
            lines.append(f"{'  ' * depth}{node.label}{marker} [{node.count}]")
            for label in sorted(node.children):
                visit(node.children[label], depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def _absorb(node: GuideNode, element: Element) -> None:
    node.count += 1
    if element.is_pcdata:
        node.has_text = True
        return
    node.has_elements = True
    for child in element.children:
        _absorb(node.child(child.name), child)


def build_dataguide(documents: Iterable[Document]) -> DataGuide:
    """The strong dataguide of a corpus (all roots must share a name)."""
    documents = list(documents)
    if not documents:
        raise ValueError("cannot build a dataguide from an empty corpus")
    root_name = documents[0].root.name
    root = GuideNode(root_name)
    for document in documents:
        if document.root.name != root_name:
            raise ValueError(
                f"mixed root names: {root_name!r} vs "
                f"{document.root.name!r}"
            )
        _absorb(root, document.root)
    return DataGuide(root)


def conforms(document: Document, guide: DataGuide) -> bool:
    """Does every label path of the document occur in the guide?

    This is the dataguide's notion of validation.  Being data-derived,
    it can reject documents a (sound) schema admits -- the flip side
    of its per-path precision.
    """

    def visit(element: Element, node: GuideNode) -> bool:
        if element.is_pcdata:
            return node.has_text
        if element.children and not node.has_elements:
            return False
        for child in element.children:
            child_node = node.children.get(child.name)
            if child_node is None:
                return False
            if not visit(child, child_node):
                return False
        return True

    if document.root.name != guide.root.label:
        return False
    return visit(document.root, guide.root)


def dataguide_to_sdtd(guide: DataGuide) -> SpecializedDtd:
    """The specialized DTD a dataguide implicitly carries.

    Each guide node becomes a specialization of its label (same-named
    nodes at different paths stay distinct, mirroring the paper's
    remark that dataguides resemble s-DTDs); its content model is
    ``(c1 | ... | ck)*`` over the child specializations -- no order,
    no cardinality, no sibling constraints.  Mixed text/element nodes
    are modeled as element content (text is dropped), matching the
    paper's no-mixed-content assumption.
    """
    from ..regex import Sym, alt, star

    counters: dict[str, int] = {}
    keys: dict[int, TaggedName] = {}

    for node in guide.root.iter_nodes():
        counters[node.label] = counters.get(node.label, 0) + 1
        tag = counters[node.label]
        # Use tag 0 for the first occurrence of a label: most labels
        # occur at one path only, keeping the output readable.
        keys[id(node)] = (node.label, 0 if tag == 1 else tag)

    types: dict[TaggedName, object] = {}
    for node in guide.root.iter_nodes():
        key = keys[id(node)]
        if node.children:
            symbols = [
                Sym(*keys[id(child)])
                for child in node.children.values()
            ]
            types[key] = star(alt(*sorted(symbols, key=lambda s: (s.name, s.tag))))
        elif node.has_text:
            types[key] = PCDATA
        else:
            types[key] = star(alt())  # empty content only

    result = SpecializedDtd(types, keys[id(guide.root)])
    result.check_consistency()
    return result
