"""Parameterized synthetic workloads for the scaling experiments (E13).

Generators for layered "department-like" DTDs of configurable width
and depth, documents of configurable size, and pick-element queries
drawn against a DTD (existence conditions along a random root-to-leaf
path with random side conditions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..dtd import Dtd, DtdShape, Pcdata, dtd as make_dtd, random_dtd
from ..regex import names as regex_names
from ..xmas import Condition, Query, cond, query as make_query


def layered_dtd(depth: int, width: int, leaf_pcdata: bool = True) -> Dtd:
    """A full ``width``-ary layered DTD of the given depth.

    Level-``i`` elements contain one of each level-``i+1`` name plus a
    starred tail, giving content models with stars, pluses, and a
    disjunction -- the operator mix the refinement algorithm exercises.
    """
    declarations: dict[str, str] = {}
    for level in range(depth):
        for index in range(width):
            name = f"e{level}_{index}"
            if level == depth - 1:
                declarations[name] = "#PCDATA" if leaf_pcdata else "()"
                continue
            children = [f"e{level + 1}_{i}" for i in range(width)]
            first, *rest = children
            parts = [f"{first}+"]
            parts.extend(f"{child}*" for child in rest)
            if len(children) > 1:
                parts.append(f"({children[0]} | {children[-1]})?")
            declarations[name] = ", ".join(parts)
    return make_dtd(declarations, root="e0_0")


def path_query(
    dtd: Dtd,
    depth: int,
    rng: random.Random,
    side_conditions: int = 1,
    view_name: str = "view",
) -> Query:
    """A pick-element query descending ``depth`` levels from the root.

    Each step adds up to ``side_conditions`` sibling existence
    conditions on other names its parent can contain; the pick is the
    last step.
    """
    if dtd.root is None:
        raise ValueError("DTD needs a document type")

    def children_of(name: str) -> list[str]:
        content = dtd.type_of(name)
        if isinstance(content, Pcdata):
            return []
        return sorted(regex_names(content) & dtd.names)

    path_names: list[str] = [dtd.root]
    while len(path_names) < depth:
        options = children_of(path_names[-1])
        if not options:
            break
        path_names.append(rng.choice(options))

    node: Condition | None = None
    for level in range(len(path_names) - 1, -1, -1):
        name = path_names[level]
        children: list[Condition] = []
        if node is not None:
            children.append(node)
            siblings = [
                option
                for option in children_of(name)
                if option != path_names[level + 1]
            ]
            rng.shuffle(siblings)
            for sibling in siblings[:side_conditions]:
                children.append(cond(sibling))
        variable = "P" if level == len(path_names) - 1 else None
        node = cond(name, var=variable, children=tuple(children))
    assert node is not None
    return make_query(view_name, "P", node)


@dataclass
class ScalingPoint:
    """One point of a scaling sweep."""

    label: str
    dtd: Dtd
    query: Query


def dtd_size_sweep(widths: list[int], depth: int = 3) -> list[ScalingPoint]:
    """DTDs of growing width (number of names per layer)."""
    rng = random.Random(11)
    points = []
    for width in widths:
        d = layered_dtd(depth, width)
        q = path_query(d, depth - 1, rng, side_conditions=1)
        points.append(ScalingPoint(f"width={width}", d, q))
    return points


def query_depth_sweep(depths: list[int], width: int = 3) -> list[ScalingPoint]:
    """Queries descending deeper into a fixed DTD."""
    rng = random.Random(13)
    max_depth = max(depths) + 1
    d = layered_dtd(max_depth, width)
    points = []
    for depth in depths:
        q = path_query(d, depth, rng, side_conditions=1)
        points.append(ScalingPoint(f"depth={depth}", d, q))
    return points


def random_workload(
    n_dtds: int,
    shape: DtdShape,
    rng: random.Random,
    query_depth: int = 3,
) -> list[ScalingPoint]:
    """Random DTD/query pairs for the soundness property sweeps."""
    points = []
    for index in range(n_dtds):
        d = random_dtd(shape, rng)
        q = path_query(d, query_depth, rng, side_conditions=1)
        points.append(ScalingPoint(f"random-{index}", d, q))
    return points
