"""Every DTD and query appearing in the paper.

The paper's examples reference a department schema (D1/D11), a
professor publication schema (D9), and a recursive section schema
(Example 3.5).  Leaf element types are not spelled out in the paper;
we declare them PCDATA, the natural reading (names, titles, authors,
and the journal/conference markers carry text).

Expected outputs (D2, D3, D4, D10, T6-T8, ``(title, author*)*``) are
provided as parsed artifacts so the experiment harness can compare
inferred results against the paper's by language equivalence.
"""

from __future__ import annotations

from ..dtd import Dtd, SpecializedDtd, dtd, sdtd
from ..regex import Regex, parse_regex
from ..xmas import Query, parse_query

# ---------------------------------------------------------------------------
# Source DTDs
# ---------------------------------------------------------------------------

_LEAVES = {
    "name": "#PCDATA",
    "firstName": "#PCDATA",
    "lastName": "#PCDATA",
    "title": "#PCDATA",
    "author": "#PCDATA",
    "journal": "#PCDATA",
    "conference": "#PCDATA",
    "teaches": "#PCDATA",
    "course": "#PCDATA",
}


def d1() -> Dtd:
    """DTD (D1), Example 3.1: the department schema."""
    return dtd(
        {
            "department": "name, professor+, gradStudent+, course*",
            "professor": "firstName, lastName, publication+, teaches",
            "gradStudent": "firstName, lastName, publication+",
            "publication": "title, author+, (journal | conference)",
            **_LEAVES,
        },
        root="department",
    )


def d9() -> Dtd:
    """DTD (D9), Example 4.1: professors with journal/conference lists."""
    return dtd(
        {
            "professor": "name, (journal | conference)*",
            "name": "#PCDATA",
            "journal": "#PCDATA",
            "conference": "#PCDATA",
        },
        root="professor",
    )


def d11() -> Dtd:
    """DTD (D11), Example 4.4: like D1 but gradStudent has one publication
    and publication has ``author*``."""
    return dtd(
        {
            "department": "name, professor+, gradStudent+, course*",
            "professor": "firstName, lastName, publication+, teaches",
            "gradStudent": "firstName, lastName, publication",
            "publication": "title, author*, (journal | conference)",
            **_LEAVES,
        },
        root="department",
    )


def section_dtd() -> Dtd:
    """The recursive DTD of Example 3.5."""
    return dtd(
        {
            "section": "prolog, section*, conclusion",
            "prolog": "#PCDATA",
            "conclusion": "#PCDATA",
        },
        root="section",
    )


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


def q2() -> Query:
    """(Q2): professors or grad students with >= 2 journal publications."""
    return parse_query(
        """
        withJournals =
          SELECT P
          WHERE <department>
                  <name>CS</name>
                  P:<professor | gradStudent>
                    <publication id=Pub1><journal/></publication>
                    <publication id=Pub2><journal/></publication>
                  </>
                </>
          AND Pub1 != Pub2
        """
    )


def q3() -> Query:
    """(Q3): all journal publications of professors or grad students."""
    return parse_query(
        """
        publist =
          SELECT P
          WHERE <department>
                  <name>CS</name>
                  <professor | gradStudent>
                    P:<publication><journal/></publication>
                  </>
                </>
        """
    )


def q4() -> Query:
    """The recursive query of Example 3.5 (startsAndEnds)."""
    return parse_query(
        """
        startsAndEnds =
          SELECT X
          WHERE <section*>
                  X:<prolog | conclusion/>
                </>
        """
    )


def q6() -> Query:
    """(Q6): professors with at least one journal publication (over D9)."""
    return parse_query(
        """
        answer =
          SELECT X
          WHERE X:<professor><journal/></professor>
        """
    )


def q7() -> Query:
    """(Q7): professors with two different journal publications (over D9)."""
    return parse_query(
        """
        answer =
          SELECT X
          WHERE X:<professor>
                  <journal id=J1/>
                  <journal id=J2/>
                </>
          AND J1 != J2
        """
    )


def q12() -> Query:
    """(Q12): titles and authors of grad-student publications (over D11)."""
    return parse_query(
        """
        papers =
          SELECT P
          WHERE D:<department>
                  G:<gradStudent>
                    X:<publication>
                      P:<title | author/>
                    </>
                  </>
                </>
        """
    )


def q_valid() -> Query:
    """Lint companion (not printed in the paper): a *valid* condition.

    Every department carries a ``name`` child (D1 requires it), so the
    condition holds on every valid document -- the VALID verdict of
    Section 4.2, which the paper exercises only on sub-conditions.
    """
    return parse_query(
        """
        departments =
          SELECT X
          WHERE X:<department>
                  <name/>
                </>
        """
    )


def q_dead() -> Query:
    """Lint companion (not printed in the paper): an *unsatisfiable*
    condition.

    ``name`` is PCDATA under (D9); demanding a ``journal`` child of it
    can never be satisfied, so the query is provably empty -- the
    simplifier benefit of Section 1.
    """
    return parse_query(
        """
        dead =
          SELECT X
          WHERE X:<name>
                  <journal/>
                </>
        """
    )


def lint_workload() -> list[tuple[str, Dtd, Query]]:
    """Labelled (DTD, query) pairs for ``repro lint --workload paper``.

    Covers every Tighten classification: the paper's queries are
    satisfiable, (Q4) is recursive (outside inference scope), and the
    two lint companions exercise the valid and unsatisfiable verdicts.
    """
    return [
        ("q2-over-d1", d1(), q2()),
        ("q3-over-d1", d1(), q3()),
        ("q4-over-section", section_dtd(), q4()),
        ("q6-over-d9", d9(), q6()),
        ("q7-over-d9", d9(), q7()),
        ("q12-over-d11", d11(), q12()),
        ("q-valid-over-d1", d1(), q_valid()),
        ("q-dead-over-d9", d9(), q_dead()),
    ]


# ---------------------------------------------------------------------------
# Expected outputs from the paper
# ---------------------------------------------------------------------------


def d2_expected() -> Dtd:
    """DTD (D2): the paper's tightest plain view DTD for (Q2) over (D1).

    The paper prints ``withJournals : professor+, gradStudent+`` and an
    unrefined ``publication+`` for professors; our pipeline derives the
    sound/tighter ``professor*, gradStudent*`` list and a >=2
    publications constraint -- EXPERIMENTS.md E1 records both.
    """
    return dtd(
        {
            "withJournals": "professor*, gradStudent*",
            "professor": "firstName, lastName, publication, publication, publication*, teaches",
            "gradStudent": "firstName, lastName, publication, publication, publication*",
            "publication": "title, author+, (journal | conference)",
            **{
                k: v
                for k, v in _LEAVES.items()
                if k in (
                    "firstName",
                    "lastName",
                    "title",
                    "author",
                    "journal",
                    "conference",
                    "teaches",
                )
            },
        },
        root="withJournals",
    )


def d2_paper_literal() -> Dtd:
    """DTD (D2) exactly as printed in the paper (unsound list type)."""
    return dtd(
        {
            "withJournals": "professor+, gradStudent+",
            "professor": "firstName, lastName, publication+, teaches",
            "gradStudent": "firstName, lastName, publication+",
            "publication": "title, author+, (journal | conference)",
            **{
                k: v
                for k, v in _LEAVES.items()
                if k in (
                    "firstName",
                    "lastName",
                    "title",
                    "author",
                    "journal",
                    "conference",
                    "teaches",
                )
            },
        },
        root="withJournals",
    )


def d3_expected() -> Dtd:
    """DTD (D3): Example 3.2's view DTD for (Q3) -- disjunction removed."""
    return dtd(
        {
            "publist": "publication*",
            "publication": "title, author+, journal",
            "title": "#PCDATA",
            "author": "#PCDATA",
            "journal": "#PCDATA",
        },
        root="publist",
    )


def d4_expected() -> SpecializedDtd:
    """DTD (D4): Example 3.4's structurally tight specialized DTD."""
    return sdtd(
        {
            "withJournals": "professor^1*, gradStudent^1*",
            "professor^1": (
                "firstName, lastName, publication*, publication^1, "
                "publication*, publication^1, publication*, teaches"
            ),
            "gradStudent^1": (
                "firstName, lastName, publication*, publication^1, "
                "publication*, publication^1, publication*"
            ),
            "publication": "title, author+, (journal | conference)",
            "publication^1": "title, author+, journal",
            "firstName": "#PCDATA",
            "lastName": "#PCDATA",
            "title": "#PCDATA",
            "author": "#PCDATA",
            "journal": "#PCDATA",
            "conference": "#PCDATA",
            "teaches": "#PCDATA",
        },
        root="withJournals",
    )


def q6_refined_expected() -> Regex:
    """Example 4.1's result: ``name, (journal|conference)*, journal,
    (journal|conference)*``."""
    return parse_regex("name, (journal | conference)*, journal, (journal | conference)*")


def q12_list_type_paper() -> Regex:
    """Example 4.4's final answer: ``(title, author*)*``."""
    return parse_regex("(title, author*)*")


def q12_list_type_exact() -> Regex:
    """The tighter list type our EXACT mode proves: ``(title, author*)+``."""
    return parse_regex("(title, author*)+")


def t_chain(k: int) -> Regex:
    """A strictly-tightening chain of sound ``startsAndEnds`` types
    (Example 3.5's T6 ≺ T7 ≺ T8 ≺ ...).

    The picks of (Q4) over the section DTD form the bracket sequence
    of the section tree (prolog = open, conclusion = close), which is
    not regular; sound regular types can only bound the nesting depth
    they track.  ``t_chain(k)`` is exact down to depth ``k`` and
    unconstrained below::

        T(0) = prolog, (prolog | conclusion)*,            conclusion
        T(1) = prolog, (prolog, (prolog|conclusion)*, conclusion)*, conclusion
        ...

    Every ``t_chain(k)`` contains all producible pick sequences, and
    ``t_chain(k+1)`` is strictly tighter than ``t_chain(k)`` -- the
    no-tightest-DTD phenomenon, verified in experiment E4.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    inner = "(prolog | conclusion)*"
    for _ in range(k):
        inner = f"(prolog, {inner}, conclusion)*"
    return parse_regex(f"prolog, {inner}, conclusion")
