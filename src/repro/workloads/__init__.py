"""Workloads: the paper's examples and synthetic generators."""

from . import bibdb, paper
from .synthetic import (
    ScalingPoint,
    dtd_size_sweep,
    layered_dtd,
    path_query,
    query_depth_sweep,
    random_workload,
)

__all__ = [
    "ScalingPoint",
    "bibdb",
    "dtd_size_sweep",
    "layered_dtd",
    "paper",
    "path_query",
    "query_depth_sweep",
    "random_workload",
]
