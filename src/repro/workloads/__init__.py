"""Workloads: the paper's examples, synthetic generators, fault drills."""

from . import bibdb, flaky, paper
from .synthetic import (
    ScalingPoint,
    dtd_size_sweep,
    layered_dtd,
    path_query,
    query_depth_sweep,
    random_workload,
)

__all__ = [
    "ScalingPoint",
    "bibdb",
    "dtd_size_sweep",
    "flaky",
    "layered_dtd",
    "paper",
    "path_query",
    "query_depth_sweep",
    "random_workload",
]
