"""A realistic DBLP-style bibliography workload.

The paper's department schema is small; real mediation targets of the
era (DBLP, SIGMOD Record, publisher sites) are wider and deeper.  This
workload provides a 32-name bibliography schema with the structural
variety the algorithms must handle -- optional blocks, nested
repetition, disjunctions at several levels -- plus a family of
realistic view definitions and a corpus generator.  Used by the
scaling benchmarks and available for examples.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..dtd import Dtd, dtd, generate_document
from ..xmas import Query, parse_query
from ..xmlmodel import Document

if TYPE_CHECKING:
    from ..mediator import (
        Clock,
        FanoutPolicy,
        MatViewCache,
        MatViewPolicy,
        Mediator,
        TransportPolicy,
    )


def bibdb_dtd() -> Dtd:
    """A DBLP-like bibliography schema (32 element names)."""
    return dtd(
        {
            "bibdb": "meta, venue+, personIndex?",
            "meta": "dbName, release, curator*",
            "venue": "venueName, (journalInfo | conferenceInfo), volume+",
            "journalInfo": "publisher, issn?",
            "conferenceInfo": "location, series?",
            "volume": "volLabel, issue+",
            "issue": "issueLabel?, article+",
            "article": (
                "title, author+, pages?, abstract?, "
                "(doi | url)?, citation*"
            ),
            "citation": "refTitle, refAuthor*",
            "personIndex": "person*",
            "person": "fullName, affiliation?, alias*",
            # leaves
            "dbName": "#PCDATA",
            "release": "#PCDATA",
            "curator": "#PCDATA",
            "venueName": "#PCDATA",
            "publisher": "#PCDATA",
            "issn": "#PCDATA",
            "location": "#PCDATA",
            "series": "#PCDATA",
            "volLabel": "#PCDATA",
            "issueLabel": "#PCDATA",
            "title": "#PCDATA",
            "author": "#PCDATA",
            "pages": "#PCDATA",
            "abstract": "#PCDATA",
            "doi": "#PCDATA",
            "url": "#PCDATA",
            "refTitle": "#PCDATA",
            "refAuthor": "#PCDATA",
            "fullName": "#PCDATA",
            "affiliation": "#PCDATA",
            "alias": "#PCDATA",
        },
        root="bibdb",
    )


def journal_articles_view() -> Query:
    """Articles published in journal venues, with a DOI."""
    return parse_query(
        """
        journalArticles =
          SELECT A
          WHERE <bibdb>
                  <venue>
                    <journalInfo/>
                    <volume>
                      <issue>
                        A:<article><doi/></article>
                      </>
                    </>
                  </>
                </>
        """
    )


def cited_articles_view() -> Query:
    """Articles that cite at least two other works."""
    return parse_query(
        """
        wellCited =
          SELECT A
          WHERE <bibdb>
                  <venue>
                    <volume>
                      <issue>
                        A:<article>
                          <citation id=C1/>
                          <citation id=C2/>
                        </>
                      </>
                    </>
                  </>
                </>
          AND C1 != C2
        """
    )


def people_view() -> Query:
    """Indexed people with an affiliation."""
    return parse_query(
        """
        affiliated =
          SELECT P
          WHERE <bibdb>
                  <personIndex>
                    P:<person><affiliation/></person>
                  </>
                </>
        """
    )


def all_views() -> list[Query]:
    """The workload's view suite."""
    return [journal_articles_view(), cited_articles_view(), people_view()]


def lint_workload() -> list[tuple[str, Dtd, Query]]:
    """Labelled (DTD, query) pairs for ``repro lint --workload bibdb``."""
    schema = bibdb_dtd()
    return [(query.view_name, schema, query) for query in all_views()]


def branch_journal_query(
    source_name: str, view_name: str = "journalArticles"
) -> Query:
    """One union branch of :func:`union_federation`: DOI'd journal
    articles of one bibliography site."""
    return parse_query(
        f"""
        {view_name} =
          SELECT A
          WHERE <bibdb>
                  <venue>
                    <journalInfo/>
                    <volume>
                      <issue>
                        A:<article><doi/></article>
                      </>
                    </>
                  </>
                </>
        """,
        source=source_name,
    )


def union_federation(
    n_sources: int = 4,
    n_docs: int = 8,
    seed: int = 7,
    star_mean: float = 1.4,
    view_name: str = "journalArticles",
    clock: "Clock | None" = None,
    policy: "TransportPolicy | None" = None,
    fanout: "FanoutPolicy | None" = None,
    cache: "MatViewPolicy | MatViewCache | None" = None,
) -> "Mediator":
    """A healthy union federation of bibliography sites.

    Every site exports an independent :func:`corpus` under the shared
    :func:`bibdb_dtd`; the ``view_name`` union view picks each site's
    DOI'd journal articles.  The selective pick (most articles lack a
    DOI) makes this the matview benchmark workload: answers are much
    smaller than the corpus, so cache hits and delta splices are cheap
    next to a full re-evaluation.
    """
    from ..mediator import Mediator, Source

    mediator = Mediator(
        "bibdb-federation",
        policy=policy,
        clock=clock,
        fanout=fanout,
        cache=cache,
    )
    schema = bibdb_dtd()
    queries = []
    for i in range(n_sources):
        name = f"bib{i}"
        rng = random.Random(seed + i)
        documents = corpus(n_docs, rng, star_mean=star_mean)
        mediator.add_source(
            Source(name, schema, documents, validate=False)
        )
        queries.append(branch_journal_query(name, view_name))
    mediator.register_union_view(queries, view_name)
    return mediator


def corpus(
    n_documents: int,
    rng: random.Random,
    star_mean: float = 1.4,
) -> list[Document]:
    """A random bibliography corpus valid under :func:`bibdb_dtd`."""
    schema = bibdb_dtd()
    return [
        generate_document(
            schema,
            rng,
            star_mean=star_mean,
            string_pool=(
                "TODS", "TKDE", "VLDB J.", "ICDE", "SIGMOD",
                "Papakonstantinou", "Velikhov", "Widom", "Abiteboul",
                "10.1109/x", "1999", "San Diego",
            ),
        )
        for _ in range(n_documents)
    ]
