"""A realistic DBLP-style bibliography workload.

The paper's department schema is small; real mediation targets of the
era (DBLP, SIGMOD Record, publisher sites) are wider and deeper.  This
workload provides a 32-name bibliography schema with the structural
variety the algorithms must handle -- optional blocks, nested
repetition, disjunctions at several levels -- plus a family of
realistic view definitions and a corpus generator.  Used by the
scaling benchmarks and available for examples.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..dtd import Dtd, dtd, generate_document
from ..xmas import Query, parse_query
from ..xmlmodel import Document

if TYPE_CHECKING:
    from ..mediator import (
        Clock,
        FanoutPolicy,
        MatViewCache,
        MatViewPolicy,
        Mediator,
        ShardPolicy,
        ShardedSource,
        TransportPolicy,
    )


def bibdb_dtd() -> Dtd:
    """A DBLP-like bibliography schema (32 element names)."""
    return dtd(
        {
            "bibdb": "meta, venue+, personIndex?",
            "meta": "dbName, release, curator*",
            "venue": "venueName, (journalInfo | conferenceInfo), volume+",
            "journalInfo": "publisher, issn?",
            "conferenceInfo": "location, series?",
            "volume": "volLabel, issue+",
            "issue": "issueLabel?, article+",
            "article": (
                "title, author+, pages?, abstract?, "
                "(doi | url)?, citation*"
            ),
            "citation": "refTitle, refAuthor*",
            "personIndex": "person*",
            "person": "fullName, affiliation?, alias*",
            # leaves
            "dbName": "#PCDATA",
            "release": "#PCDATA",
            "curator": "#PCDATA",
            "venueName": "#PCDATA",
            "publisher": "#PCDATA",
            "issn": "#PCDATA",
            "location": "#PCDATA",
            "series": "#PCDATA",
            "volLabel": "#PCDATA",
            "issueLabel": "#PCDATA",
            "title": "#PCDATA",
            "author": "#PCDATA",
            "pages": "#PCDATA",
            "abstract": "#PCDATA",
            "doi": "#PCDATA",
            "url": "#PCDATA",
            "refTitle": "#PCDATA",
            "refAuthor": "#PCDATA",
            "fullName": "#PCDATA",
            "affiliation": "#PCDATA",
            "alias": "#PCDATA",
        },
        root="bibdb",
    )


def _fragment_venue_dtd(venue_model: str, drop: frozenset[str]) -> Dtd:
    """The bibdb schema with a restricted ``venue`` model (fragment DTD)."""
    models = {
        "bibdb": "meta, venue+, personIndex?",
        "meta": "dbName, release, curator*",
        "venue": venue_model,
        "journalInfo": "publisher, issn?",
        "conferenceInfo": "location, series?",
        "volume": "volLabel, issue+",
        "issue": "issueLabel?, article+",
        "article": (
            "title, author+, pages?, abstract?, (doi | url)?, citation*"
        ),
        "citation": "refTitle, refAuthor*",
        "personIndex": "person*",
        "person": "fullName, affiliation?, alias*",
        **{
            leaf: "#PCDATA"
            for leaf in (
                "dbName", "release", "curator", "venueName",
                "publisher", "issn", "location", "series", "volLabel",
                "issueLabel", "title", "author", "pages", "abstract",
                "doi", "url", "refTitle", "refAuthor", "fullName",
                "affiliation", "alias",
            )
        },
    }
    return dtd(
        {
            name: model
            for name, model in models.items()
            if name not in drop
        },
        root="bibdb",
    )


def journal_fragment_dtd() -> Dtd:
    """The fragment DTD of a journal-only bibliography shard.

    A proper specialization of :func:`bibdb_dtd`: ``venue`` loses the
    ``conferenceInfo`` alternative (and the conference leaves are not
    declared at all), so queries touching conference structure are
    statically prunable against shards typed by this DTD.
    """
    return _fragment_venue_dtd(
        "venueName, journalInfo, volume+",
        drop=frozenset(("conferenceInfo", "location", "series")),
    )


def conference_fragment_dtd() -> Dtd:
    """The fragment DTD of a conference-only bibliography shard.

    The mirror image of :func:`journal_fragment_dtd`: ``journalInfo``
    (and its leaves) are undeclared, so the DOI'd-journal-articles
    views prune these shards without a single call.
    """
    return _fragment_venue_dtd(
        "venueName, conferenceInfo, volume+",
        drop=frozenset(("journalInfo", "publisher", "issn")),
    )


def journal_articles_view() -> Query:
    """Articles published in journal venues, with a DOI."""
    return parse_query(
        """
        journalArticles =
          SELECT A
          WHERE <bibdb>
                  <venue>
                    <journalInfo/>
                    <volume>
                      <issue>
                        A:<article><doi/></article>
                      </>
                    </>
                  </>
                </>
        """
    )


def cited_articles_view() -> Query:
    """Articles that cite at least two other works."""
    return parse_query(
        """
        wellCited =
          SELECT A
          WHERE <bibdb>
                  <venue>
                    <volume>
                      <issue>
                        A:<article>
                          <citation id=C1/>
                          <citation id=C2/>
                        </>
                      </>
                    </>
                  </>
                </>
          AND C1 != C2
        """
    )


def people_view() -> Query:
    """Indexed people with an affiliation."""
    return parse_query(
        """
        affiliated =
          SELECT P
          WHERE <bibdb>
                  <personIndex>
                    P:<person><affiliation/></person>
                  </>
                </>
        """
    )


def all_views() -> list[Query]:
    """The workload's view suite."""
    return [journal_articles_view(), cited_articles_view(), people_view()]


def lint_workload() -> list[tuple[str, Dtd, Query]]:
    """Labelled (DTD, query) pairs for ``repro lint --workload bibdb``."""
    schema = bibdb_dtd()
    return [(query.view_name, schema, query) for query in all_views()]


def branch_journal_query(
    source_name: str, view_name: str = "journalArticles"
) -> Query:
    """One union branch of :func:`union_federation`: DOI'd journal
    articles of one bibliography site."""
    return parse_query(
        f"""
        {view_name} =
          SELECT A
          WHERE <bibdb>
                  <venue>
                    <journalInfo/>
                    <volume>
                      <issue>
                        A:<article><doi/></article>
                      </>
                    </>
                  </>
                </>
        """,
        source=source_name,
    )


def union_federation(
    n_sources: int = 4,
    n_docs: int = 8,
    seed: int = 7,
    star_mean: float = 1.4,
    view_name: str = "journalArticles",
    clock: "Clock | None" = None,
    policy: "TransportPolicy | None" = None,
    fanout: "FanoutPolicy | None" = None,
    cache: "MatViewPolicy | MatViewCache | None" = None,
) -> "Mediator":
    """A healthy union federation of bibliography sites.

    Every site exports an independent :func:`corpus` under the shared
    :func:`bibdb_dtd`; the ``view_name`` union view picks each site's
    DOI'd journal articles.  The selective pick (most articles lack a
    DOI) makes this the matview benchmark workload: answers are much
    smaller than the corpus, so cache hits and delta splices are cheap
    next to a full re-evaluation.
    """
    from ..mediator import Mediator, Source

    mediator = Mediator(
        "bibdb-federation",
        policy=policy,
        clock=clock,
        fanout=fanout,
        cache=cache,
    )
    schema = bibdb_dtd()
    queries = []
    for i in range(n_sources):
        name = f"bib{i}"
        rng = random.Random(seed + i)
        documents = corpus(n_docs, rng, star_mean=star_mean)
        mediator.add_source(
            Source(name, schema, documents, validate=False)
        )
        queries.append(branch_journal_query(name, view_name))
    mediator.register_union_view(queries, view_name)
    return mediator


def sharded_source(
    name: str,
    n_docs: int = 16,
    n_shards: int = 4,
    seed: int = 7,
    journal_fraction: float = 0.125,
    star_mean: float = 1.4,
    clock: "Clock | None" = None,
    policy: "ShardPolicy | None" = None,
    transport_policy: "TransportPolicy | None" = None,
    fanout: "FanoutPolicy | None" = None,
) -> "ShardedSource":
    """A content-aware sharding of one bibliography site.

    The corpus mixes ``journal_fraction`` journal-only documents
    (generated under :func:`journal_fragment_dtd`) with conference-only
    documents (:func:`conference_fragment_dtd`), journal documents
    first, and partitions it contiguously into ``n_shards`` fragments.
    A shard holding only journal (or only conference) documents is
    typed by the matching fragment DTD; a mixed shard falls back to
    the full logical DTD.  As the shard count grows the journal
    documents concentrate into fewer, purer shards — exactly the
    regime where the DOI'd-journal-articles views prune the conference
    shards statically (``benchmarks/bench_sharding.py`` runs this as
    the 1→64 ladder).
    """
    from ..mediator import ShardedSource, Source, partition_documents

    schema = bibdb_dtd()
    journal_dtd = journal_fragment_dtd()
    conference_dtd = conference_fragment_dtd()
    rng = random.Random(seed)
    n_journal = max(1, round(n_docs * journal_fraction))
    documents = [
        _fragment_document(journal_dtd, rng, star_mean)
        for _ in range(n_journal)
    ] + [
        _fragment_document(conference_dtd, rng, star_mean)
        for _ in range(n_docs - n_journal)
    ]
    kinds = ["journal"] * n_journal + ["conference"] * (n_docs - n_journal)
    shards = []
    for index, (chunk, chunk_kinds) in enumerate(
        zip(
            partition_documents(documents, n_shards),
            partition_documents(kinds, n_shards),
        )
    ):
        kind_set = set(chunk_kinds)
        if kind_set == {"journal"}:
            fragment_dtd = journal_dtd
        elif kind_set == {"conference"}:
            fragment_dtd = conference_dtd
        else:
            fragment_dtd = schema
        shards.append(
            Source(
                f"{name}/s{index}", fragment_dtd, chunk, validate=False
            )
        )
    return ShardedSource(
        name,
        schema,
        shards,
        policy=policy,
        transport_policy=transport_policy,
        clock=clock,
        fanout=fanout,
        validate=False,
    )


def _fragment_document(
    fragment_dtd: Dtd, rng: random.Random, star_mean: float
) -> Document:
    """One corpus document valid under a venue-kind fragment DTD."""
    return generate_document(
        fragment_dtd,
        rng,
        star_mean=star_mean,
        string_pool=(
            "TODS", "TKDE", "VLDB J.", "ICDE", "SIGMOD",
            "Papakonstantinou", "Velikhov", "Widom", "Abiteboul",
            "10.1109/x", "1999", "San Diego",
        ),
    )


def sharded_federation(
    n_sources: int = 2,
    n_shards: int = 4,
    n_docs: int = 16,
    seed: int = 7,
    journal_fraction: float = 0.125,
    star_mean: float = 1.4,
    view_name: str = "journalArticles",
    clock: "Clock | None" = None,
    policy: "TransportPolicy | None" = None,
    fanout: "FanoutPolicy | None" = None,
    cache: "MatViewPolicy | MatViewCache | None" = None,
    shard_policy: "ShardPolicy | None" = None,
) -> "Mediator":
    """The :func:`union_federation` over sharded bibliography sites.

    Every site is a :func:`sharded_source` with ``n_shards`` fragments;
    the union view and its branch queries are identical to the
    unsharded federation, so the serving front end (``repro serve
    --shards N``) and the benchmarks compare like for like.
    """
    from ..mediator import Mediator

    mediator = Mediator(
        "bibdb-federation",
        policy=policy,
        clock=clock,
        fanout=fanout,
        cache=cache,
    )
    queries = []
    for i in range(n_sources):
        name = f"bib{i}"
        mediator.add_source(
            sharded_source(
                name,
                n_docs=n_docs,
                n_shards=n_shards,
                seed=seed + i,
                journal_fraction=journal_fraction,
                star_mean=star_mean,
                clock=clock,
                policy=shard_policy,
                fanout=fanout,
            )
        )
        queries.append(branch_journal_query(name, view_name))
    mediator.register_union_view(queries, view_name)
    return mediator


def corpus(
    n_documents: int,
    rng: random.Random,
    star_mean: float = 1.4,
) -> list[Document]:
    """A random bibliography corpus valid under :func:`bibdb_dtd`."""
    schema = bibdb_dtd()
    return [
        generate_document(
            schema,
            rng,
            star_mean=star_mean,
            string_pool=(
                "TODS", "TKDE", "VLDB J.", "ICDE", "SIGMOD",
                "Papakonstantinou", "Velikhov", "Widom", "Abiteboul",
                "10.1109/x", "1999", "San Diego",
            ),
        )
        for _ in range(n_documents)
    ]
