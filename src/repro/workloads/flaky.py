"""The flaky-federation workload: multi-source fan-out under faults.

A parameterized federation of bibliography sites (the "100 sites" of
the paper's Section 1) used by the resilience tests, the
``benchmarks/bench_faults.py`` ladder, and
``examples/flaky_federation.py``: every site exports the same schema,
each through its own wrapper, and wrappers misbehave on seeded
:class:`~repro.mediator.faults.FaultPlan` schedules.

The site schema is chosen so each union branch's contribution to the
view list type is *starred* (a site may have zero qualifying
publications), which is exactly the condition under which a degraded
answer — a branch skipped entirely — still validates against the
inferred union view DTD (docs/RELIABILITY.md).
"""

from __future__ import annotations

import random

from ..dtd import Dtd, dtd, generate_document
from ..mediator import (
    Clock,
    FanoutPolicy,
    FaultPlan,
    FaultySource,
    MatViewCache,
    MatViewPolicy,
    Mediator,
    TransportPolicy,
)
from ..xmas import Query, parse_query
from ..xmlmodel import Document


def site_schema() -> Dtd:
    """The schema every federation site exports."""
    return dtd(
        {
            "site": "name, entry*",
            "entry": "publication*",
            "publication": "title, author+, journal?",
            "name": "#PCDATA",
            "title": "#PCDATA",
            "author": "#PCDATA",
            "journal": "#PCDATA",
        },
        root="site",
    )


def branch_query(source_name: str, view_name: str = "journals") -> Query:
    """One union branch: pick the journal publications of one site."""
    return parse_query(
        f"""
        {view_name} = SELECT P
        WHERE <site> <entry>
                P:<publication><journal/></publication>
              </> </>
        """,
        source=source_name,
    )


def federation_branches(
    n_sources: int = 3,
    n_docs: int = 2,
    seed: int = 7,
    star_mean: float = 2.0,
) -> list[tuple[str, Dtd, list[Document], Query]]:
    """``(source_name, dtd, documents, branch_query)`` per site."""
    rng = random.Random(seed)
    schema = site_schema()
    branches = []
    for i in range(n_sources):
        name = f"site{i}"
        documents = [
            generate_document(schema, rng, star_mean=star_mean)
            for _ in range(n_docs)
        ]
        branches.append((name, schema, documents, branch_query(name)))
    return branches


def standard_fault_plans(
    n_sources: int = 3, error_rate: float = 0.3, seed: int = 42
) -> dict[str, FaultPlan]:
    """The acceptance scenario's plans: flaky middle, dead last site.

    ``site0`` is healthy; every middle site errors at ``error_rate``
    (seeded, so retried calls deterministically succeed eventually);
    the last site is permanently dead and will trip its breaker.
    """
    plans: dict[str, FaultPlan] = {"site0": FaultPlan()}
    for i in range(1, n_sources - 1):
        plans[f"site{i}"] = FaultPlan(error_rate=error_rate, seed=seed + i)
    if n_sources > 1:
        plans[f"site{n_sources - 1}"] = FaultPlan(dead=True)
    return plans


def build_flaky_federation(
    clock: Clock,
    policy: TransportPolicy | None = None,
    n_sources: int = 3,
    n_docs: int = 2,
    plans: dict[str, FaultPlan] | None = None,
    view_name: str = "journals",
    seed: int = 7,
    fanout: FanoutPolicy | None = None,
    cache: MatViewPolicy | MatViewCache | None = None,
) -> Mediator:
    """A ready-to-query federation of :class:`FaultySource` sites.

    Registers the ``view_name`` union view over ``n_sources`` sites
    whose wrappers follow ``plans`` (default:
    :func:`standard_fault_plans`).  Deterministic for fixed seeds and
    a :class:`~repro.mediator.FakeClock` — including with a
    ``fanout`` policy, which fans the union legs out on the parallel
    transport (virtual-time scheduled under the fake clock).
    """
    if plans is None:
        plans = standard_fault_plans(n_sources)
    mediator = Mediator(
        "federation", policy=policy, clock=clock, fanout=fanout, cache=cache
    )
    queries = []
    for name, schema, documents, query in federation_branches(
        n_sources, n_docs, seed=seed
    ):
        mediator.add_source(
            FaultySource(
                name,
                schema,
                documents,
                plan=plans.get(name, FaultPlan()),
                clock=clock,
                validate=False,
            )
        )
        queries.append(query)
    mediator.register_union_view(queries, view_name)
    return mediator
