"""Structural analysis of DTDs.

Reachability and pruning (the view inference algorithm "eliminates all
type definitions that correspond to names that are not referenced,
directly or indirectly" -- Example 3.1), recursion detection (recursive
DTDs change which algorithms apply, Section 3.4), and the XML 1.0
deterministic-content-model check.
"""

from __future__ import annotations

from ..regex.nfa import build_nfa
from .dtd import Dtd, Pcdata
from .sdtd import SpecializedDtd, TaggedName


def reachable_names(dtd: Dtd, start: str | None = None) -> frozenset[str]:
    """Names reachable from ``start`` (default: the document type).

    Reachability follows content-model references and, additionally,
    *attribute* references: when a reachable element declares an
    IDREF/IDREFS attribute (Appendix A), every element declaring an ID
    attribute is a potential target -- the DTD does not type IDREF
    targets, so pruning such a name would drop a declaration the
    attribute layer can still point at.
    """
    root = start if start is not None else dtd.root
    if root is None:
        return dtd.names
    if root not in dtd:
        return frozenset()
    id_targets = _id_declaring_names(dtd)
    seen: set[str] = {root}
    frontier = [root]
    while frontier:
        name = frontier.pop()
        referenced = set(dtd.referenced_names(name))
        if _declares_idref(dtd, name):
            referenced |= id_targets
        for target in referenced:
            if target in dtd and target not in seen:
                seen.add(target)
                frontier.append(target)
    return frozenset(seen)


def _id_declaring_names(dtd: Dtd) -> set[str]:
    """Element names whose ATTLIST declares an ID attribute."""
    targets: set[str] = set()
    for name, declarations in dtd.attributes.items():
        for decl in declarations.values():
            kind = getattr(decl, "kind", None)
            if kind is not None and kind.value == "ID":
                targets.add(name)
    return targets


def _declares_idref(dtd: Dtd, name: str) -> bool:
    """Does ``name``'s ATTLIST declare an IDREF or IDREFS attribute?"""
    for decl in dtd.attributes.get(name, {}).values():
        kind = getattr(decl, "kind", None)
        if kind is not None and kind.value in ("IDREF", "IDREFS"):
            return True
    return False


def prune_unreachable(dtd: Dtd, start: str | None = None) -> Dtd:
    """Drop declarations not reachable from the root (Example 3.1 step).

    Attribute declarations of surviving names are carried over (they
    never affect content models, but dropping them silently would lose
    the Appendix A layer).
    """
    keep = reachable_names(dtd, start)
    return Dtd(
        {name: content for name, content in dtd.types.items() if name in keep},
        dtd.root if dtd.root in keep else None,
        {
            name: declarations
            for name, declarations in dtd.attributes.items()
            if name in keep
        },
    )


def reachable_keys(
    sdtd: SpecializedDtd, start: TaggedName | None = None
) -> frozenset[TaggedName]:
    """Tagged names reachable from ``start`` (default: the root)."""
    root = start if start is not None else sdtd.root
    if root is None:
        return sdtd.tagged_names
    if root not in sdtd:
        return frozenset()
    seen: set[TaggedName] = {root}
    frontier = [root]
    while frontier:
        key = frontier.pop()
        for referenced in sdtd.referenced_keys(key):
            if referenced in sdtd and referenced not in seen:
                seen.add(referenced)
                frontier.append(referenced)
    return frozenset(seen)


def prune_unreachable_sdtd(
    sdtd: SpecializedDtd, start: TaggedName | None = None
) -> SpecializedDtd:
    """Drop tagged declarations not reachable from the root."""
    keep = reachable_keys(sdtd, start)
    return SpecializedDtd(
        {key: content for key, content in sdtd.types.items() if key in keep},
        sdtd.root if sdtd.root in keep else None,
    )


def dependency_edges(dtd: Dtd) -> dict[str, frozenset[str]]:
    """The name-reference graph: ``n -> names in type(n)``."""
    return {
        name: dtd.referenced_names(name) & dtd.names for name in dtd.types
    }


def recursive_names(dtd: Dtd) -> frozenset[str]:
    """Names on a reference cycle (e.g. ``section`` of Example 3.5)."""
    edges = dependency_edges(dtd)
    # Tarjan-free approach: a name is recursive iff it can reach itself.
    result: set[str] = set()
    for origin in edges:
        seen: set[str] = set()
        frontier = list(edges[origin])
        while frontier:
            name = frontier.pop()
            if name == origin:
                result.add(origin)
                break
            if name in seen or name not in edges:
                continue
            seen.add(name)
            frontier.extend(edges[name])
    return frozenset(result)


def is_recursive(dtd: Dtd) -> bool:
    """True when the DTD has any reference cycle."""
    return bool(recursive_names(dtd))


def max_document_depth(dtd: Dtd) -> int | None:
    """The maximum element-nesting depth, or None when unbounded.

    Unbounded exactly when some reachable name is recursive.  Used by
    document generators to pick safe recursion cutoffs.
    """
    reachable = reachable_names(dtd)
    if recursive_names(dtd) & reachable:
        return None
    depth: dict[str, int] = {}

    def visit(name: str) -> int:
        if name in depth:
            return depth[name]
        content = dtd.type_of(name)
        if isinstance(content, Pcdata):
            depth[name] = 1
            return 1
        children = dtd.referenced_names(name) & dtd.names
        value = 1 + max((visit(child) for child in children), default=0)
        depth[name] = value
        return value

    if dtd.root is not None:
        return visit(dtd.root)
    return max((visit(name) for name in reachable), default=0)


def dangling_specializations(sdtd: SpecializedDtd) -> frozenset[TaggedName]:
    """Proper specializations no type (transitively) uses.

    With a root: tagged names (tag > 0) unreachable from it.  Without a
    root: tagged names no *other* declaration references.  Inference
    prunes these itself (:func:`prune_unreachable_sdtd`), so a dangling
    tag in an s-DTD handed to a stacked mediator or serialized for a
    client signals a buggy producer or a hand-edit gone stale -- the
    tag hygiene check of the lint layer.
    """
    proper = frozenset(key for key in sdtd.types if key[1] != 0)
    if not proper:
        return frozenset()
    if sdtd.root is not None:
        return proper - reachable_keys(sdtd)
    referenced: set[TaggedName] = set()
    for key in sdtd.types:
        referenced |= sdtd.referenced_keys(key)
    return proper - referenced


def nondeterministic_names(dtd: Dtd) -> frozenset[str]:
    """Names whose content model violates XML 1.0 determinism.

    XML requires content models whose Glushkov automaton is
    deterministic.  Inferred view DTDs may violate this (the paper
    does not require it); this check lets callers report it.
    """
    result: set[str] = set()
    for name, content in dtd.types.items():
        if isinstance(content, Pcdata):
            continue
        if not build_nfa(content).is_deterministic():
            result.add(name)
    return frozenset(result)


def is_xml_deterministic(dtd: Dtd) -> bool:
    """True when every content model is XML-1.0 deterministic."""
    return not nondeterministic_names(dtd)
