"""Random DTDs and random conforming documents.

The paper evaluates on one department schema; the scaling and
soundness experiments (DESIGN.md E9, E13) need families of inputs.
:func:`random_dtd` draws layered, optionally recursive DTDs with a
configurable operator mix; :func:`generate_document` draws a valid
document of a DTD by expanding content models structurally.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from ..regex import Regex, alt, concat, opt, plus, star, sym
from ..xmlmodel import Document, Element, fresh_id
from .dtd import PCDATA, ContentType, Dtd, Pcdata


@dataclass
class DtdShape:
    """Parameters of :func:`random_dtd`.

    Attributes:
        n_names: how many element names to declare.
        max_branch: maximum items in a sequence or alternation.
        p_star, p_plus, p_opt: probability that a content-model item is
            wrapped in the corresponding operator.
        p_alt: probability a composite position is an alternation
            rather than a plain name.
        p_pcdata_leaf: probability a sink name is PCDATA (otherwise it
            gets empty content).
        allow_recursion: permit reference cycles (Section 3.4 DTDs).
    """

    n_names: int = 8
    max_branch: int = 4
    p_star: float = 0.25
    p_plus: float = 0.15
    p_opt: float = 0.15
    p_alt: float = 0.3
    p_pcdata_leaf: float = 0.7
    allow_recursion: bool = False


def _name_pool(count: int) -> list[str]:
    """n0, n1, ... na, nb ... distinct readable names."""
    pool = []
    alphabet_letters = string.ascii_lowercase
    for index in range(count):
        suffix = ""
        value = index
        while True:
            suffix = alphabet_letters[value % 26] + suffix
            value //= 26
            if value == 0:
                break
        pool.append(f"n{suffix}")
    return pool


def random_dtd(
    shape: DtdShape,
    rng: random.Random,
) -> Dtd:
    """Draw a random consistent DTD with the given shape.

    Names are layered: each name's content model references only names
    of strictly deeper layers (unless ``allow_recursion``), so the
    result is non-recursive by construction in the default mode.
    """
    names = _name_pool(shape.n_names)
    types: dict[str, ContentType] = {}

    def wrap(item: Regex) -> Regex:
        roll = rng.random()
        if roll < shape.p_star:
            return star(item)
        if roll < shape.p_star + shape.p_plus:
            return plus(item)
        if roll < shape.p_star + shape.p_plus + shape.p_opt:
            return opt(item)
        return item

    for index, name in enumerate(names):
        if shape.allow_recursion:
            candidates = [n for n in names if n != name] or names
        else:
            candidates = names[index + 1:]
        if not candidates:
            types[name] = (
                PCDATA if rng.random() < shape.p_pcdata_leaf else concat()
            )
            continue
        n_items = rng.randint(1, shape.max_branch)
        items: list[Regex] = []
        for _ in range(n_items):
            if rng.random() < shape.p_alt and len(candidates) > 1:
                branch_count = rng.randint(2, min(3, len(candidates)))
                branches = rng.sample(candidates, branch_count)
                item: Regex = alt(*(sym(b) for b in branches))
            else:
                item = sym(rng.choice(candidates))
            items.append(wrap(item))
        model = concat(*items)
        if shape.allow_recursion and name in _regex_names(model):
            # A self-referential position must be escapable: ensure the
            # recursion sits under * or ? so finite documents exist.
            model = concat(*(
                star(item) if name in _regex_names(item) else item
                for item in (model.items if hasattr(model, "items") else [model])
            ))
        types[name] = model
    dtd = Dtd(types, names[0])
    dtd.check_consistency()
    return dtd


def _regex_names(model: Regex) -> frozenset[str]:
    from ..regex import names as regex_names

    return regex_names(model)


def generate_element(
    name: str,
    dtd: Dtd,
    rng: random.Random,
    star_mean: float = 1.2,
    max_depth: int = 24,
    string_pool: tuple[str, ...] = ("alpha", "beta", "gamma", "CS", "EE"),
) -> Element:
    """A random element of type ``name`` valid under ``dtd``.

    ``max_depth`` guards recursive DTDs: beyond it the generator
    shortens star/option expansions toward the shallowest choice; a
    DTD whose every expansion is forcibly deep can still exceed it, in
    which case generation raises ``RecursionError``-like ValueError.
    """
    from ..regex import sample_word

    content = dtd.type_of(name)
    if isinstance(content, Pcdata):
        return Element(name, rng.choice(string_pool), fresh_id())
    if max_depth <= 0:
        raise ValueError(
            f"max_depth exhausted while expanding {name!r}; "
            "the DTD forces unbounded nesting"
        )
    effective_mean = star_mean if max_depth > 4 else 0.0
    word = sample_word(content, rng, star_mean=effective_mean)
    if word is None:
        raise ValueError(f"content model of {name!r} is unsatisfiable")
    children = [
        generate_element(
            symbol.name, dtd, rng, star_mean, max_depth - 1, string_pool
        )
        for symbol in word
    ]
    return Element(name, children, fresh_id())


def generate_document(
    dtd: Dtd,
    rng: random.Random,
    star_mean: float = 1.2,
    max_depth: int = 24,
    string_pool: tuple[str, ...] = ("alpha", "beta", "gamma", "CS", "EE"),
) -> Document:
    """A random valid document of ``dtd`` (root = the document type)."""
    root_name = dtd.root
    if root_name is None:
        root_name = sorted(dtd.names)[0]
    return Document(
        generate_element(root_name, dtd, rng, star_mean, max_depth, string_pool)
    )
