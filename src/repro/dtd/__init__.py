"""DTDs and specialized DTDs (Definitions 2.2, 3.8).

Models, parsers (standard ``<!ELEMENT>`` and the paper's set notation),
serializers, validation (including the tree-automaton semantics for
s-DTDs), structural analysis, tightness comparison, and random
generation of DTDs and conforming documents.
"""

from .analysis import (
    dangling_specializations,
    is_recursive,
    is_xml_deterministic,
    max_document_depth,
    nondeterministic_names,
    prune_unreachable,
    prune_unreachable_sdtd,
    reachable_keys,
    reachable_names,
    recursive_names,
)
from .attributes import (
    AttributeDecl,
    AttributeKind,
    DefaultMode,
    apply_defaults,
    carry_over_attributes,
    validate_attributes,
)
from .determinize import (
    RepairStatus,
    XmlizeReport,
    determinize_content_model,
    is_deterministic_model,
    xmlize_dtd,
)
from .dtd import PCDATA, ContentType, Dtd, Pcdata, dtd, is_pcdata_type
from .generation import DtdShape, generate_document, generate_element, random_dtd
from .one_unambiguity import is_one_unambiguous
from .parser import parse_dtd, parse_paper_dtd, parse_paper_sdtd
from .sdtd import SpecializedDtd, TaggedName, format_tagged, from_dtd, sdtd
from .serializer import (
    serialize_dtd,
    serialize_paper_dtd,
    serialize_paper_sdtd,
    serialize_sdtd_as_xml_dtd,
)
from .tightness import (
    TightnessReport,
    compare_tightness,
    equivalent_dtds,
    is_strictly_tighter,
    is_tighter,
    same_structural_class,
    structural_class_key,
    type_tighter,
)
from .validation import (
    ValidationReport,
    Violation,
    admissible_tags,
    require_valid,
    satisfies_sdtd,
    satisfies_sdtd_image,
    validate_document,
    validate_element,
    validate_sdtd,
)

__all__ = [
    "AttributeDecl",
    "AttributeKind",
    "DefaultMode",
    "PCDATA",
    "ContentType",
    "Dtd",
    "DtdShape",
    "Pcdata",
    "RepairStatus",
    "SpecializedDtd",
    "XmlizeReport",
    "TaggedName",
    "TightnessReport",
    "ValidationReport",
    "Violation",
    "admissible_tags",
    "apply_defaults",
    "carry_over_attributes",
    "compare_tightness",
    "dangling_specializations",
    "determinize_content_model",
    "dtd",
    "equivalent_dtds",
    "format_tagged",
    "from_dtd",
    "generate_document",
    "generate_element",
    "is_deterministic_model",
    "is_one_unambiguous",
    "is_pcdata_type",
    "is_recursive",
    "is_strictly_tighter",
    "is_tighter",
    "is_xml_deterministic",
    "max_document_depth",
    "nondeterministic_names",
    "parse_dtd",
    "parse_paper_dtd",
    "parse_paper_sdtd",
    "prune_unreachable",
    "prune_unreachable_sdtd",
    "random_dtd",
    "reachable_keys",
    "reachable_names",
    "recursive_names",
    "require_valid",
    "same_structural_class",
    "satisfies_sdtd",
    "satisfies_sdtd_image",
    "sdtd",
    "serialize_dtd",
    "serialize_paper_dtd",
    "serialize_paper_sdtd",
    "serialize_sdtd_as_xml_dtd",
    "structural_class_key",
    "type_tighter",
    "validate_attributes",
    "validate_document",
    "validate_element",
    "validate_sdtd",
    "xmlize_dtd",
]
