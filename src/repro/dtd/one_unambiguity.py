"""Deciding one-unambiguity (Brüggemann-Klein & Wood, 1998).

XML 1.0's deterministic content models are exactly the
*one-unambiguous* regular languages.  BKW's decision procedure, on the
minimal DFA ``M``:

1. compute the set ``S`` of *M-consistent* symbols -- symbols ``a``
   such that every final state has an ``a``-transition and all of them
   lead to one common state ``f(a)``;
2. *cut* those transitions out of the final states (``M_S``);
3. ``L(M)`` is one-unambiguous iff ``M_S`` satisfies the *orbit
   property* (all gates of each orbit agree on finality and on their
   out-of-orbit transitions) and every orbit language of ``M_S`` is
   one-unambiguous (recursively, on the minimized orbit automaton).

The recursion makes progress because cutting removes transitions and
orbit automata restrict to single orbits; a strongly connected
automaton with no consistent symbols is a dead end (not
one-unambiguous).

This module implements the decision; the *constructive* repair for the
common single-state-orbit class lives in
:mod:`repro.dtd.determinize`.  The two are cross-checked in tests:
whenever the constructor succeeds the decision must be True, and the
decision is False on BKW's classic counterexample
``(a|b)*, a, (a|b)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..regex import Regex
from ..regex.language import minimal_dfa

Letter = tuple[str, int]


@dataclass(frozen=True)
class _Partial:
    """A trimmed partial DFA (only live transitions), hashable."""

    states: frozenset[int]
    start: int
    finals: frozenset[int]
    #: ((state, letter, target), ...) sorted
    edges: tuple[tuple[int, Letter, int], ...]

    def delta(self) -> dict[int, dict[Letter, int]]:
        table: dict[int, dict[Letter, int]] = {s: {} for s in self.states}
        for state, letter, target in self.edges:
            table[state][letter] = target
        return table


def _trim(dfa) -> _Partial | None:
    """Reachable-and-live restriction of a complete DFA."""
    reachable = {dfa.start}
    frontier = [dfa.start]
    while frontier:
        state = frontier.pop()
        for target in dfa.transitions[state].values():
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    inverse: dict[int, set[int]] = {s: set() for s in range(dfa.n_states)}
    for state in range(dfa.n_states):
        for target in dfa.transitions[state].values():
            inverse[target].add(state)
    live = set(dfa.accepting)
    frontier = list(live)
    while frontier:
        state = frontier.pop()
        for previous in inverse[state]:
            if previous not in live:
                live.add(previous)
                frontier.append(previous)
    keep = reachable & live
    if dfa.start not in keep:
        return None
    edges = tuple(
        sorted(
            (state, letter, target)
            for state in keep
            for letter, target in dfa.transitions[state].items()
            if target in keep
        )
    )
    return _Partial(
        frozenset(keep),
        dfa.start,
        frozenset(dfa.accepting & keep),
        edges,
    )


def _minimize_partial(automaton: _Partial) -> _Partial:
    """Hopcroft on a partial DFA (missing transitions = dead state)."""
    states = sorted(automaton.states)
    letters = sorted({letter for _, letter, _ in automaton.edges})
    delta = automaton.delta()
    dead = -1

    partition: list[set[int]] = []
    finals = set(automaton.finals)
    non_finals = set(states) - finals
    for block in (finals, non_finals, {dead}):
        if block:
            partition.append(set(block))

    changed = True
    while changed:
        changed = False
        block_of = {}
        for index, block in enumerate(partition):
            for state in block:
                block_of[state] = index
        new_partition: list[set[int]] = []
        for block in partition:
            buckets: dict[tuple, set[int]] = {}
            for state in block:
                if state == dead:
                    signature = ("dead",)
                else:
                    signature = tuple(
                        block_of[delta[state].get(letter, dead)]
                        for letter in letters
                    )
                buckets.setdefault(signature, set()).add(state)
            if len(buckets) > 1:
                changed = True
            new_partition.extend(buckets.values())
        partition = new_partition

    block_of = {}
    for index, block in enumerate(partition):
        for state in block:
            block_of[state] = index
    dead_block = block_of[dead]
    kept_blocks = sorted(
        {index for index in block_of.values() if index != dead_block}
    )
    renumber = {old: new for new, old in enumerate(kept_blocks)}
    new_edges = set()
    for state, letter, target in automaton.edges:
        a = block_of[state]
        b = block_of[target]
        if a == dead_block or b == dead_block:  # pragma: no cover
            continue
        new_edges.add((renumber[a], letter, renumber[b]))
    return _Partial(
        frozenset(renumber[block_of[s]] for s in automaton.states),
        renumber[block_of[automaton.start]],
        frozenset(renumber[block_of[s]] for s in automaton.finals),
        tuple(sorted(new_edges)),
    )


def _sccs(automaton: _Partial) -> list[frozenset[int]]:
    delta = automaton.delta()
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    out: list[frozenset[int]] = []
    counter = [0]

    def connect(root: int) -> None:
        work = [(root, sorted(set(delta[root].values())))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            state, successors = work[-1]
            if successors:
                target = successors.pop()
                if target not in index:
                    index[target] = lowlink[target] = counter[0]
                    counter[0] += 1
                    stack.append(target)
                    on_stack.add(target)
                    work.append((target, sorted(set(delta[target].values()))))
                elif target in on_stack:
                    lowlink[state] = min(lowlink[state], index[target])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[state])
                if lowlink[state] == index[state]:
                    component = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == state:
                            break
                    out.append(frozenset(component))

    for state in sorted(automaton.states):
        if state not in index:
            connect(state)
    return out


def _is_nontrivial(component: frozenset[int], automaton: _Partial) -> bool:
    if len(component) > 1:
        return True
    (state,) = component
    return any(
        s == state and t == state for s, _, t in automaton.edges
    )


def _consistent_symbols(automaton: _Partial) -> dict[Letter, int]:
    """Symbols every final state maps to one common target."""
    if not automaton.finals:
        return {}
    delta = automaton.delta()
    candidates: dict[Letter, int] | None = None
    for final in automaton.finals:
        row = delta[final]
        if candidates is None:
            candidates = dict(row)
        else:
            candidates = {
                letter: target
                for letter, target in candidates.items()
                if row.get(letter) == target
            }
        if not candidates:
            return {}
    return candidates or {}


def _cut(automaton: _Partial, symbols: dict[Letter, int]) -> _Partial:
    """Remove the consistent transitions out of final states."""
    if not symbols:
        return automaton
    edges = tuple(
        (state, letter, target)
        for state, letter, target in automaton.edges
        if not (state in automaton.finals and letter in symbols)
    )
    return _Partial(automaton.states, automaton.start, automaton.finals, edges)


def _orbit_property(automaton: _Partial) -> bool:
    delta = automaton.delta()
    for component in _sccs(automaton):
        if not _is_nontrivial(component, automaton):
            continue
        gates = []
        for state in sorted(component):
            exits = {
                letter: target
                for letter, target in delta[state].items()
                if target not in component
            }
            if exits or state in automaton.finals:
                gates.append((state, state in automaton.finals, exits))
        for state, final, exits in gates[1:]:
            if final != gates[0][1] or exits != gates[0][2]:
                return False
    return True


def _orbit_automaton(
    automaton: _Partial, component: frozenset[int], start: int
) -> _Partial:
    """Restriction to one orbit; finals are the orbit's gates."""
    delta = automaton.delta()
    gates = set()
    for state in component:
        exits = any(
            target not in component for target in delta[state].values()
        )
        if exits or state in automaton.finals:
            gates.add(state)
    edges = tuple(
        (state, letter, target)
        for state, letter, target in automaton.edges
        if state in component and target in component
    )
    return _Partial(component, start, frozenset(gates), edges)


def _decide(automaton: _Partial, seen: frozenset[_Partial], depth: int) -> bool:
    if automaton in seen or depth > 64:
        # No progress: a strongly connected automaton whose cut and
        # orbit decomposition reproduce itself has no one-unambiguous
        # expression (BKW's recursion otherwise strictly shrinks).
        # The depth cap is a conservative guard (errs toward "not
        # one-unambiguous") for pathological shapes.
        return False
    seen = seen | {automaton}
    symbols = _consistent_symbols(automaton)
    cut = _cut(automaton, symbols)
    if not _orbit_property(cut):
        return False
    for component in _sccs(cut):
        if not _is_nontrivial(component, cut):
            continue
        gate = min(component)
        orbit = _orbit_automaton(cut, component, gate)
        orbit = _minimize_partial(orbit)
        next_seen = seen if cut == automaton else frozenset()
        if not _decide(orbit, next_seen, depth + 1):
            return False
    return True


@lru_cache(maxsize=2048)
def is_one_unambiguous(regex: Regex) -> bool:
    """Does ``L(regex)`` have *any* deterministic content model?"""
    trimmed = _trim(minimal_dfa(regex))
    if trimmed is None:
        return True  # the empty language: vacuously fine
    return _decide(_minimize_partial(trimmed), frozenset(), 0)
