"""Making inferred content models XML-1.0 deterministic.

XML 1.0 requires *deterministic* (one-unambiguous) content models: the
Glushkov automaton of the expression must be deterministic.  Inferred
view DTDs are correct regular expressions but not always in that form
(refinement produces things like ``(a, b) | (a, c)``), so a view DTD
destined for an actual XML toolchain needs a repair pass.

Not every regular language *has* a deterministic expression
(Brüggemann-Klein & Wood 1998).  This module provides:

* :func:`determinize_content_model` -- an equivalent deterministic
  expression, constructed from the minimal DFA, for every language
  whose minimal DFA has only trivial strongly-connected components
  (singleton states with self-loops).  This covers all finite
  languages and the star-shaped models DTDs actually use.  Returns
  ``None`` outside that class.
* :func:`orbit_property_holds` -- the BKW *orbit property*, a
  necessary condition for one-unambiguity; when it fails, **no**
  deterministic content model exists, and the caller can report the
  loss authoritatively.
* :func:`xmlize_dtd` -- repair every content model of a DTD, with a
  per-name report (kept / repaired / impossible / unknown).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..regex import (
    EPSILON,
    Regex,
    Sym,
    alt,
    concat,
    is_equivalent,
    star,
)
from ..regex.dfa import Dfa
from ..regex.language import minimal_dfa
from ..regex.nfa import build_nfa
from .dtd import ContentType, Dtd, Pcdata


def is_deterministic_model(r: Regex) -> bool:
    """Is ``r`` already a legal XML content model (Glushkov-det.)?"""
    return build_nfa(r).is_deterministic()


def _strongly_connected_components(dfa: Dfa) -> list[set[int]]:
    """Tarjan's SCCs over the DFA's transition graph."""
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[set[int]] = []
    counter = [0]

    def edges(state: int) -> set[int]:
        return set(dfa.transitions[state].values())

    def connect(root: int) -> None:
        # Iterative Tarjan to avoid recursion limits on big DFAs.
        work: list[tuple[int, list[int]]] = [(root, sorted(edges(root)))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            state, successors = work[-1]
            if successors:
                target = successors.pop()
                if target not in index:
                    index[target] = lowlink[target] = counter[0]
                    counter[0] += 1
                    stack.append(target)
                    on_stack.add(target)
                    work.append((target, sorted(edges(target))))
                elif target in on_stack:
                    lowlink[state] = min(lowlink[state], index[target])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[state])
                if lowlink[state] == index[state]:
                    component: set[int] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == state:
                            break
                    components.append(component)

    for state in range(dfa.n_states):
        if state not in index:
            connect(state)
    return components


def _live_states(dfa: Dfa) -> set[int]:
    """States from which an accepting state is reachable."""
    inverse: dict[int, set[int]] = {s: set() for s in range(dfa.n_states)}
    for state in range(dfa.n_states):
        for target in dfa.transitions[state].values():
            inverse[target].add(state)
    live = set(dfa.accepting)
    frontier = list(live)
    while frontier:
        state = frontier.pop()
        for previous in inverse[state]:
            if previous not in live:
                live.add(previous)
                frontier.append(previous)
    return live


def determinize_content_model(r: Regex) -> Regex | None:
    """An equivalent XML-deterministic expression, or ``None``.

    Construction: on the minimal DFA restricted to live states, if
    every SCC is a single state (self-loops allowed), emit for each
    state ``loops*, (a1, expr(q_a1) | ... | ε?)`` -- first symbols of
    the alternation are distinct by DFA determinism, so the result is
    Glushkov-deterministic by construction.  Expressions are memoized
    per state (the DFA is a DAG of SCCs, so recursion terminates).
    """
    if is_deterministic_model(r):
        return r
    dfa = minimal_dfa(r)
    live = _live_states(dfa)
    if dfa.start not in live:
        return None  # empty language; callers treat separately
    for component in _strongly_connected_components(dfa):
        live_component = component & live
        if len(live_component) > 1:
            return None

    memo: dict[int, Regex] = {}

    def expr(state: int) -> Regex:
        if state in memo:
            return memo[state]
        loops = [
            Sym(*letter)
            for letter, target in sorted(dfa.transitions[state].items())
            if target == state and target in live
        ]
        branches: list[Regex] = []
        for letter, target in sorted(dfa.transitions[state].items()):
            if target == state or target not in live:
                continue
            branches.append(concat(Sym(*letter), expr(target)))
        if state in dfa.accepting:
            branches.append(EPSILON)
        body = alt(*branches) if branches else EPSILON
        result = concat(star(alt(*loops)), body) if loops else body
        memo[state] = result
        return result

    candidate = expr(dfa.start)
    from ..regex import simplify

    candidate = simplify(candidate)
    if not is_deterministic_model(candidate):  # pragma: no cover - by construction
        return None
    if not is_equivalent(candidate, r):  # pragma: no cover - by construction
        raise AssertionError(
            f"determinization changed the language: {r} -> {candidate}"
        )
    return candidate


def orbit_property_holds(r: Regex) -> bool:
    """The BKW orbit property on the minimal DFA (necessary condition).

    All *gates* of a nontrivial orbit (SCC) must agree: same finality,
    and identical out-of-orbit transitions.  If this fails, the
    language is **not** one-unambiguous -- no deterministic content
    model exists at all.
    """
    dfa = minimal_dfa(r)
    live = _live_states(dfa)
    for component in _strongly_connected_components(dfa):
        live_component = component & live
        if len(live_component) <= 1:
            # A singleton is nontrivial only with a self-loop; a single
            # gate trivially agrees with itself either way.
            continue
        gates = []
        for state in live_component:
            exits = {
                letter: target
                for letter, target in dfa.transitions[state].items()
                if target not in component and target in live
            }
            if exits or state in dfa.accepting:
                gates.append((state in dfa.accepting, exits))
        for final, exits in gates[1:]:
            if final != gates[0][0] or exits != gates[0][1]:
                return False
    return True


class RepairStatus(enum.Enum):
    """Outcome of the per-name determinism repair."""

    ALREADY_DETERMINISTIC = "already-deterministic"
    REPAIRED = "repaired"
    IMPOSSIBLE = "impossible"  # orbit property fails: no legal model
    UNKNOWN = "unknown"  # outside our constructive class


@dataclass
class XmlizeReport:
    """Per-name outcomes of :func:`xmlize_dtd`."""

    statuses: dict[str, RepairStatus]

    @property
    def fully_deterministic(self) -> bool:
        return all(
            status
            in (RepairStatus.ALREADY_DETERMINISTIC, RepairStatus.REPAIRED)
            for status in self.statuses.values()
        )

    def names_with(self, status: RepairStatus) -> list[str]:
        return sorted(
            name for name, s in self.statuses.items() if s is status
        )


def xmlize_dtd(dtd: Dtd) -> tuple[Dtd, XmlizeReport]:
    """Repair every content model; non-repairable ones are kept as-is.

    The returned DTD describes the same documents; the report says
    which names still violate XML 1.0 determinism (and whether that is
    provably unavoidable).
    """
    types: dict[str, ContentType] = {}
    statuses: dict[str, RepairStatus] = {}
    for name, content in dtd.types.items():
        if isinstance(content, Pcdata):
            types[name] = content
            statuses[name] = RepairStatus.ALREADY_DETERMINISTIC
            continue
        if is_deterministic_model(content):
            types[name] = content
            statuses[name] = RepairStatus.ALREADY_DETERMINISTIC
            continue
        repaired = determinize_content_model(content)
        if repaired is not None:
            types[name] = repaired
            statuses[name] = RepairStatus.REPAIRED
            continue
        from .one_unambiguity import is_one_unambiguous

        types[name] = content
        statuses[name] = (
            RepairStatus.UNKNOWN
            if is_one_unambiguous(content)
            else RepairStatus.IMPOSSIBLE
        )
    return Dtd(types, dtd.root), XmlizeReport(statuses)
