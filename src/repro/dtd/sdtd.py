"""Specialized DTDs (Definition 3.8).

An s-DTD declares types for *tagged* names ``n^i`` (``i = 0`` is the
base, printed bare) and its content models are tagged regular
expressions.  s-DTDs can express constraints plain DTDs cannot --
e.g. "exactly two of the publications are journal publications"
(Example 3.4) -- which is what makes structurally tight view DTDs
possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import DtdConsistencyError, UnknownNameError
from ..regex import alphabet, parse_regex, to_string
from .dtd import PCDATA, ContentType, Dtd, Pcdata

#: A tagged name: (element name, specialization tag); tag 0 is the base.
TaggedName = tuple[str, int]


def format_tagged(key: TaggedName) -> str:
    """Render a tagged name the way the paper does (bare when tag 0)."""
    name, tag = key
    return name if tag == 0 else f"{name}^{tag}"


@dataclass
class SpecializedDtd:
    """A specialized DTD: ``{<n^i : type(n^i)>}`` plus a root.

    ``types`` maps tagged names to types.  Content models may mention
    any declared tagged name.  The root may itself be specialized.
    """

    types: dict[TaggedName, ContentType]
    root: TaggedName | None = None

    def __post_init__(self) -> None:
        if self.root is not None and self.root not in self.types:
            raise DtdConsistencyError(
                f"root {format_tagged(self.root)} is not declared"
            )

    @property
    def tagged_names(self) -> frozenset[TaggedName]:
        """All declared tagged names."""
        return frozenset(self.types)

    @property
    def base_names(self) -> frozenset[str]:
        """All element names, tags projected out."""
        return frozenset(name for name, _ in self.types)

    def spec(self, name: str) -> int:
        """``spec(n)`` of Definition 3.8: the largest declared tag of ``n``."""
        tags = [tag for declared, tag in self.types if declared == name]
        if not tags:
            raise UnknownNameError(f"element name {name!r} is not declared")
        return max(tags)

    def specializations(self, name: str) -> list[TaggedName]:
        """All declared specializations of ``name``, base first."""
        return sorted(key for key in self.types if key[0] == name)

    def type_of(self, key: TaggedName) -> ContentType:
        """The type of a tagged name; raises for unknown keys."""
        try:
            return self.types[key]
        except KeyError:
            raise UnknownNameError(
                f"tagged name {format_tagged(key)} is not declared"
            )

    def __contains__(self, key: TaggedName) -> bool:
        return key in self.types

    def __iter__(self) -> Iterator[TaggedName]:
        return iter(self.types)

    def referenced_keys(self, key: TaggedName) -> frozenset[TaggedName]:
        """Tagged names occurring in the content model of ``key``."""
        content = self.type_of(key)
        if isinstance(content, Pcdata):
            return frozenset()
        return frozenset(s.key() for s in alphabet(content))

    def undeclared_references(self) -> dict[TaggedName, frozenset[TaggedName]]:
        """References to tagged names that are not declared."""
        problems: dict[TaggedName, frozenset[TaggedName]] = {}
        for key in self.types:
            missing = self.referenced_keys(key) - self.tagged_names
            if missing:
                problems[key] = missing
        return problems

    def check_consistency(self) -> None:
        """Raise :class:`DtdConsistencyError` on undeclared references."""
        problems = self.undeclared_references()
        if problems:
            details = "; ".join(
                f"{format_tagged(key)} references "
                f"{sorted(format_tagged(m) for m in missing)}"
                for key, missing in sorted(problems.items())
            )
            raise DtdConsistencyError(f"undeclared tagged names: {details}")

    def is_plain(self) -> bool:
        """True when every tag is 0 (the s-DTD is an ordinary DTD)."""
        return all(tag == 0 for _, tag in self.types)

    def to_plain(self) -> Dtd:
        """Reinterpret as a plain DTD; requires :meth:`is_plain`.

        For s-DTDs with proper specializations use
        :func:`repro.inference.merge.merge_sdtd` (Algorithm Merge),
        which images and unions the types.
        """
        if not self.is_plain():
            raise DtdConsistencyError(
                "s-DTD has proper specializations; use merge_sdtd"
            )
        return Dtd(
            {name: content for (name, _), content in self.types.items()},
            self.root[0] if self.root else None,
        )

    def copy(self) -> "SpecializedDtd":
        """A shallow copy with a fresh type dict."""
        return SpecializedDtd(dict(self.types), self.root)

    def __str__(self) -> str:
        lines = []
        for key, content in self.types.items():
            rendered = "#PCDATA" if isinstance(content, Pcdata) else to_string(content)
            marker = "(root) " if key == self.root else ""
            lines.append(f"<{marker}{format_tagged(key)} : {rendered}>")
        return "{" + "\n ".join(lines) + "}"


def from_dtd(plain: Dtd) -> SpecializedDtd:
    """Lift a plain DTD to an s-DTD with every tag 0."""
    return SpecializedDtd(
        {(name, 0): content for name, content in plain.types.items()},
        (plain.root, 0) if plain.root else None,
    )


def sdtd(
    declarations: Mapping[str | TaggedName, str | ContentType],
    root: str | TaggedName | None = None,
) -> SpecializedDtd:
    """Convenience constructor from content-model strings.

    Keys may be bare names (tag 0), ``(name, tag)`` pairs, or strings
    of the form ``"name^tag"``.
    """

    def as_key(raw: str | TaggedName) -> TaggedName:
        if isinstance(raw, tuple):
            return raw
        if "^" in raw:
            name, _, tag = raw.partition("^")
            return (name, int(tag))
        return (raw, 0)

    types: dict[TaggedName, ContentType] = {}
    for raw_key, content in declarations.items():
        key = as_key(raw_key)
        if isinstance(content, str):
            if content.strip().upper() == "#PCDATA":
                types[key] = PCDATA
            else:
                types[key] = parse_regex(content)
        else:
            types[key] = content
    result = SpecializedDtd(types, as_key(root) if root is not None else None)
    result.check_consistency()
    return result
