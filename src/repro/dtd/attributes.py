"""Attribute-list declarations (Appendix A of the paper).

The paper's *model* omits attributes other than ID because "the DTD
does not type the target of an IDREF attribute" -- attributes never
affect content models, so the inference results are unchanged.  The
*system*, however, should round-trip real DTDs; this module implements
Appendix A's attribute layer:

* attribute types: ``CDATA``, ``ID``, ``IDREF``, ``IDREFS``,
  ``NMTOKEN``, ``ENTITY``, ``ENTITIES``, and enumerated types;
* default declarations: ``#REQUIRED``, ``#IMPLIED``, ``#FIXED "v"``,
  and plain defaults;
* document-level validity (Appendix A's definition): at most one ID
  attribute per element type, unique ID values, every IDREF(S) value
  resolving to some element's ID, enumerated values in range, required
  attributes present, fixed attributes matching.

Because attributes are orthogonal to content models, the view-DTD
pipeline simply *carries over* the attribute declarations of the
element names that survive into the view
(:func:`carry_over_attributes`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import DtdSyntaxError
from ..xmlmodel import Document, Element
from .dtd import Dtd
from .validation import ValidationReport


class AttributeKind(enum.Enum):
    """Appendix A.1's attribute types."""

    CDATA = "CDATA"
    ID = "ID"
    IDREF = "IDREF"
    IDREFS = "IDREFS"
    NMTOKEN = "NMTOKEN"
    ENTITY = "ENTITY"
    ENTITIES = "ENTITIES"
    ENUMERATED = "ENUMERATED"


class DefaultMode(enum.Enum):
    """How a missing attribute is treated."""

    REQUIRED = "#REQUIRED"
    IMPLIED = "#IMPLIED"
    FIXED = "#FIXED"
    DEFAULT = "default"  # a plain default value


@dataclass(frozen=True)
class AttributeDecl:
    """One attribute declaration of an ATTLIST."""

    name: str
    kind: AttributeKind
    mode: DefaultMode
    #: allowed values for ENUMERATED kinds
    enumeration: tuple[str, ...] = ()
    #: the FIXED or plain default value
    default: str | None = None

    def __post_init__(self) -> None:
        if self.kind is AttributeKind.ENUMERATED and not self.enumeration:
            raise DtdSyntaxError(
                f"enumerated attribute {self.name!r} needs values"
            )
        if self.mode in (DefaultMode.FIXED, DefaultMode.DEFAULT):
            if self.default is None:
                raise DtdSyntaxError(
                    f"attribute {self.name!r} with mode {self.mode.value} "
                    "needs a default value"
                )

    def accepts_value(self, value: str) -> bool:
        """Syntactic check of one value (reference checks are global)."""
        if self.kind is AttributeKind.ENUMERATED:
            return value in self.enumeration
        if self.kind in (AttributeKind.IDREFS, AttributeKind.ENTITIES):
            return bool(value.split())
        if self.kind in (
            AttributeKind.ID,
            AttributeKind.IDREF,
            AttributeKind.NMTOKEN,
            AttributeKind.ENTITY,
        ):
            return bool(value) and not any(c.isspace() for c in value)
        return True  # CDATA


#: element name -> attribute name -> declaration
AttributeTable = dict[str, dict[str, AttributeDecl]]


def check_attribute_table(table: AttributeTable) -> None:
    """Static rules: at most one ID attribute per element type."""
    for element_name, declarations in table.items():
        id_attrs = [
            a.name
            for a in declarations.values()
            if a.kind is AttributeKind.ID
        ]
        if len(id_attrs) > 1:
            raise DtdSyntaxError(
                f"element {element_name!r} declares several ID "
                f"attributes: {sorted(id_attrs)}"
            )
        fixed_and_required = [
            a.name
            for a in declarations.values()
            if a.kind is AttributeKind.ID
            and a.mode in (DefaultMode.FIXED, DefaultMode.DEFAULT)
        ]
        if fixed_and_required:
            raise DtdSyntaxError(
                f"ID attributes cannot have defaults: "
                f"{element_name}/{fixed_and_required[0]}"
            )


def apply_defaults(document: Document, table: AttributeTable) -> None:
    """Fill in FIXED and plain default values in place."""
    for element in document.iter():
        declarations = table.get(element.name)
        if not declarations:
            continue
        for decl in declarations.values():
            if decl.default is None:
                continue
            if decl.name not in element.attributes:
                element.attributes[decl.name] = decl.default


def validate_attributes(
    document: Document, table: AttributeTable
) -> ValidationReport:
    """Appendix A validity for attributes.

    Checks (per element): no undeclared attributes, required present,
    fixed matching, values syntactically acceptable.  Globally: ID
    values unique, IDREF/IDREFS values resolve to some ID value.
    """
    report = ValidationReport()
    id_values: dict[str, str] = {}  # value -> path of its element
    pending_refs: list[tuple[str, str]] = []  # (path, value)

    def visit(element: Element, path: str) -> None:
        declarations = table.get(element.name, {})
        for attr_name, value in element.attributes.items():
            decl = declarations.get(attr_name)
            if decl is None:
                report.add(
                    path,
                    f"attribute {attr_name!r} is not declared for "
                    f"{element.name!r}",
                )
                continue
            if not decl.accepts_value(value):
                report.add(
                    path,
                    f"value {value!r} not allowed for attribute "
                    f"{attr_name!r} ({decl.kind.value})",
                )
            if (
                decl.mode is DefaultMode.FIXED
                and value != decl.default
            ):
                report.add(
                    path,
                    f"attribute {attr_name!r} is #FIXED to "
                    f"{decl.default!r}, found {value!r}",
                )
            if decl.kind is AttributeKind.ID:
                if value in id_values:
                    report.add(path, f"duplicate ID value {value!r}")
                else:
                    id_values[value] = path
            elif decl.kind is AttributeKind.IDREF:
                pending_refs.append((path, value))
            elif decl.kind is AttributeKind.IDREFS:
                for token in value.split():
                    pending_refs.append((path, token))
        for decl in declarations.values():
            if (
                decl.mode is DefaultMode.REQUIRED
                and decl.name not in element.attributes
            ):
                report.add(
                    path,
                    f"required attribute {decl.name!r} missing on "
                    f"{element.name!r}",
                )
        for index, child in enumerate(element.children):
            visit(child, f"{path}/{child.name}[{index}]")

    visit(document.root, document.root.name)
    for path, value in pending_refs:
        if value not in id_values:
            report.add(
                path, f"IDREF {value!r} does not match any ID attribute"
            )
    return report


def carry_over_attributes(source: Dtd, view: Dtd) -> Dtd:
    """Copy the source's ATTLISTs for names that survive into a view.

    Attributes never affect content models (the paper's Section 2
    argument), so the inferred view DTD inherits them verbatim for
    every shared element name.
    """
    view_attributes: AttributeTable = {
        name: dict(declarations)
        for name, declarations in source.attributes.items()
        if name in view
    }
    result = Dtd(dict(view.types), view.root, view_attributes)
    return result
