"""Tightness comparison of DTDs (Definitions 3.2-3.7).

``D1`` is *tighter* than ``D2`` when every document satisfying ``D1``
satisfies ``D2``.  We decide the relation exactly for the common case
(compare the types of corresponding names by language inclusion and
check name-set containment), which is sound and -- for DTDs whose
reachable names coincide, as with inferred view DTDs versus their naive
counterparts -- also complete.

Structural classes (Definition 3.5) abstract a document's strings and
IDs away; :func:`structural_class_key` computes a canonical key so that
two documents are in the same class iff their keys are equal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..regex import difference_witness, is_equivalent, is_subset
from ..xmlmodel import Element
from .analysis import prune_unreachable, reachable_names
from .dtd import Dtd, Pcdata


@dataclass
class TightnessReport:
    """Outcome of a tighter-than comparison with per-name evidence."""

    tighter: bool
    #: names where the left type is strictly tighter
    strictly_tighter_names: list[str]
    #: names where inclusion fails, with a witness child sequence
    failures: dict[str, list]

    @property
    def strictly(self) -> bool:
        """Tighter and not equivalent."""
        return self.tighter and bool(self.strictly_tighter_names)


def type_tighter(left, right) -> bool:
    """Definition 3.3 on a pair of types (PCDATA or content model)."""
    left_pcdata = isinstance(left, Pcdata)
    right_pcdata = isinstance(right, Pcdata)
    if left_pcdata or right_pcdata:
        return left_pcdata and right_pcdata
    return is_subset(left, right)


def compare_tightness(left: Dtd, right: Dtd) -> TightnessReport:
    """Is ``left`` tighter than ``right`` (Definition 3.2)?

    Sound criterion: every name reachable in ``left`` is declared in
    ``right`` with a type that includes the left type, and the roots
    agree (or the right root is unset).
    """
    strictly: list[str] = []
    failures: dict[str, list] = {}
    left_reachable = reachable_names(left)
    if left.root is not None and right.root is not None and left.root != right.root:
        failures["#root"] = [left.root, right.root]
    for name in sorted(left_reachable):
        left_type = left.type_of(name)
        if name not in right:
            failures[name] = ["undeclared in right DTD"]
            continue
        right_type = right.type_of(name)
        if not type_tighter(left_type, right_type):
            witness = None
            if not isinstance(left_type, Pcdata) and not isinstance(right_type, Pcdata):
                witness = difference_witness(left_type, right_type)
            failures[name] = [witness]
            continue
        left_pc = isinstance(left_type, Pcdata)
        right_pc = isinstance(right_type, Pcdata)
        if not left_pc and not right_pc and not is_equivalent(left_type, right_type):
            strictly.append(name)
    return TightnessReport(not failures, strictly, failures)


def is_tighter(left: Dtd, right: Dtd) -> bool:
    """Convenience wrapper for :func:`compare_tightness`."""
    return compare_tightness(left, right).tighter


def is_strictly_tighter(left: Dtd, right: Dtd) -> bool:
    """Tighter and describing strictly fewer documents."""
    report = compare_tightness(left, right)
    return report.tighter and report.strictly


def equivalent_dtds(left: Dtd, right: Dtd) -> bool:
    """Both directions of Definition 3.2 (same described documents).

    Compares the reachable fragments only: unreachable declarations
    cannot affect which documents satisfy the DTD.
    """
    left_pruned = prune_unreachable(left)
    right_pruned = prune_unreachable(right)
    return (
        is_tighter(left_pruned, right_pruned)
        and is_tighter(right_pruned, left_pruned)
    )


# ---------------------------------------------------------------------------
# Structural classes (Definition 3.5)
# ---------------------------------------------------------------------------

StructuralKey = tuple


def structural_class_key(element: Element) -> StructuralKey:
    """A canonical key for the structural class of a document.

    Definition 3.5 identifies documents up to a bijective renaming of
    strings and IDs.  Strings are therefore canonicalized by first
    occurrence order (two equal strings stay equal, distinct strings
    stay distinct); IDs are dropped entirely because each element's ID
    is unique, making any two documents with the same shape ID-mappable.
    """
    counter: dict[str, int] = {}

    def visit(node: Element) -> StructuralKey:
        if node.is_pcdata:
            value = node.text or ""
            if value not in counter:
                counter[value] = len(counter)
            return (node.name, "#text", counter[value])
        return (node.name, tuple(visit(child) for child in node.children))

    return visit(element)


def same_structural_class(left: Element, right: Element) -> bool:
    """Are the two documents in the same structural class?"""
    return structural_class_key(left) == structural_class_key(right)
