"""Serialization of DTDs to standard and paper notation."""

from __future__ import annotations

from ..regex import image, to_string, to_xml_content_model
from .dtd import Dtd, Pcdata
from .sdtd import SpecializedDtd, format_tagged


def _attlist_lines(dtd: Dtd) -> list[str]:
    from .attributes import AttributeKind, DefaultMode

    lines = []
    for element_name in sorted(dtd.attributes):
        for decl in dtd.attributes[element_name].values():
            if decl.kind is AttributeKind.ENUMERATED:
                kind = "(" + " | ".join(decl.enumeration) + ")"
            else:
                kind = decl.kind.value
            if decl.mode is DefaultMode.REQUIRED:
                default = "#REQUIRED"
            elif decl.mode is DefaultMode.IMPLIED:
                default = "#IMPLIED"
            elif decl.mode is DefaultMode.FIXED:
                default = f'#FIXED "{decl.default}"'
            else:
                default = f'"{decl.default}"'
            lines.append(
                f"<!ATTLIST {element_name} {decl.name} {kind} {default}>"
            )
    return lines


def serialize_dtd(dtd: Dtd, doctype: bool = True) -> str:
    """Render as ``<!ELEMENT>`` (and ``<!ATTLIST>``) declarations."""
    lines = []
    for name, content in dtd.types.items():
        if isinstance(content, Pcdata):
            model = "(#PCDATA)"
        else:
            model = to_xml_content_model(content)
        lines.append(f"<!ELEMENT {name} {model}>")
    lines.extend(_attlist_lines(dtd))
    body = "\n".join(lines)
    if doctype and dtd.root:
        indented = "\n".join(f"  {line}" for line in lines)
        return f"<!DOCTYPE {dtd.root} [\n{indented}\n]>"
    return body


def serialize_paper_dtd(dtd: Dtd) -> str:
    """Render in the paper's ``{<name : model> ...}`` notation."""
    lines = []
    for name, content in dtd.types.items():
        model = "#PCDATA" if isinstance(content, Pcdata) else to_string(content)
        lines.append(f"<{name} : {model}>")
    return "{" + "\n ".join(lines) + "}"


def serialize_paper_sdtd(sdtd: SpecializedDtd) -> str:
    """Render an s-DTD in the paper's notation with ``^`` tags."""
    lines = []
    for key, content in sdtd.types.items():
        model = "#PCDATA" if isinstance(content, Pcdata) else to_string(content)
        lines.append(f"<{format_tagged(key)} : {model}>")
    return "{" + "\n ".join(lines) + "}"


def serialize_sdtd_as_xml_dtd(sdtd: SpecializedDtd) -> str:
    """Render the *image* of an s-DTD as standard declarations.

    Standard DTD syntax cannot express tags, so specializations of the
    same name are unioned per name first (informational rendering; for
    the paper's Merge semantics use ``repro.inference.merge``).
    """
    from ..regex import alt

    merged: dict[str, list] = {}
    pcdata_names: set[str] = set()
    for (name, _), content in sdtd.types.items():
        if isinstance(content, Pcdata):
            pcdata_names.add(name)
        else:
            merged.setdefault(name, []).append(image(content))
    lines = []
    for name in sdtd.base_names:
        if name in pcdata_names:
            lines.append(f"<!ELEMENT {name} (#PCDATA)>")
        else:
            model = alt(*merged[name])
            lines.append(f"<!ELEMENT {name} {to_xml_content_model(model)}>")
    return "\n".join(lines)
