"""Parser for XML 1.0 ``<!ELEMENT>`` declarations and the paper's notation.

Two surface syntaxes are accepted:

* Standard DTD syntax::

      <!DOCTYPE department [
        <!ELEMENT department (name, professor+, gradStudent+, course*)>
        <!ELEMENT name (#PCDATA)>
        ...
      ]>

  (also accepted without the DOCTYPE wrapper, as a bare run of
  ``<!ELEMENT>`` declarations -- the document type is then unset).

* The paper's set notation, used throughout the examples::

      {<department : name, professor+, gradStudent+, course*>
       <name : #PCDATA>}

  Tagged names (``publication^1``) are allowed in the paper notation,
  in which case the result is a :class:`SpecializedDtd`.
"""

from __future__ import annotations

import re

from ..errors import DtdSyntaxError
from ..regex import parse_regex
from .dtd import PCDATA, ContentType, Dtd
from .sdtd import SpecializedDtd, TaggedName

_ELEMENT_RE = re.compile(
    r"<!ELEMENT\s+([A-Za-z_][A-Za-z0-9_.\-]*)\s+(EMPTY|ANY|\(.*?\)[*+?]?)\s*>",
    re.DOTALL,
)
_ATTLIST_RE = re.compile(
    r"<!ATTLIST\s+([A-Za-z_][A-Za-z0-9_.\-]*)\s+(.*?)>",
    re.DOTALL,
)
_ATTDEF_RE = re.compile(
    r"([A-Za-z_][A-Za-z0-9_.\-]*)\s+"
    r"(CDATA|ID|IDREFS|IDREF|NMTOKEN|ENTITY|ENTITIES|\([^)]*\))\s+"
    r"(#REQUIRED|#IMPLIED|#FIXED\s+(?:\"[^\"]*\"|'[^']*')"
    r"|\"[^\"]*\"|'[^']*')",
    re.DOTALL,
)
_DOCTYPE_RE = re.compile(r"<!DOCTYPE\s+([A-Za-z_][A-Za-z0-9_.\-]*)")
_PAPER_DECL_RE = re.compile(
    r"<\s*([A-Za-z_][A-Za-z0-9_.\-]*(?:\^\d+)?)\s*:\s*([^>]*)>",
    re.DOTALL,
)


def _parse_content(name: str, raw: str, declared: list[str]) -> ContentType:
    text = raw.strip()
    if text.upper() == "EMPTY":
        raise DtdSyntaxError(
            f"{name}: EMPTY elements are outside the paper's model "
            "(use () for empty content)"
        )
    if text.upper() == "ANY":
        # Remark 1 of the paper: ANY is a macro for (n1 | ... | nk)*.
        # Expanded after all declarations are read; mark with None via
        # a sentinel handled by the caller.
        return PCDATA if not declared else parse_regex(
            "(" + " | ".join(declared) + ")*"
        )
    if "#PCDATA" in text:
        stripped = text.strip("() \t\n")
        if stripped != "#PCDATA":
            raise DtdSyntaxError(
                f"{name}: mixed content {text!r} is outside the paper's model"
            )
        return PCDATA
    return parse_regex(text)


def _parse_attdef(element_name: str, raw: str):
    """One attribute definition of an ATTLIST body."""
    from .attributes import AttributeDecl, AttributeKind, DefaultMode

    attr_name, raw_kind, raw_default = raw
    if raw_kind.startswith("("):
        kind = AttributeKind.ENUMERATED
        enumeration = tuple(
            token.strip() for token in raw_kind[1:-1].split("|")
        )
    else:
        kind = AttributeKind(raw_kind)
        enumeration = ()
    default_value: str | None = None
    if raw_default == "#REQUIRED":
        mode = DefaultMode.REQUIRED
    elif raw_default == "#IMPLIED":
        mode = DefaultMode.IMPLIED
    elif raw_default.startswith("#FIXED"):
        mode = DefaultMode.FIXED
        default_value = raw_default[len("#FIXED"):].strip()[1:-1]
    else:
        mode = DefaultMode.DEFAULT
        default_value = raw_default[1:-1]
    return AttributeDecl(attr_name, kind, mode, enumeration, default_value)


def _parse_attlists(text: str, declared: set[str]):
    """All ``<!ATTLIST>`` declarations of a DTD text."""
    from .attributes import check_attribute_table

    table: dict[str, dict] = {}
    for element_name, body in _ATTLIST_RE.findall(text):
        if element_name not in declared:
            raise DtdSyntaxError(
                f"ATTLIST for undeclared element {element_name!r}"
            )
        declarations = table.setdefault(element_name, {})
        matched_any = False
        for attdef in _ATTDEF_RE.findall(body):
            matched_any = True
            decl = _parse_attdef(element_name, attdef)
            declarations[decl.name] = decl
        if not matched_any:
            raise DtdSyntaxError(
                f"empty or malformed ATTLIST for {element_name!r}"
            )
    check_attribute_table(table)
    return table


def parse_dtd(text: str, root: str | None = None) -> Dtd:
    """Parse standard ``<!ELEMENT>`` (and ``<!ATTLIST>``) declarations.

    ``root`` overrides the document type; otherwise it is taken from a
    ``<!DOCTYPE name [...]>`` wrapper when present.
    """
    declarations = _ELEMENT_RE.findall(text)
    if not declarations:
        raise DtdSyntaxError("no <!ELEMENT> declarations found")
    names = [name for name, _ in declarations]
    types: dict[str, ContentType] = {}
    for name, raw in declarations:
        if name in types:
            raise DtdSyntaxError(f"duplicate declaration for {name!r}")
        types[name] = _parse_content(name, raw, names)
    if root is None:
        doctype = _DOCTYPE_RE.search(text)
        if doctype:
            root = doctype.group(1)
    attributes = _parse_attlists(text, set(types))
    result = Dtd(types, root, attributes)
    result.check_consistency()
    return result


def _split_key(raw: str) -> TaggedName:
    if "^" in raw:
        name, _, tag = raw.partition("^")
        return (name, int(tag))
    return (raw, 0)


def parse_paper_dtd(text: str, root: str | None = None) -> Dtd:
    """Parse the paper's ``{<name : model> ...}`` notation into a DTD.

    The *first* declaration is taken as the document type unless
    ``root`` is given.  Raises when the text uses specialization tags
    (parse those with :func:`parse_paper_sdtd`).
    """
    sdtd = parse_paper_sdtd(text, root)
    if not sdtd.is_plain():
        raise DtdSyntaxError(
            "text declares specialized types; use parse_paper_sdtd"
        )
    return sdtd.to_plain()


def parse_paper_sdtd(text: str, root: str | TaggedName | None = None) -> SpecializedDtd:
    """Parse the paper's notation into a :class:`SpecializedDtd`."""
    declarations = _PAPER_DECL_RE.findall(text)
    if not declarations:
        raise DtdSyntaxError("no <name : model> declarations found")
    types: dict[TaggedName, ContentType] = {}
    order: list[TaggedName] = []
    for raw_key, raw_model in declarations:
        key = _split_key(raw_key)
        if key in types:
            raise DtdSyntaxError(f"duplicate declaration for {raw_key!r}")
        model = raw_model.strip()
        if model.upper() in ("#PCDATA", "PCDATA"):
            types[key] = PCDATA
        else:
            types[key] = parse_regex(model)
        order.append(key)
    if root is None:
        root_key = order[0]
    elif isinstance(root, str):
        root_key = _split_key(root)
    else:
        root_key = root
    result = SpecializedDtd(types, root_key)
    result.check_consistency()
    return result
