"""Validation: does a document satisfy a (specialized) DTD?

* :func:`validate_element` / :func:`validate_document` implement
  ``e |= D`` of Definition 2.3 and produce a report with the precise
  location of every violation.
* :func:`satisfies_sdtd` implements s-DTD satisfaction.  Definition
  3.10 as literally written checks only the *image* of each content
  model, which would make specialization tags vacuous; we implement the
  intended tree-automaton semantics -- there must exist an assignment
  of tags to every element such that each element's tagged child
  sequence is in the tagged content model of its assigned
  specialization -- computed bottom-up over sets of admissible tags.
  The literal reading is also available as :func:`satisfies_sdtd_image`
  so the difference can be demonstrated (see DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ValidationError
from ..regex import Regex, to_dfa
from ..xmlmodel import Document, Element
from .dtd import Dtd, Pcdata
from .sdtd import SpecializedDtd, format_tagged


@dataclass
class Violation:
    """A single validation failure, with the element path for debugging."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


@dataclass
class ValidationReport:
    """Outcome of a validation run."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, path: str, message: str) -> None:
        self.violations.append(Violation(path, message))

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return "valid"
        return "\n".join(str(v) for v in self.violations)


def validate_element(element: Element, dtd: Dtd) -> ValidationReport:
    """Check ``element |= dtd`` per Definition 2.3; full report."""
    report = ValidationReport()
    _validate(element, dtd, element.name, report)
    return report


def _validate(element: Element, dtd: Dtd, path: str, report: ValidationReport) -> None:
    if element.name not in dtd:
        report.add(path, f"element name {element.name!r} is not declared")
        return
    declared = dtd.type_of(element.name)
    if element.is_pcdata:
        if not isinstance(declared, Pcdata):
            report.add(
                path,
                f"character content but {element.name!r} is declared "
                f"with a content model",
            )
        return
    if isinstance(declared, Pcdata):
        # Definition 2.3 demands string content for PCDATA types; an
        # element-content node (even with zero children) violates it.
        report.add(
            path,
            f"element content but {element.name!r} is declared #PCDATA",
        )
        return
    word = [(child.name, 0) for child in element.children]
    if not to_dfa(declared).accepts(word):
        found = ", ".join(child.name for child in element.children) or "(empty)"
        report.add(
            path,
            f"children [{found}] do not match content model of "
            f"{element.name!r}",
        )
    for index, child in enumerate(element.children):
        _validate(child, dtd, f"{path}/{child.name}[{index}]", report)


def validate_document(document: Document, dtd: Dtd) -> ValidationReport:
    """Check a whole document: root type, unique IDs, ``|=``, and --
    when the DTD declares ATTLISTs -- the Appendix A attribute rules."""
    report = ValidationReport()
    if dtd.root is not None and document.root_type != dtd.root:
        report.add(
            document.root_type,
            f"document type is {document.root_type!r}, DTD requires {dtd.root!r}",
        )
    for duplicate in document.check_unique_ids():
        report.add(document.root_type, f"duplicate ID {duplicate!r}")
    inner = validate_element(document.root, dtd)
    report.violations.extend(inner.violations)
    if dtd.attributes:
        from .attributes import validate_attributes

        attr_report = validate_attributes(document, dtd.attributes)
        report.violations.extend(attr_report.violations)
    return report


def require_valid(document: Document, dtd: Dtd) -> None:
    """Raise :class:`ValidationError` unless the document is valid."""
    report = validate_document(document, dtd)
    if not report.ok:
        raise ValidationError(str(report))


# ---------------------------------------------------------------------------
# Specialized DTD satisfaction (tree-automaton semantics)
# ---------------------------------------------------------------------------


def admissible_tags(element: Element, sdtd: SpecializedDtd) -> frozenset[int]:
    """The set of tags ``i`` such that the subtree can be typed as ``n^i``.

    Bottom-up: compute each child's admissible tag set, then test the
    tagged content model by simulating its Glushkov DFA where at each
    child position any admissible tagged letter may be consumed.
    """
    child_sets: list[frozenset[int]] = [
        admissible_tags(child, sdtd) for child in element.children
    ]
    result: set[int] = set()
    for name, tag in sdtd.specializations(element.name):
        content = sdtd.types[(name, tag)]
        if element.is_pcdata:
            if isinstance(content, Pcdata):
                result.add(tag)
            continue
        if isinstance(content, Pcdata):
            continue
        if _children_can_match(element, child_sets, content):
            result.add(tag)
    return frozenset(result)


def _children_can_match(
    element: Element,
    child_sets: list[frozenset[int]],
    content: Regex,
) -> bool:
    """NFA-over-sets simulation: can the children be tagged to match?"""
    dfa = to_dfa(content)
    states: set[int] = {dfa.start}
    for child, tags in zip(element.children, child_sets):
        next_states: set[int] = set()
        for state in states:
            for tag in tags:
                target = dfa.step(state, (child.name, tag))
                if target is not None:
                    next_states.add(target)
        if not next_states:
            return False
        states = next_states
    return any(state in dfa.accepting for state in states)


def satisfies_sdtd(element: Element, sdtd: SpecializedDtd) -> bool:
    """s-DTD satisfaction under tree-automaton semantics.

    True when some consistent assignment of specialization tags to the
    whole subtree exists, with the root assigned the s-DTD's root
    specialization (or any specialization of the root name when the
    s-DTD's root is None).
    """
    tags = admissible_tags(element, sdtd)
    if sdtd.root is None:
        return bool(tags)
    root_name, root_tag = sdtd.root
    return element.name == root_name and root_tag in tags


def satisfies_sdtd_image(element: Element, sdtd: SpecializedDtd) -> bool:
    """Definition 3.10 read literally: per-element image check only.

    Each element needs *some* specialization of its name whose content
    model's image accepts the children's (untagged) names; tags impose
    no cross-level consistency.  Provided to demonstrate why the
    literal reading is too weak (tests assert it accepts documents the
    tree-automaton semantics rejects).
    """
    from ..regex import image as regex_image

    if element.name not in sdtd.base_names:
        return False
    matched = False
    for key in sdtd.specializations(element.name):
        content = sdtd.types[key]
        if element.is_pcdata:
            if isinstance(content, Pcdata):
                matched = True
                break
            continue
        if isinstance(content, Pcdata):
            continue
        word = [(child.name, 0) for child in element.children]
        if to_dfa(regex_image(content)).accepts(word):
            matched = True
            break
    if not matched:
        return False
    return all(satisfies_sdtd_image(child, sdtd) for child in element.children)


def validate_sdtd(element: Element, sdtd: SpecializedDtd) -> ValidationReport:
    """Report-producing wrapper around :func:`satisfies_sdtd`.

    Reports the shallowest elements whose subtree admits no
    specialization (an element may be locally fine but fail because of
    its descendants; we point at the smallest failing subtree).
    """
    report = ValidationReport()
    _locate_sdtd_failures(element, sdtd, element.name, report)
    if report.ok and not satisfies_sdtd(element, sdtd):
        root_req = format_tagged(sdtd.root) if sdtd.root else "(any)"
        report.add(
            element.name,
            f"root cannot be typed as {root_req}",
        )
    return report


def _locate_sdtd_failures(
    element: Element,
    sdtd: SpecializedDtd,
    path: str,
    report: ValidationReport,
) -> None:
    if admissible_tags(element, sdtd):
        return
    children_ok = all(
        admissible_tags(child, sdtd) for child in element.children
    )
    if children_ok:
        report.add(
            path,
            f"no specialization of {element.name!r} types this subtree",
        )
        return
    for index, child in enumerate(element.children):
        _locate_sdtd_failures(
            child, sdtd, f"{path}/{child.name}[{index}]", report
        )
