"""Plain DTDs (Definition 2.2).

A DTD maps element names to types, where a type is either PCDATA or a
regular expression over names.  A :class:`Dtd` additionally records the
*document type* -- the required root name (Definition 2.4) -- which is
optional because intermediate inference results are name-type maps
without a designated root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..errors import DtdConsistencyError, UnknownNameError
from ..regex import Regex, names as regex_names, parse_regex, to_string


@dataclass(frozen=True)
class Pcdata:
    """The PCDATA type marker: character content."""

    def __str__(self) -> str:
        return "#PCDATA"


#: A type in a DTD: either character content or a content model.
ContentType = Regex | Pcdata

PCDATA = Pcdata()


def is_pcdata_type(content: ContentType) -> bool:
    """True when the type is character content."""
    return isinstance(content, Pcdata)


@dataclass
class Dtd:
    """A Document Type Definition: ``{<n : type(n)>}`` plus a root name.

    ``types`` maps each declared element name to its type.  ``root``
    names the document type; ``None`` for "any declared name" (useful
    for intermediate results).  ``attributes`` is the Appendix A layer
    (ATTLIST declarations per element name); empty under the paper's
    core model.
    """

    types: dict[str, ContentType]
    root: str | None = None
    #: element name -> attribute name -> AttributeDecl (Appendix A)
    attributes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.root is not None and self.root not in self.types:
            raise DtdConsistencyError(
                f"root {self.root!r} is not a declared element name"
            )
        undeclared = set(self.attributes) - set(self.types)
        if undeclared:
            raise DtdConsistencyError(
                f"ATTLIST for undeclared elements: {sorted(undeclared)}"
            )

    @property
    def names(self) -> frozenset[str]:
        """All declared element names."""
        return frozenset(self.types)

    def type_of(self, name: str) -> ContentType:
        """The declared type of ``name``; raises for unknown names."""
        try:
            return self.types[name]
        except KeyError:
            raise UnknownNameError(f"element name {name!r} is not declared")

    def __contains__(self, name: str) -> bool:
        return name in self.types

    def __iter__(self) -> Iterator[str]:
        return iter(self.types)

    def referenced_names(self, name: str) -> frozenset[str]:
        """Names occurring in the content model of ``name``."""
        content = self.type_of(name)
        if isinstance(content, Pcdata):
            return frozenset()
        return regex_names(content)

    def undeclared_references(self) -> dict[str, frozenset[str]]:
        """For each name, the referenced names that are not declared.

        A well-formed DTD has none (XML requires every referenced name
        to be declared).
        """
        problems: dict[str, frozenset[str]] = {}
        for name in self.types:
            missing = self.referenced_names(name) - self.names
            if missing:
                problems[name] = missing
        return problems

    def check_consistency(self) -> None:
        """Raise :class:`DtdConsistencyError` on undeclared references."""
        problems = self.undeclared_references()
        if problems:
            details = "; ".join(
                f"{name} references {sorted(missing)}"
                for name, missing in sorted(problems.items())
            )
            raise DtdConsistencyError(f"undeclared names: {details}")

    def with_root(self, root: str) -> "Dtd":
        """A copy of this DTD with the given document type."""
        return Dtd(dict(self.types), root, dict(self.attributes))

    def copy(self) -> "Dtd":
        """A shallow copy (types are immutable; the dicts are fresh)."""
        return Dtd(dict(self.types), self.root, dict(self.attributes))

    def __str__(self) -> str:
        lines = []
        for name, content in self.types.items():
            rendered = "#PCDATA" if isinstance(content, Pcdata) else to_string(content)
            marker = "(root) " if name == self.root else ""
            lines.append(f"<{marker}{name} : {rendered}>")
        return "{" + "\n ".join(lines) + "}"


def dtd(declarations: Mapping[str, str | ContentType], root: str | None = None) -> Dtd:
    """Convenience constructor from content-model strings.

    >>> d = dtd({"professor": "name, (journal | conference)*",
    ...          "name": PCDATA, "journal": "()", "conference": "()"},
    ...         root="professor")
    """
    types: dict[str, ContentType] = {}
    for name, content in declarations.items():
        if isinstance(content, str):
            if content.strip().upper() == "#PCDATA":
                types[name] = PCDATA
            else:
                types[name] = parse_regex(content)
        else:
            types[name] = content
    result = Dtd(types, root)
    result.check_consistency()
    return result
