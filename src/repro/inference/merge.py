"""Algorithm Merge (Section 4.3): specialized DTD -> plain DTD.

Plain DTDs have no tags, so all specializations of a name are imaged
(Definition 3.9) and unioned.  Whenever two types actually merge the
algorithm signals it, "since merging inadvertently introduces
non-tightness" -- the view-inference module surfaces these signals to
the user (Example 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..dtd import Dtd, Pcdata, SpecializedDtd
from ..errors import DtdConsistencyError
from ..regex import Regex, alt, image, is_equivalent, simplify_deep


@dataclass
class MergeResult:
    """A merged plain DTD plus the non-tightness signals."""

    dtd: Dtd
    #: names whose specializations were unioned (possible tightness loss)
    merged_names: list[str] = field(default_factory=list)
    #: the subset of merged names where the union is a strict loss
    #: (the merged type accepts sequences no single specialization did,
    #: or distinct specializations had genuinely different languages)
    lossy_names: list[str] = field(default_factory=list)

    @property
    def lossless(self) -> bool:
        """True when no genuinely different types were merged."""
        return not self.lossy_names


def merge_sdtd(sdtd: SpecializedDtd, simplify: bool = True) -> MergeResult:
    """Run Algorithm Merge.

    Raises :class:`DtdConsistencyError` if a name mixes PCDATA and
    element-content specializations (impossible for s-DTDs produced by
    the tightening algorithm, which specializes a single base type).
    """
    with obs.span("inference.merge") as sp:
        grouped: dict[str, list] = {}
        for (name, _tag), content in sorted(sdtd.types.items()):
            grouped.setdefault(name, []).append(content)

        types: dict[str, object] = {}
        merged_names: list[str] = []
        lossy_names: list[str] = []
        for name, contents in grouped.items():
            kinds = {isinstance(content, Pcdata) for content in contents}
            if kinds == {True, False}:
                raise DtdConsistencyError(
                    f"{name!r} mixes PCDATA and element-content specializations"
                )
            if kinds == {True}:
                types[name] = contents[0]
                continue
            images: list[Regex] = [image(content) for content in contents]
            union = alt(*images)
            if len(contents) > 1:
                merged_names.append(name)
                if any(not is_equivalent(images[0], img) for img in images[1:]):
                    lossy_names.append(name)
            types[name] = simplify_deep(union) if simplify else union

        root = sdtd.root[0] if sdtd.root is not None else None
        dtd = Dtd(types, root)
        dtd.check_consistency()
        sp.set_attribute("names", len(grouped))
        sp.set_attribute("merged", len(merged_names))
        sp.set_attribute("lossy", len(lossy_names))
    return MergeResult(dtd, merged_names, lossy_names)
