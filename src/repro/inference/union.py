"""View DTD inference for multi-source union views.

Section 1 motivates mediators that integrate many sources ("a view
that unions the structures exported by 100 sites") -- TSIMMIS could
only do this *loosely*, with no structure information at all.  With
DTDs the union view gets a precise description: each branch is
inferred against its own source DTD, and the branches' specialized
types are combined.

Name collisions across sources are where specialized DTDs shine: if
two sources both declare ``publication`` with different types, the
union s-DTD keeps them apart as ``publication^i`` / ``publication^j``
(collapsing them only when genuinely equivalent), while the merged
plain DTD unions them and signals the tightness loss -- making the
intro's "loose integration" story measurable.

Union semantics: the view's content is branch 1's picks followed by
branch 2's picks, etc. (each branch in its own document order), so the
view list type is the concatenation of the branch list types.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtd import Dtd, Pcdata, SpecializedDtd, TaggedName, prune_unreachable_sdtd
from ..errors import QueryAnalysisError
from ..regex import Regex, Sym, concat, rename
from ..xmas import Query
from .classify import Classification, InferenceMode
from .collapse import collapse_equivalent
from .listtype import infer_list_type
from .merge import MergeResult, merge_sdtd
from .simplifytype import simplify_list_type, simplify_type
from .tighten import tighten


@dataclass
class UnionBranch:
    """One branch of a union view: a query over one source DTD."""

    dtd: Dtd
    query: Query


@dataclass
class UnionInferenceResult:
    """The inferred description of a union view.

    Mirrors :class:`repro.inference.pipeline.InferenceResult` for the
    union case; ``branch_list_types`` holds the per-branch list types
    (over the combined key namespace) whose concatenation is
    ``list_type``.
    """

    view_name: str
    sdtd: SpecializedDtd
    dtd: Dtd
    list_type: Regex
    branch_list_types: list[Regex]
    classification: Classification
    merge: MergeResult
    mode: InferenceMode


def _combine_classifications(parts: list[Classification]) -> Classification:
    if all(c is Classification.UNSATISFIABLE for c in parts):
        return Classification.UNSATISFIABLE
    if any(c is Classification.VALID for c in parts):
        return Classification.VALID
    return Classification.SATISFIABLE


def infer_union_view_dtd(
    branches: list[UnionBranch],
    view_name: str,
    mode: InferenceMode = InferenceMode.EXACT,
) -> UnionInferenceResult:
    """Infer the (specialized and plain) DTD of a union view."""
    if not branches:
        raise QueryAnalysisError("a union view needs at least one branch")
    for branch in branches:
        if view_name in branch.dtd:
            raise QueryAnalysisError(
                f"view name {view_name!r} collides with a source element "
                "name"
            )

    combined_types: dict[TaggedName, object] = {}
    branch_list_types: list[Regex] = []
    classifications: list[Classification] = []
    counters: dict[str, int] = {}

    for branch in branches:
        result = tighten(branch.dtd, branch.query, mode)
        list_type = infer_list_type(branch.dtd, branch.query, result, mode)
        classifications.append(result.classification)

        # Re-tag this branch's keys into the combined namespace so that
        # same-named types from different sources stay distinct until
        # the equivalence collapse proves them equal.
        remap: dict[TaggedName, Sym] = {}
        for key in sorted(result.sdtd.types):
            name = key[0]
            counters[name] = counters.get(name, 0) + 1
            remap[key] = Sym(name, counters[name])
        for key, content in result.sdtd.types.items():
            target = remap[key].key()
            combined_types[target] = (
                content
                if isinstance(content, Pcdata)
                else rename(content, remap)
            )
        branch_list_types.append(rename(list_type, remap))

    view_key = (view_name, 0)
    combined_types[view_key] = concat(*branch_list_types)
    combined = SpecializedDtd(combined_types, view_key)
    combined.check_consistency()

    # Prune first so the collapse renumbers only the surviving keys
    # (dense tags in the final s-DTD).
    combined = prune_unreachable_sdtd(combined)
    collapsed, final = collapse_equivalent(combined)
    collapsed = prune_unreachable_sdtd(collapsed)
    # Simplify for readability (language-preserving).
    collapsed = SpecializedDtd(
        {
            key: (
                content
                if isinstance(content, Pcdata)
                else simplify_type(content)
            )
            for key, content in collapsed.types.items()
        },
        collapsed.root,
    )
    collapsed.check_consistency()

    merge = merge_sdtd(collapsed)
    view_type = collapsed.types[final[view_key]]
    final_list = (
        view_type
        if isinstance(view_type, Pcdata)
        else simplify_list_type(view_type)
    )
    renamed_branches = [
        simplify_list_type(
            rename(lt, {k: Sym(*v) for k, v in final.items()})
        )
        for lt in branch_list_types
    ]
    return UnionInferenceResult(
        view_name=view_name,
        sdtd=collapsed,
        dtd=merge.dtd,
        list_type=final_list,
        branch_list_types=renamed_branches,
        classification=_combine_classifications(classifications),
        merge=merge,
        mode=mode,
    )


def evaluate_union(
    branches: list[UnionBranch],
    documents: list[list],
    view_name: str,
):
    """Evaluate a union view: branch picks concatenated in branch order.

    ``documents[i]`` is the document list of branch ``i``'s source.
    """
    from ..xmas import picked_elements
    from ..xmlmodel import Document, Element, fresh_id

    picks = []
    for branch, docs in zip(branches, documents):
        for doc in docs:
            picks.extend(picked_elements(branch.query, doc))
    root = Element(
        view_name,
        [pick.deep_copy(fresh_ids=True) for pick in picks],
        fresh_id(),
    )
    return Document(root)
