"""The end-to-end View DTD Inference module (Figure 1's component).

``infer_view_dtd`` ties the pieces together: tighten the source types
against the query's tree condition (Section 4.2), infer the result-list
type (Section 4.4), assemble the specialized view DTD, and merge it to
a plain view DTD (Section 4.3) with non-tightness signals.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..dtd import (
    Dtd,
    Pcdata,
    SpecializedDtd,
    prune_unreachable_sdtd,
)
from ..errors import QueryAnalysisError
from ..regex import Regex, is_equivalent, to_string
from ..xmas import Query
from .classify import Classification, InferenceMode
from .listtype import infer_list_type
from .merge import MergeResult, merge_sdtd
from .tighten import TightenResult, tighten


@dataclass
class InferenceResult:
    """Everything the View DTD Inference module derives for a view.

    Attributes:
        query: the view definition.
        sdtd: the specialized view DTD (root = the view's top element);
            this is the tight description -- pass it to stacked
            mediators and to the DTD-based query interface.
        dtd: the plain view DTD obtained by Algorithm Merge.
        list_type: the content model of the view's top element, over
            specialized keys.
        classification: valid / satisfiable / unsatisfiable of the
            view's condition against the source DTD (Section 4.2's
            side effect; UNSATISFIABLE means the view is provably
            empty).
        merge: the Merge run, including non-tightness signals.
        tightening: the full tightening result (per-node typings).
    """

    query: Query
    sdtd: SpecializedDtd
    dtd: Dtd
    list_type: Regex
    classification: Classification
    merge: MergeResult
    tightening: TightenResult
    mode: InferenceMode

    @property
    def is_empty_view(self) -> bool:
        """True when no valid source document yields a non-empty view."""
        return self.classification is Classification.UNSATISFIABLE

    def diagnostics(self):
        """Static diagnostics for the inferred view DTDs.

        Runs the DTD rules over the plain view DTD, the s-DTD hygiene
        rules over the specialized one, and the view rules over this
        result (empty view, lossy merge) -- the lint subsystem's third
        integration layer.  Computed on demand; returns a
        :class:`repro.lint.DiagnosticReport`.
        """
        from ..lint import run_lint

        return run_lint(
            dtd=self.dtd,
            sdtd=self.sdtd,
            inference=self,
            mode=self.mode,
            origin=self.query.view_name,
        )

    def xml_dtd(self):
        """The plain view DTD with XML-1.0 deterministic content models.

        Inferred content models are correct regular expressions but
        not always one-unambiguous as XML requires; this repairs them
        where possible.  Returns ``(dtd, report)`` -- see
        :func:`repro.dtd.determinize.xmlize_dtd`.
        """
        from ..dtd import xmlize_dtd

        return xmlize_dtd(self.dtd)

    def describe(self) -> str:
        """A human-readable report (what the query interface displays)."""
        lines = [
            f"view {self.query.view_name!r}: {self.classification.value}",
            f"list type: {to_string(self.list_type)}",
            "specialized view DTD:",
            str(self.sdtd),
            "plain view DTD (after Merge):",
            str(self.dtd),
        ]
        if self.merge.merged_names:
            lines.append(
                "merge signals (possible non-tightness): "
                + ", ".join(self.merge.merged_names)
            )
        return "\n".join(lines)


def infer_view_dtd(
    source_dtd: Dtd,
    query: Query,
    mode: InferenceMode = InferenceMode.EXACT,
) -> InferenceResult:
    """Infer the view DTD of a pick-element query over a source DTD.

    Raises :class:`repro.errors.QueryAnalysisError` for queries outside
    the supported class (recursive path steps, several pick nodes) and
    when the view name collides with a source element name.
    """
    if query.view_name in source_dtd:
        raise QueryAnalysisError(
            f"view name {query.view_name!r} collides with a source "
            "element name"
        )
    with obs.span("inference.infer_view_dtd") as sp:
        sp.set_attribute("view", query.view_name)
        sp.set_attribute("mode", mode.value)
        tightening = tighten(source_dtd, query, mode)
        list_type = infer_list_type(source_dtd, query, tightening, mode)

        from .simplifytype import simplify_type

        view_key = (query.view_name, 0)
        types: dict = {view_key: list_type}
        for key, content in tightening.sdtd.types.items():
            types[key] = (
                content
                if isinstance(content, Pcdata)
                else simplify_type(content)
            )
        sdtd = SpecializedDtd(types, view_key)
        sdtd = prune_unreachable_sdtd(sdtd)
        sdtd.check_consistency()

        merge = merge_sdtd(sdtd)
        if source_dtd.attributes:
            # Appendix A layer: attributes never affect content models, so
            # the view inherits the source ATTLISTs of surviving names.
            from ..dtd.attributes import carry_over_attributes

            merge.dtd = carry_over_attributes(source_dtd, merge.dtd)
        classification = _overall_classification(tightening, list_type)
        sp.set_attribute("classification", classification.value)
        return InferenceResult(
            query=query,
            sdtd=sdtd,
            dtd=merge.dtd,
            list_type=list_type,
            classification=classification,
            merge=merge,
            tightening=tightening,
            mode=mode,
        )


def _overall_classification(
    tightening: TightenResult, list_type: Regex
) -> Classification:
    """Combine the root condition's class with root-name feasibility.

    The tightening classification is per condition tree; the list type
    additionally accounts for the document type (a root test that can
    never match the document type makes the view empty).
    """
    from ..regex import EPSILON

    if is_equivalent(list_type, EPSILON):
        return Classification.UNSATISFIABLE
    return tightening.classification
