"""Condition classification against a DTD (Section 4.2 side effect).

The tightening algorithm decides, for a tree condition and a source
DTD, whether the condition is

* ``VALID``        -- satisfied by *every* document satisfying the DTD,
* ``SATISFIABLE``  -- satisfied by some but (possibly) not all, or
* ``UNSATISFIABLE``-- satisfied by no valid document (the view is
  provably empty, so the mediator can answer without touching the
  source -- the query-simplifier benefit of Section 1).
"""

from __future__ import annotations

import enum


class Classification(enum.Enum):
    """Trichotomy of a condition with respect to a DTD."""

    VALID = "valid"
    SATISFIABLE = "satisfiable"
    UNSATISFIABLE = "unsatisfiable"

    def __and__(self, other: "Classification") -> "Classification":
        """Combine conjunctively: the weaker of the two guarantees."""
        order = [
            Classification.VALID,
            Classification.SATISFIABLE,
            Classification.UNSATISFIABLE,
        ]
        return order[max(order.index(self), order.index(other))]

    @property
    def is_valid(self) -> bool:
        return self is Classification.VALID

    @property
    def is_satisfiable(self) -> bool:
        return self is not Classification.UNSATISFIABLE


class InferenceMode(enum.Enum):
    """How conservatively validity is decided (DESIGN.md §3).

    ``EXACT`` uses language-equivalence checks (a refinement that did
    not change the language proves the condition holds on every
    instance).  ``PAPER`` reproduces the paper's cheaper structural
    rule -- any disjunct elimination or star refinement downgrades to
    SATISFIABLE -- which is what makes Example 4.4 produce
    ``(title, author*)*`` where the exact mode proves the tighter
    ``(title, author*)+``.
    """

    EXACT = "exact"
    PAPER = "paper"
