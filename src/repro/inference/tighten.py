"""The tightening algorithm (Section 4.2).

Given a source DTD and a (non-recursive, wildcard-expanded) tree
condition, compute the specialized types of every element that can
match a condition node, by recursively refining the source types with
the (tagged) child conditions, and classify every node as
valid / satisfiable / unsatisfiable.

Differences from the paper's pseudo-code, per DESIGN.md §3:

* Every condition node initially receives a *fresh* specialization tag
  for each name it can match; tags whose type is equivalent to the
  base type (or to another specialization) are collapsed afterwards by
  :func:`repro.inference.collapse.collapse_equivalent` -- this is the
  paper's footnote 8 ("publication^2 has essentially the same type
  with publication^1") made systematic, and it also keeps sequential
  same-name refinement sound (two sibling conditions always demand two
  distinct occurrences, Example 4.2).
* Validity is decided exactly (language equivalence) in ``EXACT`` mode
  and by the paper's structural rule in ``PAPER`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..dtd import Dtd, PCDATA, Pcdata, SpecializedDtd, TaggedName
from ..regex import (
    Empty,
    Regex,
    Sym,
    alt,
    image,
    is_equivalent,
    names as regex_names,
    symbols,
)
from ..xmas import Condition, Query
from ..xmas.analysis import check_inference_applicable, resolve_against_dtd
from .classify import Classification, InferenceMode
from .refine import RefineTrace, refine


@dataclass
class NodeTyping:
    """Inference facts for one condition node.

    ``keys[name]`` is the specialized type key assigned to elements of
    ``name`` matching this node; names missing from ``keys`` cannot
    match (infeasible).  ``classes[name]`` says whether *every* element
    of ``name`` matches (VALID) or only some (SATISFIABLE).
    """

    node: Condition
    keys: dict[str, TaggedName] = field(default_factory=dict)
    classes: dict[str, Classification] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        """Can any element match this node?"""
        return bool(self.keys)

    @property
    def classification(self) -> Classification:
        """The node's combined classification over its feasible names.

        UNSATISFIABLE when no name is feasible; VALID when every
        feasible name is valid (an element *of a feasible name* always
        matches); SATISFIABLE otherwise.
        """
        if not self.keys:
            return Classification.UNSATISFIABLE
        if all(c.is_valid for c in self.classes.values()):
            return Classification.VALID
        return Classification.SATISFIABLE


@dataclass
class TightenResult:
    """Output of the tightening algorithm.

    ``sdtd`` declares every specialized type created plus the untagged
    source types they reference (the ``pull`` step of the paper's
    Algorithm Tighten).  ``typings`` maps each condition node (by
    ``id``) to its :class:`NodeTyping`; ``root`` is the root node's
    typing, whose :attr:`NodeTyping.classification` is the
    valid/satisfiable/unsatisfiable side effect of Section 4.2.
    """

    sdtd: SpecializedDtd
    typings: dict[int, NodeTyping]
    root: NodeTyping
    mode: InferenceMode
    #: the query after wildcard expansion -- its condition nodes are the
    #: keys of ``typings`` (the caller's query may differ when
    #: wildcards were expanded)
    query: Query | None = None

    def typing_of(self, node: Condition) -> NodeTyping:
        """The typing computed for a given condition node."""
        return self.typings[id(node)]

    @property
    def classification(self) -> Classification:
        return self.root.classification


class _Tightener:
    def __init__(self, dtd: Dtd, mode: InferenceMode) -> None:
        self.dtd = dtd
        self.mode = mode
        self.types: dict[TaggedName, object] = {}
        self.typings: dict[int, NodeTyping] = {}
        self._counters: dict[str, int] = {}

    def fresh_key(self, name: str) -> TaggedName:
        self._counters[name] = self._counters.get(name, 0) + 1
        return (name, self._counters[name])

    def visit(self, node: Condition) -> NodeTyping:
        child_typings = [self.visit(child) for child in node.children]
        typing = NodeTyping(node)
        names = node.test.names
        if names is None:  # pragma: no cover - queries are pre-expanded
            names = tuple(sorted(self.dtd.names))
        for name in names:
            if name not in self.dtd:
                continue
            self._type_for_name(node, name, child_typings, typing)
        self.typings[id(node)] = typing
        return typing

    def _type_for_name(
        self,
        node: Condition,
        name: str,
        child_typings: list[NodeTyping],
        typing: NodeTyping,
    ) -> None:
        base = self.dtd.type_of(name)

        # Every matched condition node gets a fresh tag, even when its
        # type ends up identical to the base type: sequential
        # refinement needs distinct marks so that two same-name sibling
        # conditions demand two distinct occurrences (Example 4.2).
        # Equivalent tags are collapsed afterwards (footnote 8).

        # PCDATA value condition: the type itself is untouched, but the
        # value constraint means not every instance matches.
        if node.pcdata is not None:
            if isinstance(base, Pcdata):
                key = self.fresh_key(name)
                self.types[key] = PCDATA
                typing.keys[name] = key
                typing.classes[name] = Classification.SATISFIABLE
            return

        # Pure existence: the base type suffices and every instance
        # matches.
        if not node.children:
            key = self.fresh_key(name)
            self.types[key] = base
            typing.keys[name] = key
            typing.classes[name] = Classification.VALID
            return

        # Children required: a PCDATA-typed element can never match.
        if isinstance(base, Pcdata):
            return

        # Child conditions with no feasible name make this node
        # unsatisfiable for every name.
        if any(not ct.feasible for ct in child_typings):
            return

        trace = RefineTrace()
        current: Regex = base
        for ct in child_typings:
            targets = [
                Sym(key_name, tag) for key_name, (_, tag) in ct.keys.items()
            ]
            current = alt(
                *(refine(current, target, trace) for target in targets)
            )
            if isinstance(current, Empty):
                return

        key = self.fresh_key(name)
        self.types[key] = current
        typing.keys[name] = key
        typing.classes[name] = self._classify(
            base, current, child_typings, trace
        )

    def _classify(
        self,
        base: Regex,
        refined: Regex,
        child_typings: list[NodeTyping],
        trace: RefineTrace,
    ) -> Classification:
        children_valid = all(
            ct.classification.is_valid for ct in child_typings
        )
        if not children_valid:
            return Classification.SATISFIABLE
        if self.mode is InferenceMode.PAPER:
            # The paper's structural rule: any disjunct elimination or
            # star refinement means "not satisfied by all instances".
            if trace.narrowed:
                return Classification.SATISFIABLE
            return Classification.VALID
        # EXACT: the condition holds on every instance iff projecting
        # the marks away gives back the whole base language.
        if is_equivalent(image(refined), base):
            return Classification.VALID
        return Classification.SATISFIABLE

    def build_sdtd(self) -> SpecializedDtd:
        """Assemble the s-DTD: created types plus pulled base types."""
        types: dict[TaggedName, object] = dict(self.types)
        # The paper's ``pull``: every untagged name occurring in a
        # stored type (transitively, through the source DTD) gets its
        # original definition.
        pending: list[str] = []
        for content in self.types.values():
            if isinstance(content, Pcdata):
                continue
            pending.extend(
                sym.name for sym in symbols(content) if sym.tag == 0
            )
        seen: set[str] = set()
        while pending:
            name = pending.pop(0)
            if name in seen:
                continue
            seen.add(name)
            base = self.dtd.type_of(name)
            types[(name, 0)] = base
            if not isinstance(base, Pcdata):
                # sorted: frozenset iteration order varies across
                # processes (hash randomization); rendered output
                # must be reproducible.
                pending.extend(sorted(regex_names(base)))
        result = SpecializedDtd(types, None)
        result.check_consistency()
        return result


def tighten(
    dtd: Dtd,
    query: Query,
    mode: InferenceMode = InferenceMode.EXACT,
    collapse: bool = True,
    strict: bool = True,
) -> TightenResult:
    """Run Algorithm Tighten on a pick-element query.

    Preconditions (checked): the query has no recursive path steps and
    a single pick node; wildcards are expanded against the DTD.
    ``collapse`` folds equivalent specializations together
    (footnote 8); disable it to inspect the raw per-condition tags.
    ``strict=False`` tolerates undeclared names (they classify as
    unsatisfiable instead of raising -- the query-simplifier setting).
    """
    check_inference_applicable(query)
    with obs.span("inference.tighten") as sp:
        sp.set_attribute("view", query.view_name)
        resolved = resolve_against_dtd(query, dtd, strict=strict)
        tightener = _Tightener(dtd, mode)
        root_typing = tightener.visit(resolved.root)
        sdtd = tightener.build_sdtd()
        result = TightenResult(
            sdtd, tightener.typings, root_typing, mode, resolved
        )
        if collapse:
            from .collapse import collapse_result

            result = collapse_result(result)
        # The Section 4.2 side effect is the span's headline fact.
        sp.set_attribute("classification", result.classification.value)
        sp.set_attribute("specialized_types", len(result.sdtd.types))
    return result
