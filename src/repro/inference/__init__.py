"""View DTD inference -- the paper's primary contribution.

Components, by paper section:

* :func:`refine` -- type refinement with the ``(+)``/``||`` operators
  (Section 4.1, Definitions 4.1/4.2).
* :func:`tighten` -- Algorithm Tighten: specialized types for every
  condition node plus the valid/satisfiable/unsatisfiable side effect
  (Section 4.2).
* :func:`collapse_equivalent` -- systematic folding of equivalent
  specializations (footnote 8).
* :func:`merge_sdtd` -- Algorithm Merge: s-DTD to plain DTD with
  non-tightness signals (Section 4.3).
* :func:`infer_list_type` -- result-list type inference (Section 4.4,
  Appendix B) in EXACT and PAPER modes.
* :func:`infer_view_dtd` -- the end-to-end View DTD Inference module.
* :func:`naive_view_dtd` -- the Example 3.1 baseline.
* :mod:`repro.inference.quality` -- empirical soundness and tightness.
"""

from .classify import Classification, InferenceMode
from .collapse import collapse_equivalent, collapse_result, compute_equivalence
from .construct import ConstructInferenceResult, infer_construct_view_dtd
from .listtype import infer_list_type
from .merge import MergeResult, merge_sdtd
from .naive import naive_view_dtd
from .pipeline import InferenceResult, infer_view_dtd
from .quality import (
    LoosenessRow,
    SoundnessReport,
    StructuralTightnessProbe,
    check_soundness,
    looseness_report,
    structural_tightness_probe,
)
from .refine import RefineTrace, refine, refine_sequence
from .smallscope import (
    SmallScopeReport,
    enumerate_documents,
    enumerate_elements,
    enumerate_sdtd_elements,
    small_scope_analysis,
)
from .simplifytype import simplify_list_type, simplify_type
from .tighten import NodeTyping, TightenResult, tighten
from .union import (
    UnionBranch,
    UnionInferenceResult,
    evaluate_union,
    infer_union_view_dtd,
)

__all__ = [
    "Classification",
    "ConstructInferenceResult",
    "InferenceMode",
    "InferenceResult",
    "LoosenessRow",
    "MergeResult",
    "NodeTyping",
    "RefineTrace",
    "SmallScopeReport",
    "SoundnessReport",
    "StructuralTightnessProbe",
    "TightenResult",
    "UnionBranch",
    "UnionInferenceResult",
    "check_soundness",
    "evaluate_union",
    "collapse_equivalent",
    "enumerate_documents",
    "enumerate_elements",
    "enumerate_sdtd_elements",
    "collapse_result",
    "compute_equivalence",
    "infer_construct_view_dtd",
    "infer_list_type",
    "infer_union_view_dtd",
    "infer_view_dtd",
    "looseness_report",
    "merge_sdtd",
    "naive_view_dtd",
    "refine",
    "refine_sequence",
    "simplify_list_type",
    "simplify_type",
    "small_scope_analysis",
    "structural_tightness_probe",
    "tighten",
]
