"""The naive view-DTD inference baseline (Example 3.1).

The paper's strawman: declare the view's top element to contain any
mix of the pick names, copy the pick names' *unrefined* source types,
and drop unreferenced declarations.  Sound, but loose: no type
refinement, no disjunction removal, no order or cardinality discovery.
The experiments compare it against the tight pipeline (E1, E12).
"""

from __future__ import annotations

from ..dtd import Dtd, prune_unreachable
from ..errors import QueryAnalysisError
from ..regex import Regex, alt, plus, star, sym
from ..xmas import Query
from ..xmas.analysis import check_inference_applicable, pick_path, resolve_against_dtd


def naive_view_dtd(dtd: Dtd, query: Query, plus_list: bool = False) -> Dtd:
    """Example 3.1's naive algorithm.

    ``plus_list=True`` reproduces the paper's literal
    ``(professor | gradStudent)+`` list type; the default uses ``*``,
    because ``+`` is unsound (a view can be empty when no element
    qualifies -- see EXPERIMENTS.md E1).
    """
    check_inference_applicable(query)
    resolved = resolve_against_dtd(query, dtd)
    path = pick_path(resolved)
    pick_names = [
        name for name in (path.pick.test.names or ()) if name in dtd
    ]
    if not pick_names:
        raise QueryAnalysisError(
            "no pick name is declared in the source DTD"
        )
    disjunction: Regex = alt(*(sym(name) for name in pick_names))
    list_type = plus(disjunction) if plus_list else star(disjunction)
    if resolved.view_name in dtd:
        raise QueryAnalysisError(
            f"view name {resolved.view_name!r} collides with a source "
            "element name"
        )
    types: dict[str, object] = {resolved.view_name: list_type}
    types.update(dtd.types)
    view = Dtd(types, resolved.view_name)
    return prune_unreachable(view)
