"""View DTD inference for CONSTRUCT queries.

The paper's framework anticipated "more powerful view definition
languages"; this extends the inference to the CONSTRUCT subset of
:mod:`repro.xmas.construct`.  The template contributes the *structure*
of the view DTD directly (constructor elements have a known child
order), and the tightening algorithm types the variable slots: a slot
for variable ``V`` admits exactly the specialized keys the tightening
derived for ``V``'s condition node.

Soundness argument: every emitted row instantiates the template once,
with each slot holding one element that matched ``V``'s condition --
an element of one of the slot's keys.  Rows repeat zero or more times
(one per distinct binding projection), hence ``view : row*``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtd import (
    PCDATA,
    Dtd,
    Pcdata,
    SpecializedDtd,
    prune_unreachable_sdtd,
)
from ..errors import QueryAnalysisError
from ..regex import EPSILON, Regex, Sym, alt, concat, star
from ..xmas.construct import ConstructQuery, Slot, Template, Text
from .classify import Classification, InferenceMode
from .merge import MergeResult, merge_sdtd
from .simplifytype import simplify_type
from .tighten import TightenResult, tighten


@dataclass
class ConstructInferenceResult:
    """The inferred description of a CONSTRUCT view."""

    query: ConstructQuery
    sdtd: SpecializedDtd
    dtd: Dtd
    classification: Classification
    merge: MergeResult
    tightening: TightenResult
    mode: InferenceMode

    @property
    def is_empty_view(self) -> bool:
        return self.classification is Classification.UNSATISFIABLE


def _slot_typings(
    tightening: TightenResult, template: Template
) -> dict[str, list[Sym]]:
    """The specialized keys each template variable can bind."""
    by_variable: dict[str, list[Sym]] = {}
    for typing in tightening.typings.values():
        variable = typing.node.variable
        if variable is None:
            continue
        by_variable[variable] = [
            Sym(name, tag) for name, (_, tag) in sorted(typing.keys.items())
        ]
    return {
        variable: by_variable.get(variable, [])
        for variable in template.variables()
    }


def infer_construct_view_dtd(
    source_dtd: Dtd,
    query: ConstructQuery,
    mode: InferenceMode = InferenceMode.EXACT,
) -> ConstructInferenceResult:
    """Infer the (specialized and plain) DTD of a CONSTRUCT view."""
    template_names = query.template.template_names() | {query.view_name}
    collisions = sorted(template_names & source_dtd.names)
    if collisions:
        raise QueryAnalysisError(
            f"template names {collisions} collide with source element "
            "names"
        )
    if query.view_name in query.template.template_names():
        raise QueryAnalysisError(
            f"view name {query.view_name!r} is also a template element"
        )

    tightening = tighten(source_dtd, query.as_pick_query(), mode)
    slots = _slot_typings(tightening, query.template)
    unsatisfiable = (
        tightening.classification is Classification.UNSATISFIABLE
        or any(not keys for keys in slots.values())
    )

    types: dict = {}

    def declare(node: Template) -> None:
        key = (node.name, 0)
        if key in types:
            raise QueryAnalysisError(
                f"template element {node.name!r} declared twice with "
                "(potentially) different content"
            )
        if len(node.children) == 1 and isinstance(node.children[0], Text):
            types[key] = PCDATA
        else:
            parts: list[Regex] = []
            for child in node.children:
                if isinstance(child, Template):
                    parts.append(Sym(child.name))
                elif isinstance(child, Slot):
                    parts.append(alt(*slots[child.variable]))
            types[key] = concat(*parts)
        for child in node.children:
            if isinstance(child, Template):
                declare(child)

    declare(query.template)
    view_key = (query.view_name, 0)
    types[view_key] = (
        EPSILON if unsatisfiable else star(Sym(query.template.name))
    )
    for key, content in tightening.sdtd.types.items():
        types[key] = (
            content
            if isinstance(content, Pcdata)
            else simplify_type(content)
        )
    sdtd = SpecializedDtd(types, view_key)
    sdtd = prune_unreachable_sdtd(sdtd)
    sdtd.check_consistency()

    merge = merge_sdtd(sdtd)
    classification = (
        Classification.UNSATISFIABLE
        if unsatisfiable
        else tightening.classification
    )
    return ConstructInferenceResult(
        query=query,
        sdtd=sdtd,
        dtd=merge.dtd,
        classification=classification,
        merge=merge,
        tightening=tightening,
        mode=mode,
    )
