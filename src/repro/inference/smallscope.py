"""Small-scope exhaustive verification of inferred view DTDs.

Random testing (``quality.check_soundness``) samples; this module
*enumerates*: every valid source document whose content words stay
within per-name width caps, every element tree the inferred (s-)DTD
describes at the same scope.  Within the scope the results are exact:

* **soundness** (Definition 3.1) holds for *all* scoped documents, not
  just sampled ones;
* **structural tightness** (Definition 3.7) becomes checkable: the
  structural classes described by the view DTD at scope, minus the
  classes actually produced by the view over all scoped sources, is
  the *exact* non-tightness gap at that scope.  The paper conjectures
  the specialized view DTD has no such gap for non-recursive
  pick-element views (Section 3.3) -- experiment E20 verifies the
  conjecture exhaustively on the paper's workloads.

Scope caps: ``widths[name]`` bounds the length of the child word of
``name``-elements (an ``int`` applies to every name).  Enumeration is
exponential by nature; keep caps small (3-5) and schemas paper-sized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from ..dtd import Dtd, Pcdata, SpecializedDtd, TaggedName
from ..dtd.tightness import StructuralKey, structural_class_key
from ..regex import Regex, to_dfa
from ..xmas import Query, evaluate
from ..xmlmodel import Document, Element, fresh_id

Widths = dict[str, int] | int


def _width_of(widths: Widths, name: str, default: int = 3) -> int:
    if isinstance(widths, int):
        return widths
    return widths.get(name, widths.get("*", default))


def _words_up_to(model: Regex, max_length: int) -> list[tuple]:
    """All accepted letter sequences of length <= max_length (DFA BFS)."""
    dfa = to_dfa(model)
    letters = sorted(dfa.alphabet)
    results: list[tuple] = []
    frontier: list[tuple[int, tuple]] = [(dfa.start, ())]
    for _ in range(max_length + 1):
        next_frontier: list[tuple[int, tuple]] = []
        for state, word in frontier:
            if state in dfa.accepting:
                results.append(word)
            if len(word) == max_length:
                continue
            for letter in letters:
                target = dfa.transitions[state][letter]
                next_frontier.append((target, word + (letter,)))
        frontier = next_frontier
        if not frontier:
            break
    return results


def enumerate_elements(
    dtd: Dtd,
    name: str,
    widths: Widths = 3,
    string_pool: tuple[str, ...] = ("s",),
    _memo: dict | None = None,
) -> list[Element]:
    """All valid ``name``-elements within the scope (shapes, shared).

    The returned elements share subtrees; deep-copy with fresh IDs
    before assembling them into documents
    (:func:`enumerate_documents` does).
    """
    memo = _memo if _memo is not None else {}
    if name in memo:
        return memo[name]
    memo[name] = []  # recursion guard: recursive DTDs yield no finite base
    content = dtd.type_of(name)
    if isinstance(content, Pcdata):
        memo[name] = [
            Element(name, text, fresh_id()) for text in string_pool
        ]
        return memo[name]
    shapes: list[Element] = []
    for word in _words_up_to(content, _width_of(widths, name)):
        child_options = [
            enumerate_elements(dtd, child_name, widths, string_pool, memo)
            for child_name, _ in word
        ]
        if any(not options for options in child_options):
            continue
        for combination in product(*child_options):
            shapes.append(Element(name, list(combination), fresh_id()))
    memo[name] = shapes
    return shapes


def enumerate_documents(
    dtd: Dtd,
    widths: Widths = 3,
    string_pool: tuple[str, ...] = ("s",),
) -> list[Document]:
    """All valid documents within the scope (fresh IDs throughout)."""
    if dtd.root is None:
        raise ValueError("the DTD needs a document type for enumeration")
    return [
        Document(shape.deep_copy(fresh_ids=True))
        for shape in enumerate_elements(dtd, dtd.root, widths, string_pool)
    ]


def enumerate_sdtd_elements(
    sdtd: SpecializedDtd,
    key: TaggedName,
    widths: Widths = 3,
    string_pool: tuple[str, ...] = ("s",),
    _memo: dict | None = None,
) -> list[Element]:
    """All element trees typed ``key`` by the s-DTD, within scope."""
    memo = _memo if _memo is not None else {}
    if key in memo:
        return memo[key]
    memo[key] = []
    content = sdtd.type_of(key)
    if isinstance(content, Pcdata):
        memo[key] = [
            Element(key[0], text, fresh_id()) for text in string_pool
        ]
        return memo[key]
    shapes: list[Element] = []
    for word in _words_up_to(content, _width_of(widths, key[0])):
        child_options = [
            enumerate_sdtd_elements(sdtd, letter, widths, string_pool, memo)
            for letter in word
        ]
        if any(not options for options in child_options):
            continue
        for combination in product(*child_options):
            shapes.append(Element(key[0], list(combination), fresh_id()))
    memo[key] = shapes
    return shapes


@dataclass
class SmallScopeReport:
    """Exhaustive verification results at a given scope."""

    source_documents: int
    #: soundness violations (must be empty)
    dtd_violations: int
    sdtd_violations: int
    #: structural classes of views actually produced
    achievable: set[StructuralKey] = field(repr=False, default_factory=set)
    #: classes described by the plain view DTD at scope
    plain_described: set[StructuralKey] = field(repr=False, default_factory=set)
    #: classes described by the specialized view DTD at scope
    sdtd_described: set[StructuralKey] = field(repr=False, default_factory=set)

    @property
    def sound(self) -> bool:
        return self.dtd_violations == 0 and self.sdtd_violations == 0

    @property
    def plain_gap(self) -> set[StructuralKey]:
        """Classes the plain DTD describes but the view cannot produce."""
        return self.plain_described - self.achievable

    @property
    def sdtd_gap(self) -> set[StructuralKey]:
        """Classes the s-DTD describes but the view cannot produce.

        Empty iff the specialized view DTD is structurally tight at
        this scope (the paper's Section 3.3 conjecture).
        """
        return self.sdtd_described - self.achievable

    @property
    def sdtd_structurally_tight(self) -> bool:
        return not self.sdtd_gap

    def summary(self) -> str:
        return (
            f"sources={self.source_documents} sound={self.sound} "
            f"achievable={len(self.achievable)} "
            f"plain_described={len(self.plain_described)} "
            f"(gap {len(self.plain_gap)}) "
            f"sdtd_described={len(self.sdtd_described)} "
            f"(gap {len(self.sdtd_gap)})"
        )


def small_scope_analysis(
    source_dtd: Dtd,
    query: Query,
    result,
    source_widths: Widths = 3,
    view_widths: Widths = 2,
    string_pool: tuple[str, ...] = ("s",),
) -> SmallScopeReport:
    """Exhaustive soundness + structural-tightness analysis.

    ``result`` is an :class:`repro.inference.InferenceResult`.  The
    view-side enumeration uses ``view_widths`` (keep it at or below
    what the source scope can produce, or the gap sets will include
    classes that are only unachievable because the *source* scope is
    too small).  PCDATA equality conditions in the query only match if
    their literals appear in ``string_pool``.
    """
    from ..dtd import satisfies_sdtd, validate_document

    report = SmallScopeReport(0, 0, 0)
    for document in enumerate_documents(
        source_dtd, source_widths, string_pool
    ):
        report.source_documents += 1
        view = evaluate(query, document)
        if not validate_document(view, result.dtd).ok:
            report.dtd_violations += 1
        if not satisfies_sdtd(view.root, result.sdtd):
            report.sdtd_violations += 1
        report.achievable.add(structural_class_key(view.root))

    for shape in enumerate_elements(
        result.dtd, result.dtd.root, view_widths, string_pool
    ):
        report.plain_described.add(structural_class_key(shape))
    root_key = result.sdtd.root
    for shape in enumerate_sdtd_elements(
        result.sdtd, root_key, view_widths, string_pool
    ):
        report.sdtd_described.add(structural_class_key(shape))
    return report
