"""Empirical quality metrics for inferred view DTDs (E9, E12).

The paper's quality framework is soundness (Definition 3.1) and
tightness (Definitions 3.2-3.7).  This module measures both:

* :func:`check_soundness` draws random valid source documents, runs
  the view, and validates the result against the inferred plain DTD
  and specialized DTD.  A sound inference never produces a violation.
* :func:`looseness_report` quantifies tightness differences between
  two view DTDs by exact word counting on corresponding content models
  (Section 3.2's information loss, made numeric).
* :func:`structural_tightness_probe` estimates how much of the plain
  view DTD is *not* covered by the specialized view DTD: it samples
  documents from the plain DTD and checks them against the s-DTD
  (tree-automaton semantics).  A gap is exactly the paper's
  structural non-tightness (Example 3.1's student with only
  conference publications).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..dtd import (
    Dtd,
    generate_document,
    satisfies_sdtd,
    validate_document,
)
from ..regex import count_words_up_to
from ..xmas import Query, evaluate
from ..xmlmodel import serialize_document
from .pipeline import InferenceResult


@dataclass
class SoundnessReport:
    """Outcome of an empirical soundness run."""

    trials: int
    dtd_violations: int = 0
    sdtd_violations: int = 0
    empty_views: int = 0
    counterexamples: list[str] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return self.dtd_violations == 0 and self.sdtd_violations == 0

    def __str__(self) -> str:
        return (
            f"trials={self.trials} dtd_violations={self.dtd_violations} "
            f"sdtd_violations={self.sdtd_violations} "
            f"empty_views={self.empty_views}"
        )


def check_soundness(
    source_dtd: Dtd,
    query: Query,
    result: InferenceResult,
    trials: int = 100,
    rng: random.Random | None = None,
    star_mean: float = 1.2,
    max_counterexamples: int = 3,
) -> SoundnessReport:
    """Definition 3.1, tested: every view document satisfies the view DTD."""
    rng = rng or random.Random(0)
    report = SoundnessReport(trials)
    for _ in range(trials):
        source_doc = generate_document(source_dtd, rng, star_mean=star_mean)
        view_doc = evaluate(query, source_doc)
        if not view_doc.root.children:
            report.empty_views += 1
        dtd_report = validate_document(view_doc, result.dtd)
        if not dtd_report.ok:
            report.dtd_violations += 1
            if len(report.counterexamples) < max_counterexamples:
                report.counterexamples.append(
                    f"plain DTD: {dtd_report}\n"
                    + serialize_document(view_doc)
                )
        if not satisfies_sdtd(view_doc.root, result.sdtd):
            report.sdtd_violations += 1
            if len(report.counterexamples) < max_counterexamples:
                report.counterexamples.append(
                    "s-DTD violation:\n" + serialize_document(view_doc)
                )
    return report


@dataclass
class LoosenessRow:
    """Word counts for one element name at bounded sequence length."""

    name: str
    loose_count: int
    tight_count: int

    @property
    def factor(self) -> float:
        if self.tight_count == 0:
            return float("inf") if self.loose_count else 1.0
        return self.loose_count / self.tight_count


def looseness_report(
    loose: Dtd,
    tight: Dtd,
    max_length: int = 8,
    names: list[str] | None = None,
) -> list[LoosenessRow]:
    """Per-name looseness factors between two view DTDs (E12).

    Counts, for each shared element name with a content model in both
    DTDs, the child-name sequences of length at most ``max_length``
    accepted by each side.
    """
    from ..dtd import Pcdata

    rows: list[LoosenessRow] = []
    candidates = names if names is not None else sorted(
        loose.names & tight.names
    )
    for name in candidates:
        left = loose.type_of(name)
        right = tight.type_of(name)
        if isinstance(left, Pcdata) or isinstance(right, Pcdata):
            continue
        rows.append(
            LoosenessRow(
                name,
                count_words_up_to(left, max_length),
                count_words_up_to(right, max_length),
            )
        )
    return rows


@dataclass
class StructuralTightnessProbe:
    """Fraction of plain-DTD documents also admitted by the s-DTD."""

    samples: int
    admitted: int
    example_gap: str | None = None

    @property
    def coverage(self) -> float:
        if self.samples == 0:
            return 1.0
        return self.admitted / self.samples

    @property
    def has_gap(self) -> bool:
        """True when the plain DTD provably describes impossible views."""
        return self.admitted < self.samples


def structural_tightness_probe(
    result: InferenceResult,
    samples: int = 200,
    rng: random.Random | None = None,
    star_mean: float = 1.2,
) -> StructuralTightnessProbe:
    """Sample the plain view DTD; check against the specialized one.

    Documents admitted by the merged plain DTD but rejected by the
    s-DTD witness the non-tightness Merge signalled (Section 4.3): the
    plain DTD describes view structures the view can never produce.
    """
    rng = rng or random.Random(0)
    admitted = 0
    example: str | None = None
    for _ in range(samples):
        doc = generate_document(result.dtd, rng, star_mean=star_mean)
        if satisfies_sdtd(doc.root, result.sdtd):
            admitted += 1
        elif example is None:
            example = serialize_document(doc)
    return StructuralTightnessProbe(samples, admitted, example)
