"""Result-list type inference (Section 4.4 and Appendix B).

The tightening algorithm types the *picked elements*; this module
derives the content model of the view's top element -- how many picks
appear and in what order (Example 3.1's observation that professors
precede gradStudents).

The algorithm walks the pick path ``L_0 ... L_k``.  The list type of
level 0 is the root's (specialized) key, optional unless the whole
condition is valid.  Each subsequent level is obtained by the
*one-level extension* (Definition 4.3) -- substituting each key by its
content model, which describes the concatenated child sequences of the
current level's elements -- followed by *projection* onto the next
step's keys (Appendix B's ``project``).

Two modes (DESIGN.md §3):

* ``EXACT`` extends with the *refined* types from the tightening
  result (marked occurrences are known to match: they project to
  exactly one pick) and projects could-match positions to ``key?``.
  This is sound and tighter than the paper's derivations.
* ``PAPER`` follows Appendix B: extension substitutes the *base*
  source types (wrapped in ``?`` when the step's condition is not
  valid) and projection maps could-match positions to a bare key.
  It reproduces the paper's ``(title, author*)*`` for Example 4.4
  where EXACT proves ``(title, author*)+``.
"""

from __future__ import annotations

from .. import obs
from ..dtd import Dtd, Pcdata
from ..regex import (
    EPSILON,
    Alt,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    alt,
    concat,
    opt,
    plus,
    star,
    substitute,
)
from ..xmas import Query
from ..xmas.analysis import pick_path
from .classify import Classification, InferenceMode
from .simplifytype import simplify_list_type
from .tighten import NodeTyping, TightenResult


def _project(r: Regex, typing: NodeTyping, mode: InferenceMode) -> Regex:
    """Appendix B's ``project``: keep only positions that can be picks.

    * a position carrying a *proper* pick mark contributes exactly one
      pick (the mark witnesses the pick's constraints, and sibling
      marks sit on other positions);
    * an unmarked position contributes one pick when the step's
      condition is valid for its name, otherwise ``key?`` in EXACT
      mode / a bare ``key`` in PAPER mode (could-match semantics);
    * a position marked by a *different* condition contributes ``key?``
      even when the step's condition is valid: sibling distinctness may
      exclude that witness from ever being picked;
    * any other position contributes nothing (``ε``).
    """
    if isinstance(r, Sym):
        key = typing.keys.get(r.name)
        if key is None:
            return EPSILON
        key_sym = Sym(*key)
        klass = typing.classes[r.name]
        if r.key() == key:
            if key[1] != 0:
                return key_sym
            # The pick's tag collapsed into the base (its constraints
            # are implied by the type), so unmarked positions land
            # here too; a PCDATA value condition keeps them optional.
            if klass.is_valid or mode is InferenceMode.PAPER:
                return key_sym
            return opt(key_sym)
        if r.tag != 0:
            # Marked by a different sibling condition: distinctness may
            # exclude this witness from every pick binding.
            if mode is InferenceMode.PAPER:
                return key_sym
            return opt(key_sym)
        if klass.is_valid or mode is InferenceMode.PAPER:
            return key_sym
        return opt(key_sym)
    if isinstance(r, (Epsilon, Empty)):
        return r
    if isinstance(r, Concat):
        return concat(*(_project(item, typing, mode) for item in r.items))
    if isinstance(r, Alt):
        return alt(*(_project(item, typing, mode) for item in r.items))
    if isinstance(r, Star):
        return star(_project(r.item, typing, mode))
    if isinstance(r, Plus):
        return plus(_project(r.item, typing, mode))
    if isinstance(r, Opt):
        return opt(_project(r.item, typing, mode))
    raise TypeError(f"unknown regex node {r!r}")


def _extend(
    ltype: Regex,
    result: TightenResult,
    dtd: Dtd,
    prev_typing: NodeTyping,
    mode: InferenceMode,
) -> Regex:
    """One-level extension of the current list type (Definition 4.3).

    ``prev_typing`` is the typing of the level being expanded (its keys
    are the symbols of ``ltype``); in PAPER mode its classification
    decides whether the substituted base type is wrapped in ``?``.
    """
    replacements: dict[tuple[str, int], Regex] = {}
    for key_sym in _symbols_of(ltype):
        key = key_sym.key()
        if mode is InferenceMode.EXACT:
            content = result.sdtd.types.get(key)
            if content is None:
                content = dtd.type_of(key[0])
            expansion = (
                EPSILON if isinstance(content, Pcdata) else content
            )
        else:
            base = dtd.type_of(key[0])
            expansion = EPSILON if isinstance(base, Pcdata) else base
            step_class = prev_typing.classes.get(
                key[0], Classification.VALID
            )
            if not step_class.is_valid:
                expansion = opt(expansion)
        replacements[key] = expansion
    return substitute(ltype, replacements)


def _symbols_of(r: Regex) -> list[Sym]:
    from ..regex import alphabet

    return sorted(alphabet(r), key=lambda s: (s.name, s.tag))


def infer_list_type(
    dtd: Dtd,
    query: Query,
    result: TightenResult,
    mode: InferenceMode | None = None,
) -> Regex:
    """The content model of the view's top element.

    The expression is over the specialized keys of the pick step (use
    :func:`repro.regex.image` for the plain-DTD rendering).  Returns
    ``ε`` (empty content) when the condition is unsatisfiable.
    """
    with obs.span("inference.infer_list_type") as sp:
        ltype = _infer_list_type(dtd, query, result, mode)
        sp.set_attribute("empty", ltype is EPSILON)
    return ltype


def _infer_list_type(
    dtd: Dtd,
    query: Query,
    result: TightenResult,
    mode: InferenceMode | None = None,
) -> Regex:
    if mode is None:
        mode = result.mode
    # Use the resolved query whose nodes key the typings (wildcard
    # expansion rebuilds condition nodes).
    if result.query is not None:
        query = result.query
    path = pick_path(query)
    root_typing = result.typing_of(path.steps[0])

    # Level 0: the document root.
    if dtd.root is not None:
        feasible = [n for n in root_typing.keys if n == dtd.root]
    else:
        feasible = sorted(root_typing.keys)
    if not feasible:
        return EPSILON
    level_types: list[Regex] = []
    for name in feasible:
        key_sym = Sym(*root_typing.keys[name])
        if mode is InferenceMode.PAPER:
            # The paper defers the root's optionality to the first
            # extension; a root-level pick applies it directly below.
            level_types.append(key_sym)
        elif root_typing.classes[name].is_valid:
            level_types.append(key_sym)
        else:
            level_types.append(opt(key_sym))
    ltype = alt(*level_types) if len(level_types) > 1 else level_types[0]

    prev_typing = root_typing
    for step in path.steps[1:]:
        step_typing = result.typing_of(step)
        if not step_typing.feasible:
            return EPSILON
        ltype = _extend(ltype, result, dtd, prev_typing, mode)
        ltype = _project(ltype, step_typing, mode)
        prev_typing = step_typing

    if mode is InferenceMode.PAPER:
        # Apply the deferred optionality when the pick is the root
        # itself (no extension step ever wrapped it).
        if len(path.steps) == 1:
            name = feasible[0]
            if not root_typing.classes[name].is_valid:
                ltype = opt(ltype)
        else:
            root_class = root_typing.classification
            if not root_class.is_valid and not _is_nullable_safe(ltype):
                ltype = opt(ltype)
    return simplify_list_type(ltype)


def _is_nullable_safe(r: Regex) -> bool:
    from ..regex import nullable

    return nullable(r)
