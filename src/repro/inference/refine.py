"""Type refinement (Section 4.1, Definitions 4.1 and 4.2).

``refine(r, n)`` is the regular expression describing all strings of
``L(r)`` that contain at least one instance of ``n``; the tagged
variant ``refine(r, n^T)`` additionally *marks* one such occurrence
with the specialization tag ``T`` (the occurrence the tree condition's
sub-conditions will constrain).

The paper's special operators are realized by the smart constructors of
:mod:`repro.regex.ast`:

* ``⊕`` (concatenation where ``fail`` is absorbing) is :func:`concat`,
* ``∥`` (alternation where ``fail`` is the identity) is :func:`alt`,

with ``fail`` itself represented by the :class:`Empty` node.

Exact specification (property-tested):

* untagged: ``L(refine(r, n)) = L(r) ∩ Σ* n Σ*``;
* tagged:   ``L(refine(r, n^T)) = { s1 · n^T · s2  :  s1 · n · s2 ∈ L(r) }``
  -- one untagged occurrence of ``n`` is re-labelled ``n^T``; already
  tagged occurrences in ``r`` are never re-marked (Definition 4.2's
  base case), which is what makes sequential refinement with ``n^1``
  then ``n^2`` demand two *distinct* occurrences (Example 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..regex import (
    EMPTY,
    Alt,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    alt,
    concat,
    star,
)


@dataclass
class RefineTrace:
    """Side-channel facts collected during a refinement.

    ``narrowed`` is the paper's conservative signal ("the refinement
    included an elimination of a disjunct or a refinement of a star
    expression"): when False, the refinement is guaranteed not to have
    excluded any instance, so the condition holds on every instance
    (conservative validity).  The exact check is a language-equivalence
    test done by the tightening layer; this flag reproduces the
    paper's cheaper rule.
    """

    narrowed: bool = False


def refine(r: Regex, target: Sym, trace: RefineTrace | None = None) -> Regex:
    """The paper's ``refine``; returns ``EMPTY`` (fail) when impossible.

    ``target`` may be untagged (Definition 4.1) or tagged
    (Definition 4.2).  ``trace`` collects the conservative
    narrowing signal.
    """
    if trace is None:
        trace = RefineTrace()
    with obs.span("inference.refine") as sp:
        sp.set_attribute("target", str(target))
        result = _refine(r, target, trace)
        sp.set_attribute("narrowed", trace.narrowed)
        sp.set_attribute("failed", isinstance(result, Empty))
    return result


def _refine(r: Regex, target: Sym, trace: RefineTrace) -> Regex:
    if isinstance(r, Sym):
        # Base cases of Definitions 4.1/4.2: only an *untagged*
        # occurrence of the target's name can be (re)marked.
        if r.name == target.name and r.tag == 0:
            return target
        return EMPTY
    if isinstance(r, (Epsilon, Empty)):
        return EMPTY
    if isinstance(r, Opt):
        # refine(g?) = refine(g) || fail: the epsilon branch dies.
        result = _refine(r.item, target, trace)
        if not isinstance(result, Empty):
            trace.narrowed = True
        return result
    if isinstance(r, Star):
        # refine(g*) = g* (+) refine(g) (+) g*
        inner = _refine(r.item, target, trace)
        result = concat(star(r.item), inner, star(r.item))
        if not isinstance(result, Empty):
            trace.narrowed = True
        return result
    if isinstance(r, Plus):
        # g+ = g, g*; apply the sequence rule.
        return _refine(concat(r.item, star(r.item)), target, trace)
    if isinstance(r, Concat):
        # refine(r1, r2) = (refine(r1) (+) r2) || (r1 (+) refine(r2))
        head, *rest = r.items
        tail = concat(*rest)
        return alt(
            concat(_refine(head, target, trace), tail),
            concat(head, _refine(tail, target, trace)),
        )
    if isinstance(r, Alt):
        # refine(r1 | r2) = refine(r1) || refine(r2)
        refined = [_refine(item, target, trace) for item in r.items]
        if any(isinstance(x, Empty) for x in refined) and not all(
            isinstance(x, Empty) for x in refined
        ):
            trace.narrowed = True
        return alt(*refined)
    raise TypeError(f"unknown regex node {r!r}")


def refine_sequence(
    r: Regex, targets: list[Sym], trace: RefineTrace | None = None
) -> Regex:
    """Refine with several (tagged) targets in sequence.

    This is how the tightening algorithm demands several distinct
    same-name children (Example 4.2): each target must mark a fresh
    untagged occurrence.  Returns ``EMPTY`` when the content model
    cannot host that many occurrences.
    """
    if trace is None:
        trace = RefineTrace()
    current = r
    for target in targets:
        current = _refine(current, target, trace)
        if isinstance(current, Empty):
            return EMPTY
    return current


def contains_language(r: Regex, name: str) -> Regex:
    """``L(r) ∩ Σ* name Σ*`` built directly from automata-free pieces.

    Used by tests as an independent specification of the untagged
    refinement: ``Σ`` is the alphabet of ``r`` plus the target.
    """
    from ..regex import alphabet

    sigma = set(alphabet(r)) | {Sym(name)}
    any_letter = alt(*sorted(sigma, key=lambda s: (s.name, s.tag)))
    return concat(star(any_letter), Sym(name), star(any_letter))
