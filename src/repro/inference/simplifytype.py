"""Readability-oriented simplification of inferred list types.

Projection produces correct but clumsy expressions such as
``(p^1?)*, p^1, (p^1?)*, (g^1?)* | (p^1?)*, (g^1?)*, g^1, (g^1?)*``,
whose language is just ``p^1*, g^1*``.  On top of the general
language-preserving simplifier this module adds one *semantic* rewrite
that covers the pattern: an optional-or-nullable alternation whose
branches only differ in where the mandatory occurrence sits can often
be replaced by its "fully relaxed" form (every ``+`` loosened to ``*``
and every non-starred atom made optional is a *candidate*; it is
adopted only when an exact language-equivalence test confirms it).
"""

from __future__ import annotations

from ..regex import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    alt,
    concat,
    is_equivalent,
    opt,
    plus,
    simplify_deep,
    star,
)


def _relax(r: Regex) -> Regex:
    """The fully relaxed candidate: ``+``->``*`` and atoms made optional."""
    if isinstance(r, Sym):
        return opt(r)
    if isinstance(r, (Epsilon, Empty)):
        return r
    if isinstance(r, Concat):
        return concat(*(_relax(item) for item in r.items))
    if isinstance(r, Alt):
        return alt(*(_relax(item) for item in r.items))
    if isinstance(r, (Star, Plus)):
        return star(_relax_body(r.item))
    if isinstance(r, Opt):
        return _relax(r.item)
    raise TypeError(f"unknown regex node {r!r}")


def _relax_body(r: Regex) -> Regex:
    """Inside a star, relaxing atoms to ``?`` is never needed."""
    if isinstance(r, (Star, Plus, Opt)):
        return _relax_body(r.item)
    if isinstance(r, Concat):
        return concat(*(_relax_body(item) for item in r.items))
    if isinstance(r, Alt):
        return alt(*(_relax_body(item) for item in r.items))
    return r


def _try_relaxations(r: Regex) -> Regex:
    """Adopt the relaxed form when it is language-equivalent.

    Applied to the whole expression and, failing that, recursively to
    alternation branches and concatenation items.
    """
    candidate = simplify_deep(_relax(r))
    if candidate != r and is_equivalent(candidate, r):
        return candidate
    if isinstance(r, Alt):
        return alt(*(_try_relaxations(item) for item in r.items))
    if isinstance(r, Concat):
        return concat(*(_try_relaxations(item) for item in r.items))
    if isinstance(r, Opt):
        inner = _try_relaxations(r.item)
        return opt(inner)
    return r


def _mark_normal_form(r: Regex) -> Regex | None:
    """Candidate for refinement results: ``pad*, a1, pad*, ..., ak, pad*``.

    Sequential refinement of a repetition produces an alternation of
    the possible arrangements of the marked occurrences (Example 4.2's
    trace); the paper writes the equivalent interleaved form
    ``publication*, publication^1, publication*, publication^1,
    publication*`` (D4).  This builds that shape from the branch with
    the fewest mandatory atoms and the union of all repeated bodies;
    the caller adopts it only after an equivalence check.
    """
    if not isinstance(r, Alt):
        return None
    skeletons: list[list[Sym]] = []
    bodies: list[Regex] = []
    for branch in r.items:
        items = branch.items if isinstance(branch, Concat) else (branch,)
        atoms: list[Sym] = []
        for item in items:
            if isinstance(item, Sym):
                atoms.append(item)
            elif isinstance(item, (Star, Plus, Opt)):
                if item.item not in bodies:
                    bodies.append(item.item)
                if isinstance(item, Plus):
                    # A plus carries one mandatory copy of its body.
                    if not isinstance(item.item, Sym):
                        return None
                    atoms.append(item.item)
            else:
                return None
        skeletons.append(atoms)
    if not bodies:
        return None
    skeleton = min(skeletons, key=len)
    pad = star(alt(*bodies))
    parts: list[Regex] = [pad]
    for atom in skeleton:
        parts.extend((atom, pad))
    return concat(*parts)


def _apply_mark_normal_form(r: Regex) -> Regex:
    """Adopt the mark-normal form wherever it is language-equivalent."""
    if isinstance(r, Alt):
        candidate = _mark_normal_form(r)
        if candidate is not None and is_equivalent(candidate, r):
            return candidate
        return alt(*(_apply_mark_normal_form(item) for item in r.items))
    if isinstance(r, Concat):
        return concat(*(_apply_mark_normal_form(item) for item in r.items))
    if isinstance(r, Star):
        return star(_apply_mark_normal_form(r.item))
    if isinstance(r, Plus):
        return plus(_apply_mark_normal_form(r.item))
    if isinstance(r, Opt):
        return opt(_apply_mark_normal_form(r.item))
    return r


def simplify_type(r: Regex) -> Regex:
    """Simplify an inferred content model without changing its language.

    Used for the specialized types the tightening algorithm produces;
    adds the mark-normal-form rewrite on top of the general simplifier.
    """
    result = simplify_deep(_apply_mark_normal_form(simplify_deep(r)))
    if __debug__ and not is_equivalent(result, r):  # pragma: no cover
        raise AssertionError(
            f"type simplification changed the language: {r} -> {result}"
        )
    return result


def simplify_list_type(r: Regex) -> Regex:
    """Simplify an inferred list type without changing its language."""
    simplified = simplify_deep(r)
    relaxed = _try_relaxations(simplified)
    result = simplify_type(relaxed)
    if __debug__ and not is_equivalent(result, r):  # pragma: no cover
        raise AssertionError(
            f"list-type simplification changed the language: {r} -> {result}"
        )
    return result
