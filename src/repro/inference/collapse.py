"""Collapsing equivalent specializations of an s-DTD.

The tightening algorithm gives every condition node a fresh
specialization tag; many end up equivalent -- the paper notes this for
Example 3.4 ("the third one, named publication^2, has essentially the
same type with publication^1", footnote 8) and merges them by hand.
This module does it systematically.

Two tagged names of the same element name are *equivalent* when their
types describe the same element trees; we compute the coarsest
partition of keys such that, renaming every key to its class
representative, equivalent-class members have language-equivalent
content models (a bisimulation-style greatest fixpoint; exact for
non-recursive s-DTDs, sound for recursive ones).

Classes containing the base key are renumbered to tag 0, the rest to
1, 2, ... in order of first use, and all content models are rewritten.
Collapsing a specialization into the base key is harmless even for
counting constraints: a position in a content model is a position
regardless of its tag, so ``j*, j^1, j*, j^2, j*`` still demands two
``j`` children after both tags collapse to the base.
"""

from __future__ import annotations

from ..dtd import Pcdata, SpecializedDtd, TaggedName
from ..regex import Regex, Sym, is_equivalent, rename
from .tighten import NodeTyping, TightenResult


def _representative(members: list[TaggedName]) -> TaggedName:
    """Canonical member of a class: the base key if present, else min tag."""
    return min(members, key=lambda key: key[1])


def compute_equivalence(
    sdtd: SpecializedDtd,
) -> dict[TaggedName, TaggedName]:
    """Map each key to its equivalence-class representative."""
    # Initial partition: by (name, PCDATA-or-regex kind).
    classes: list[list[TaggedName]] = []
    by_group: dict[tuple[str, bool], list[TaggedName]] = {}
    for key, content in sdtd.types.items():
        group = (key[0], isinstance(content, Pcdata))
        by_group.setdefault(group, []).append(key)
    classes = [sorted(members) for members in by_group.values()]

    while True:
        rep_map: dict[TaggedName, Sym] = {}
        for members in classes:
            rep = _representative(members)
            for key in members:
                rep_map[key] = Sym(rep[0], rep[1])

        def canonical(content) -> object:
            if isinstance(content, Pcdata):
                return content
            return rename(content, rep_map)

        new_classes: list[list[TaggedName]] = []
        changed = False
        for members in classes:
            if len(members) == 1:
                new_classes.append(members)
                continue
            buckets: list[tuple[object, list[TaggedName]]] = []
            for key in members:
                content = canonical(sdtd.types[key])
                placed = False
                for pivot, bucket in buckets:
                    if isinstance(content, Pcdata) and isinstance(pivot, Pcdata):
                        bucket.append(key)
                        placed = True
                        break
                    if (
                        isinstance(content, Regex)
                        and isinstance(pivot, Regex)
                        and is_equivalent(content, pivot)
                    ):
                        bucket.append(key)
                        placed = True
                        break
                if not placed:
                    buckets.append((content, [key]))
            if len(buckets) > 1:
                changed = True
            new_classes.extend(bucket for _, bucket in buckets)
        classes = new_classes
        if not changed:
            break

    result: dict[TaggedName, TaggedName] = {}
    for members in classes:
        rep = _representative(members)
        for key in members:
            result[key] = rep
    return result


def _renumber(
    equivalence: dict[TaggedName, TaggedName],
    sdtd: SpecializedDtd,
) -> dict[TaggedName, TaggedName]:
    """Final key map: base classes to tag 0, others to 1, 2, ... per name."""
    final: dict[TaggedName, TaggedName] = {}
    next_tag: dict[str, int] = {}
    rep_target: dict[TaggedName, TaggedName] = {}
    base_taken: set[str] = set()
    # Classes containing a declared base key claim tag 0 first.
    for key in sorted(sdtd.types):
        rep = equivalence[key]
        name = rep[0]
        if (name, 0) in equivalence and equivalence[(name, 0)] == rep:
            rep_target[rep] = (name, 0)
            base_taken.add(name)
    # Remaining classes: the first class of a name whose base is not
    # declared also takes tag 0 (the paper's D3 writes the refined
    # ``publication`` untagged because the base never appears); others
    # get 1, 2, ... in deterministic (name, tag) order.
    for key in sorted(sdtd.types):
        rep = equivalence[key]
        name = rep[0]
        if rep not in rep_target:
            if name not in base_taken:
                rep_target[rep] = (name, 0)
                base_taken.add(name)
            else:
                tag = next_tag.get(name, 0) + 1
                next_tag[name] = tag
                rep_target[rep] = (name, tag)
        final[key] = rep_target[rep]
    return final


def collapse_equivalent(
    sdtd: SpecializedDtd,
) -> tuple[SpecializedDtd, dict[TaggedName, TaggedName]]:
    """Collapse equivalent specializations; returns (s-DTD, key map)."""
    equivalence = compute_equivalence(sdtd)
    final = _renumber(equivalence, sdtd)
    sym_map = {key: Sym(*target) for key, target in final.items()}

    new_types: dict[TaggedName, object] = {}
    for key, content in sdtd.types.items():
        target = final[key]
        if target in new_types:
            continue
        if isinstance(content, Pcdata):
            new_types[target] = content
        else:
            new_types[target] = rename(content, sym_map)
    new_root = final[sdtd.root] if sdtd.root is not None else None
    collapsed = SpecializedDtd(new_types, new_root)
    collapsed.check_consistency()
    return collapsed, final


def collapse_result(result: TightenResult) -> TightenResult:
    """Apply collapsing to a :class:`TightenResult`, remapping typings."""
    collapsed, final = collapse_equivalent(result.sdtd)
    new_typings: dict[int, NodeTyping] = {}
    for node_id, typing in result.typings.items():
        new_typings[node_id] = NodeTyping(
            typing.node,
            {name: final[key] for name, key in typing.keys.items()},
            dict(typing.classes),
        )
    return TightenResult(
        collapsed,
        new_typings,
        new_typings[id(result.root.node)],
        result.mode,
        result.query,
    )
