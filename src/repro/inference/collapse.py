"""Collapsing equivalent specializations of an s-DTD.

The tightening algorithm gives every condition node a fresh
specialization tag; many end up equivalent -- the paper notes this for
Example 3.4 ("the third one, named publication^2, has essentially the
same type with publication^1", footnote 8) and merges them by hand.
This module does it systematically.

Two tagged names of the same element name are *equivalent* when their
types describe the same element trees; we compute the coarsest
partition of keys such that, renaming every key to its class
representative, equivalent-class members have language-equivalent
content models (a bisimulation-style greatest fixpoint; exact for
non-recursive s-DTDs, sound for recursive ones).

Classes containing the base key are renumbered to tag 0, the rest to
1, 2, ... in order of first use, and all content models are rewritten.
Collapsing a specialization into the base key is harmless even for
counting constraints: a position in a content model is a position
regardless of its tag, so ``j*, j^1, j*, j^2, j*`` still demands two
``j`` children after both tags collapse to the base.

Two partition backends implement the per-round refinement:

``"signature"`` (default)
    each member's renamed content model is mapped to its canonical
    minimal-DFA signature (:func:`repro.regex.canonical_signature`)
    and members are grouped by signature -- one minimization per
    member per round, O(n) instead of the O(n^2) pairwise products;
``"pairwise"``
    the original formulation: scan the round's buckets and compare
    against each pivot with ``is_equivalent``.  Kept as the
    differential-testing oracle for the kernel.
"""

from __future__ import annotations

from .. import obs
from ..dtd import Pcdata, SpecializedDtd, TaggedName
from ..regex import Regex, Sym, canonical_signature, is_equivalent, rename
from .tighten import NodeTyping, TightenResult

#: Default partition backend; see module docstring.
DEFAULT_BACKEND = "signature"


def _representative(members: list[TaggedName]) -> TaggedName:
    """Canonical member of a class: the base key if present, else min tag."""
    return min(members, key=lambda key: key[1])


def _initial_classes(sdtd: SpecializedDtd) -> list[list[TaggedName]]:
    """Initial partition: by (name, PCDATA-or-regex kind)."""
    by_group: dict[tuple[str, bool], list[TaggedName]] = {}
    for key, content in sdtd.types.items():
        group = (key[0], isinstance(content, Pcdata))
        by_group.setdefault(group, []).append(key)
    return [sorted(members) for members in by_group.values()]


def _rep_map(classes: list[list[TaggedName]]) -> dict[TaggedName, Sym]:
    """Renaming to class representatives, identity entries omitted.

    A key that is its own representative renames to itself; leaving it
    out keeps the map small and lets :func:`repro.regex.rename` return
    untouched subtrees by pointer instead of walking them.
    """
    rep_map: dict[TaggedName, Sym] = {}
    for members in classes:
        rep = _representative(members)
        for key in members:
            if key != rep:
                rep_map[key] = Sym(rep[0], rep[1])
    return rep_map


def _classes_to_result(
    classes: list[list[TaggedName]],
) -> dict[TaggedName, TaggedName]:
    result: dict[TaggedName, TaggedName] = {}
    for members in classes:
        rep = _representative(members)
        for key in members:
            result[key] = rep
    return result


def _split_by_signature(
    sdtd: SpecializedDtd,
    members: list[TaggedName],
    rep_map: dict[TaggedName, Sym],
) -> list[list[TaggedName]]:
    """One refinement step: group members by canonical signature.

    The initial partition already separates PCDATA from regex kinds
    and refinement only ever splits, so a non-singleton class is
    homogeneous: either all PCDATA (nothing to split) or all regexes.
    """
    first = sdtd.types[members[0]]
    if isinstance(first, Pcdata):
        return [members]
    buckets: dict[object, list[TaggedName]] = {}
    for key in members:
        content = rename(sdtd.types[key], rep_map)
        buckets.setdefault(canonical_signature(content), []).append(key)
    return list(buckets.values())


def _split_pairwise(
    sdtd: SpecializedDtd,
    members: list[TaggedName],
    rep_map: dict[TaggedName, Sym],
) -> list[list[TaggedName]]:
    """One refinement step, legacy formulation: compare against pivots."""

    def canonical(content: object) -> object:
        if isinstance(content, Pcdata):
            return content
        return rename(content, rep_map)

    buckets: list[tuple[object, list[TaggedName]]] = []
    for key in members:
        content = canonical(sdtd.types[key])
        placed = False
        for pivot, bucket in buckets:
            if isinstance(content, Pcdata) and isinstance(pivot, Pcdata):
                bucket.append(key)
                placed = True
                break
            if (
                isinstance(content, Regex)
                and isinstance(pivot, Regex)
                and is_equivalent(content, pivot)
            ):
                bucket.append(key)
                placed = True
                break
        if not placed:
            buckets.append((content, [key]))
    return [bucket for _, bucket in buckets]


_SPLITTERS = {
    "signature": _split_by_signature,
    "pairwise": _split_pairwise,
}


def compute_equivalence(
    sdtd: SpecializedDtd,
    backend: str | None = None,
) -> dict[TaggedName, TaggedName]:
    """Map each key to its equivalence-class representative.

    ``backend`` selects the per-round partition strategy (see module
    docstring); both produce the same partition, which the
    differential property tests assert on random s-DTDs.
    """
    try:
        split = _SPLITTERS[backend or DEFAULT_BACKEND]
    except KeyError:
        raise ValueError(f"unknown collapse backend {backend!r}") from None
    classes = _initial_classes(sdtd)

    while True:
        rep_map = _rep_map(classes)
        new_classes: list[list[TaggedName]] = []
        changed = False
        for members in classes:
            if len(members) == 1:
                new_classes.append(members)
                continue
            split_members = split(sdtd, members, rep_map)
            if len(split_members) > 1:
                changed = True
            new_classes.extend(split_members)
        classes = new_classes
        if not changed:
            break

    return _classes_to_result(classes)


def _renumber(
    equivalence: dict[TaggedName, TaggedName],
    sdtd: SpecializedDtd,
) -> dict[TaggedName, TaggedName]:
    """Final key map: base classes to tag 0, others to 1, 2, ... per name."""
    final: dict[TaggedName, TaggedName] = {}
    next_tag: dict[str, int] = {}
    rep_target: dict[TaggedName, TaggedName] = {}
    base_taken: set[str] = set()
    # Classes containing a declared base key claim tag 0 first.
    for key in sorted(sdtd.types):
        rep = equivalence[key]
        name = rep[0]
        if (name, 0) in equivalence and equivalence[(name, 0)] == rep:
            rep_target[rep] = (name, 0)
            base_taken.add(name)
    # Remaining classes: the first class of a name whose base is not
    # declared also takes tag 0 (the paper's D3 writes the refined
    # ``publication`` untagged because the base never appears); others
    # get 1, 2, ... in deterministic (name, tag) order.
    for key in sorted(sdtd.types):
        rep = equivalence[key]
        name = rep[0]
        if rep not in rep_target:
            if name not in base_taken:
                rep_target[rep] = (name, 0)
                base_taken.add(name)
            else:
                tag = next_tag.get(name, 0) + 1
                next_tag[name] = tag
                rep_target[rep] = (name, tag)
        final[key] = rep_target[rep]
    return final


def collapse_equivalent(
    sdtd: SpecializedDtd,
    backend: str | None = None,
) -> tuple[SpecializedDtd, dict[TaggedName, TaggedName]]:
    """Collapse equivalent specializations; returns (s-DTD, key map)."""
    equivalence = compute_equivalence(sdtd, backend=backend)
    final = _renumber(equivalence, sdtd)
    sym_map = {
        key: Sym(*target) for key, target in final.items() if key != target
    }

    new_types: dict[TaggedName, object] = {}
    for key, content in sdtd.types.items():
        target = final[key]
        if target in new_types:
            continue
        if isinstance(content, Pcdata):
            new_types[target] = content
        else:
            new_types[target] = rename(content, sym_map)
    new_root = final[sdtd.root] if sdtd.root is not None else None
    collapsed = SpecializedDtd(new_types, new_root)
    collapsed.check_consistency()
    return collapsed, final


def collapse_result(result: TightenResult) -> TightenResult:
    """Apply collapsing to a :class:`TightenResult`, remapping typings."""
    with obs.span("inference.collapse") as sp:
        sp.set_attribute("types_before", len(result.sdtd.types))
        collapsed, final = collapse_equivalent(result.sdtd)
        sp.set_attribute("types_after", len(collapsed.types))
    new_typings: dict[int, NodeTyping] = {}
    for node_id, typing in result.typings.items():
        new_typings[node_id] = NodeTyping(
            typing.node,
            {name: final[key] for name, key in typing.keys.items()},
            dict(typing.classes),
        )
    return TightenResult(
        collapsed,
        new_typings,
        new_typings[id(result.root.node)],
        result.mode,
        result.query,
    )
