"""``repro.obs`` -- zero-dependency tracing and metrics.

The pipeline spans five subsystems (lint -> preflight -> inference ->
compiled engine -> fault-tolerant fan-out) with per-subsystem
introspection only; this package ties one query together end to end:

* :mod:`repro.obs.tracing` -- ``Span``/``Tracer`` with nested spans,
  attributes, events, Chrome ``trace_event`` export, and a no-op fast
  path when no tracer is installed (the default);
* :mod:`repro.obs.metrics` -- process-local counters, gauges, and
  histograms, snapshotted into ``kernel_stats()["obs"]``.

Enable with :func:`install_tracer` (CLI: ``repro ask --trace out.json``
or ``repro trace``); everything stays deterministic under the
transport's ``FakeClock``.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from ..regex import kernel
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from .tracing import (
    NOOP_SPAN,
    Span,
    SpanEvent,
    Tracer,
    active_tracer,
    attach,
    enabled,
    event,
    finish_span,
    install_tracer,
    set_attribute,
    span,
    start_span,
    traced,
    uninstall_tracer,
)

# clear_caches() resets the metrics registry with the kernel caches
# (info=None keeps it out of the hit/miss cache table); the full
# metrics tree appears as its own kernel_stats() section instead.
kernel.register_cache("obs.metrics", REGISTRY.reset)
kernel.register_stats_section("obs", REGISTRY.snapshot)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "REGISTRY",
    "Span",
    "SpanEvent",
    "Tracer",
    "active_tracer",
    "attach",
    "enabled",
    "event",
    "finish_span",
    "install_tracer",
    "set_attribute",
    "span",
    "start_span",
    "traced",
    "uninstall_tracer",
]
