"""Process-local metrics: counters, gauges, and histograms.

The registry is deliberately tiny and dependency-free: instruments are
plain objects in dicts, created on first use and snapshotted into the
kernel's stats tree (``kernel_stats()["obs"]``) so the CLI ``--stats``
flag, benchmark ``extra_info``, and tests all read one source of
truth.

Instruments are **lock-guarded**: the parallel fan-out
(:mod:`repro.mediator.parallel`) and the serving front end
(:mod:`repro.serve`) record from worker threads concurrently, and a
naive ``value += 1`` is a read-modify-write that loses increments
under contention.  Each instrument carries its own lock (one
uncontended acquire is tens of nanoseconds — far below the transport
overhead gate), and the registry locks instrument creation so two
threads asking for the same name get the same object.

Instruments carry no timestamps: durations are *observed into*
histograms by the tracer (:mod:`repro.obs.tracing`) using whatever
clock it was built with, so metrics stay deterministic under
``FakeClock`` exactly like traces.

``clear_caches()`` resets the registry alongside the language-kernel
caches (the registry registers itself -- see :mod:`repro.obs`).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict

#: Default histogram bucket upper bounds, in seconds: microseconds to
#: tens of seconds on a roughly-exponential ladder.  Spans observe
#: durations here; callers may pass their own bounds for other units.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)


@dataclass
class Counter:
    """A monotonically increasing count (thread-safe)."""

    value: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


@dataclass
class Gauge:
    """A value that goes up and down (last write wins; thread-safe)."""

    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


@dataclass
class Histogram:
    """A fixed-bucket distribution summary (thread-safe).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the
    final slot counts overflows.  ``sum``/``min``/``max`` make mean and
    range recoverable without keeping samples.
    """

    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """A conservative quantile estimate from the bucket counts.

        Returns the *upper bound* of the first bucket whose cumulative
        count reaches ``q`` of the total — an over-estimate by at most
        one bucket width, which is the right bias for deriving timeouts
        (a p95 read never cuts off a call the histogram has seen
        complete).  Observations in the overflow bucket answer with the
        true ``max``.  ``None`` when the histogram is empty.
        """
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            cumulative += n
            if cumulative >= target and n:
                if i == len(self.bounds):
                    return self.max
                return min(self.bounds[i], self.max)
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "sum": round(self.sum, 9),
                "mean": round(self.mean, 9),
                "min": round(self.min, 9) if self.count else 0.0,
                "max": round(self.max, 9) if self.count else 0.0,
                "buckets": {
                    (
                        "inf"
                        if i == len(self.bounds)
                        else repr(self.bounds[i])
                    ): n
                    for i, n in enumerate(self.bucket_counts)
                    if n
                },
            }


class MetricsRegistry:
    """Named instruments, created on first use (thread-safe).

    One process-local instance (:data:`REGISTRY`) backs the whole
    package; tests may build private registries to assert in
    isolation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(bounds)
        return instrument

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    def reset(self) -> None:
        """Drop every instrument (the ``clear_caches()`` hook)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> Dict[str, Any]:
        """The full metrics tree (folded into ``kernel_stats()``)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }


#: The process-local registry every instrumented module records into.
REGISTRY = MetricsRegistry()
