"""Spans and tracers: one query, end to end.

A :class:`Span` is a named, timed interval with attributes, point
*events*, and child spans; a :class:`Tracer` keeps the stack of open
spans so instrumented code never threads a context object around --
``obs.span("name")`` finds the active tracer (or a shared no-op) by
itself.

Design rules, in order of importance:

1. **Off by default, and free when off.**  No tracer installed means
   ``span()`` returns the :data:`NOOP_SPAN` singleton: no allocation,
   no clock read, no dict.  ``benchmarks/bench_obs.py`` gates the
   disabled overhead below 3% of the mediator/evaluator serving paths.
2. **Deterministic under test.**  A tracer takes any object with a
   ``now() -> float`` method -- pass the transport's ``FakeClock`` and
   every timestamp, duration, and exported ``ts`` is exact and
   assertable.  The default clock is ``time.perf_counter``.
3. **Standard export.**  ``to_chrome_trace()`` emits the Chrome
   ``trace_event`` JSON format (complete ``"X"`` events for spans,
   instant ``"i"`` events for span events), loadable in
   ``chrome://tracing`` / Perfetto; ``render()`` gives the terminal
   tree the CLI prints.

When a span finishes, its duration is observed into the metrics
registry (``span.<name>`` histogram, ``spans.<name>`` counter) -- the
metrics side of the subsystem costs nothing extra to populate.

See docs/OBSERVABILITY.md for the span catalogue and format details.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Iterator, Protocol

from .metrics import REGISTRY, MetricsRegistry


class ReadableClock(Protocol):
    """What a tracer needs from a clock (``FakeClock`` satisfies it)."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...


class _PerfClock:
    """The default wall clock (monotonic, sub-microsecond)."""

    def now(self) -> float:
        return time.perf_counter()


class SpanEvent:
    """A point-in-time annotation inside a span."""

    __slots__ = ("name", "ts", "attributes")

    def __init__(self, name: str, ts: float, attributes: dict) -> None:
        self.name = name
        self.ts = ts
        self.attributes = attributes

    def __repr__(self) -> str:
        return f"SpanEvent({self.name!r} @{self.ts:.6f} {self.attributes})"


class Span:
    """A timed interval in the trace tree.

    Use as a context manager (``with obs.span("x") as sp``); ``end``
    stays ``None`` until exit.  An exception leaving the block is
    recorded as the ``error`` attribute -- failed legs are visible in
    the trace, not silently identical to successes.
    """

    __slots__ = (
        "tracer",
        "name",
        "start",
        "end",
        "attributes",
        "events",
        "children",
        "parent",
    )

    #: Hot paths may guard per-call ``set_attribute``/``add_event``
    #: bursts behind this flag: with tracing off, :func:`span` hands
    #: out :data:`NOOP_SPAN` (``recording = False``) and the guarded
    #: block costs one attribute read instead of N no-op calls.
    recording = True

    def __init__(self, tracer: "Tracer", name: str, start: float) -> None:
        self.tracer = tracer
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attributes: dict[str, Any] = {}
        self.events: list[SpanEvent] = []
        self.children: list["Span"] = []
        self.parent: "Span | None" = None

    # -- recording -------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: Any) -> None:
        self.events.append(
            SpanEvent(name, self.tracer.clock.now(), attributes)
        )

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.attributes["error"] = f"{exc_type.__name__}: {exc}"
        self.tracer._finish(self)
        return False

    # -- reading ---------------------------------------------------------

    @property
    def duration(self) -> float:
        """Seconds from start to end (0 while still open)."""
        return (self.end if self.end is not None else self.start) - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def render(self, indent: str = "") -> str:
        """An indented text tree (durations in ms, attrs inline)."""
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(self.attributes.items())
        )
        line = f"{indent}{self.name}  [{self.duration * 1e3:.3f}ms]"
        if attrs:
            line += f"  {attrs}"
        lines = [line]
        for event in self.events:
            inside = " ".join(
                f"{k}={v}" for k, v in sorted(event.attributes.items())
            )
            lines.append(
                f"{indent}  * {event.name}"
                + (f"  {inside}" if inside else "")
            )
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


class _NoopSpan:
    """The shared do-nothing span returned while tracing is off."""

    __slots__ = ()

    recording = False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton handed out by :func:`span` when no tracer is active.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects one trace: a forest of spans plus derived metrics.

    The open-span stack is **thread-local**: worker threads of the
    parallel fan-out each keep a coherent stack of their own, so
    concurrent ``transport.call`` spans nest under their own legs
    instead of corrupting one shared stack.  Cross-thread parenting is
    explicit — the dispatching thread creates a detached span with
    :meth:`start_span` (deterministic child order, because one thread
    appends) and the worker makes it its stack root with
    :meth:`attach`.
    """

    def __init__(
        self,
        clock: ReadableClock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.clock: ReadableClock = clock if clock is not None else _PerfClock()
        self.metrics = REGISTRY if metrics is None else metrics
        self.roots: list[Span] = []
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: spans started (cheap cardinality probe for the overhead gate)
        self.span_count = 0

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # -- span lifecycle --------------------------------------------------

    def span(self, name: str) -> Span:
        """Open a span under the current one (use with ``with``)."""
        stack = self._stack()
        opened = Span(self, name, self.clock.now())
        if stack:
            opened.parent = stack[-1]
            opened.parent.children.append(opened)
        else:
            with self._lock:
                self.roots.append(opened)
        with self._lock:
            self.span_count += 1
        stack.append(opened)
        return opened

    def start_span(self, name: str) -> Span:
        """A span under the current one that is *not* pushed.

        The parallel fan-out uses this to create per-leg spans in
        dispatch order from the dispatching thread (so the trace tree
        is deterministic) before handing each to a worker, which
        :meth:`attach`-es it and later :meth:`finish_span`-es it.
        """
        stack = self._stack()
        opened = Span(self, name, self.clock.now())
        if stack:
            opened.parent = stack[-1]
            opened.parent.children.append(opened)
        else:
            with self._lock:
                self.roots.append(opened)
        with self._lock:
            self.span_count += 1
        return opened

    def attach(self, span: Span) -> "_Attached":
        """Scope making ``span`` the current parent on *this* thread."""
        return _Attached(self, span)

    def finish_span(self, span: Span) -> None:
        """Close a detached span (idempotent)."""
        if span.end is None:
            self._finish(span)

    def _finish(self, span: Span) -> None:
        if span.end is not None:
            return
        span.end = self.clock.now()
        stack = self._stack()
        # Exiting out of order (generators, leaked spans) must not
        # corrupt the stack: pop through to the finished span — but
        # only when it actually lives on this thread's stack (detached
        # spans finished cross-thread do not).
        if any(open_span is span for open_span in stack):
            while stack:
                if stack.pop() is span:
                    break
        self.metrics.histogram(f"span.{span.name}").observe(span.duration)
        self.metrics.counter(f"spans.{span.name}").inc()

    def current(self) -> Span | None:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- reading ---------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """Every span with the given name, preorder across roots."""
        return [span for span in self.walk() if span.name == name]

    def event_count(self) -> int:
        return sum(len(span.events) for span in self.walk())

    def render(self) -> str:
        return "\n".join(root.render() for root in self.roots)

    # -- export ----------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` JSON object for this trace.

        Spans become complete (``"ph": "X"``) events with microsecond
        ``ts``/``dur``; span events become thread-scoped instants
        (``"ph": "i"``).  Deterministic for a deterministic clock.
        """
        events: list[dict] = []
        for span in self.walk():
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": dict(span.attributes),
                }
            )
            for event in span.events:
                events.append(
                    {
                        "name": f"{span.name}/{event.name}",
                        "cat": span.name.split(".", 1)[0],
                        "ph": "i",
                        "ts": round(event.ts * 1e6, 3),
                        "s": "t",
                        "pid": 1,
                        "tid": 1,
                        "args": dict(event.attributes),
                    }
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs"},
        }

    def dump_json(self, path: str, indent: int | None = 2) -> None:
        """Write the Chrome trace to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=indent)
            handle.write("\n")


class _Attached:
    """``with tracer.attach(span):`` — thread-scoped parent adoption.

    Pushes an existing span onto the current thread's stack on enter
    and removes it on exit (wherever it sits — the owner may have
    finished it already, which pops it).  The span itself is *not*
    finished; its owner closes it with ``finish_span``.
    """

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.tracer._stack().append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self.tracer._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self.span:
                del stack[i]
                break
        return False


class _NoopAttached:
    """The attach scope while tracing is off (or for a no-op span)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_ATTACHED = _NoopAttached()


# ---------------------------------------------------------------------------
# the global switch
# ---------------------------------------------------------------------------

_ACTIVE: Tracer | None = None


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    """Make ``tracer`` (or a fresh one) the process tracer; returns it."""
    global _ACTIVE
    if tracer is None:
        tracer = Tracer()
    _ACTIVE = tracer
    return tracer


def uninstall_tracer() -> Tracer | None:
    """Disable tracing; returns the tracer that was active (if any)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active_tracer() -> Tracer | None:
    return _ACTIVE


def enabled() -> bool:
    """Is a tracer installed right now?"""
    return _ACTIVE is not None


def span(name: str):
    """A span under the active tracer, or the shared no-op.

    The disabled path is one global read and one comparison -- this is
    the call instrumented hot paths make unconditionally.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name)


def start_span(name: str):
    """A detached span under the active tracer, or the shared no-op.

    Combined with :func:`attach`/:func:`finish_span` this is the
    cross-thread span protocol the parallel fan-out uses; see
    :meth:`Tracer.start_span`.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.start_span(name)


def attach(span):
    """``with obs.attach(span):`` — adopt ``span`` on this thread."""
    if span is NOOP_SPAN:
        return NOOP_ATTACHED
    return span.tracer.attach(span)


def finish_span(span) -> None:
    """Close a span from :func:`start_span` (no-op when tracing is off)."""
    if span is NOOP_SPAN:
        return
    span.tracer.finish_span(span)


def event(name: str, **attributes: Any) -> None:
    """Add an event to the innermost open span (no-op when off)."""
    tracer = _ACTIVE
    if tracer is None:
        return
    current = tracer.current()
    if current is not None:
        current.add_event(name, **attributes)


def set_attribute(key: str, value: Any) -> None:
    """Set an attribute on the innermost open span (no-op when off)."""
    tracer = _ACTIVE
    if tracer is None:
        return
    current = tracer.current()
    if current is not None:
        current.set_attribute(key, value)


class traced:
    """``with traced() as tracer:`` -- scoped install/uninstall.

    Restores the previously active tracer (if any) on exit, so traced
    sections nest without clobbering each other.
    """

    def __init__(
        self,
        clock: ReadableClock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = Tracer(clock, metrics)
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.tracer
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False
