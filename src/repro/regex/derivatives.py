"""Brzozowski-derivative engine.

An independent second implementation of regular-language membership,
used by the property-based tests to cross-check the Glushkov/DFA path:
two engines built from different theory are unlikely to share a bug.

The derivative of a language L with respect to a letter a is
``{w : aw in L}``; a word belongs to L iff the iterated derivative is
nullable.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from .ast import (
    EMPTY,
    EPSILON,
    Alt,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    alt,
    concat,
    nullable,
    star,
)


@lru_cache(maxsize=65536)
def derivative(regex: Regex, letter: tuple[str, int]) -> Regex:
    """The Brzozowski derivative of ``regex`` by ``letter``."""
    if isinstance(regex, Sym):
        return EPSILON if regex.key() == letter else EMPTY
    if isinstance(regex, (Epsilon, Empty)):
        return EMPTY
    if isinstance(regex, Concat):
        head, *tail = regex.items
        rest = concat(*tail)
        with_head = concat(derivative(head, letter), rest)
        if nullable(head):
            return alt(with_head, derivative(rest, letter))
        return with_head
    if isinstance(regex, Alt):
        return alt(*(derivative(item, letter) for item in regex.items))
    if isinstance(regex, Star):
        return concat(derivative(regex.item, letter), star(regex.item))
    if isinstance(regex, Plus):
        # r+ = r, r*
        return concat(derivative(regex.item, letter), star(regex.item))
    if isinstance(regex, Opt):
        return derivative(regex.item, letter)
    raise TypeError(f"unknown regex node {regex!r}")


def matches(regex: Regex, word: Sequence[Sym]) -> bool:
    """Membership by iterated derivatives."""
    current = regex
    for symbol in word:
        current = derivative(current, symbol.key())
        if isinstance(current, Empty):
            return False
    return nullable(current)


def matches_letters(regex: Regex, word: Sequence[tuple[str, int]]) -> bool:
    """Membership over raw (name, tag) letters."""
    current = regex
    for letter in word:
        current = derivative(current, letter)
        if isinstance(current, Empty):
            return False
    return nullable(current)
