"""Algebraic simplification of regular expressions.

The refinement operators of Section 4.1 produce correct but verbose
expressions (Example 4.3 shows a merged type with four alternatives
that "can be simplified" to D2's type).  This module makes inferred
types readable:

* :func:`simplify` applies safe syntactic rewrites bottom-up until a
  fixpoint (constant folding is already done by the smart constructors;
  here we add factoring and idempotence rules that need a global view).
* :func:`prune_subsumed` additionally uses *exact* language-inclusion
  tests to drop alternation branches already covered by their siblings
  -- semantic, still language-preserving.

Neither changes the described language; property tests assert this.
"""

from __future__ import annotations

from .ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    alt,
    concat,
    opt,
    plus,
    star,
)
from .language import is_equivalent, is_subset


def _rebuild(node: Regex) -> Regex:
    """One bottom-up pass of local rewrites."""
    if isinstance(node, (Sym, Epsilon, Empty)):
        return node
    if isinstance(node, Concat):
        items = [_rebuild(i) for i in node.items]
        items = _fuse_repetitions(items)
        return concat(*items)
    if isinstance(node, Alt):
        items = [_rebuild(i) for i in node.items]
        # epsilon | r  ==>  r?   (and drop further epsilons)
        if any(isinstance(i, Epsilon) for i in items):
            rest = [i for i in items if not isinstance(i, Epsilon)]
            if not rest:
                return Epsilon()
            return opt(alt(*rest))
        return alt(*items)
    if isinstance(node, Star):
        inner = _rebuild(node.item)
        # (r1? | r2)* == (r1 | r2)*: optionality inside a star is noise.
        inner = _strip_nullability_markers(inner)
        return star(inner)
    if isinstance(node, Plus):
        return plus(_rebuild(node.item))
    if isinstance(node, Opt):
        return opt(_rebuild(node.item))
    raise TypeError(f"unknown regex node {node!r}")


def _strip_nullability_markers(node: Regex) -> Regex:
    """Under a star, ``r?`` and ``r+`` may be replaced by ``r``/kept tight.

    ``(a?)* == a*`` and ``(a+)* == a*``; similarly inside a top-level
    alternation under the star.
    """
    if isinstance(node, (Opt, Plus)):
        return _strip_nullability_markers(node.item)
    if isinstance(node, Alt):
        return alt(*(_strip_nullability_markers(i) for i in node.items))
    return node


def _rep_parts(node: Regex) -> tuple[Regex, int, bool]:
    """Decompose an item as (body, min_count, unbounded)."""
    if isinstance(node, Star):
        return (node.item, 0, True)
    if isinstance(node, Plus):
        return (node.item, 1, True)
    if isinstance(node, Opt):
        return (node.item, 0, False)
    return (node, 1, False)


def _fuse_repetitions(items: list[Regex]) -> list[Regex]:
    """Fuse runs of repetitions of one body.

    ``a*, a, a*`` becomes ``a+``; ``a, a+, a*`` becomes ``a, a, a*``;
    bounded-only runs (``a?, a``) are left alone because DTD syntax has
    no counted repetition.
    """
    out: list[Regex] = []
    index = 0
    while index < len(items):
        body, minimum, unbounded = _rep_parts(items[index])
        end = index + 1
        while end < len(items):
            next_body, next_min, next_unbounded = _rep_parts(items[end])
            if next_body != body:
                break
            minimum += next_min
            unbounded = unbounded or next_unbounded
            end += 1
        if end - index > 1 and unbounded:
            if minimum == 0:
                out.append(star(body))
            else:
                out.extend([body] * (minimum - 1))
                out.append(plus(body))
        else:
            out.extend(items[index:end])
        index = end
    return out


def simplify(node: Regex) -> Regex:
    """Apply syntactic rewrites until a fixpoint."""
    current = node
    for _ in range(32):  # fixpoint guard; rewrites strictly shrink
        rebuilt = _rebuild(current)
        if rebuilt == current:
            return current
        current = rebuilt
    return current


def prune_subsumed(node: Regex) -> Regex:
    """Drop alternation branches subsumed by their siblings (exact).

    Applied bottom-up; every drop is justified by a language-inclusion
    test, so the result is equivalent to the input.
    """
    if isinstance(node, (Sym, Epsilon, Empty)):
        return node
    if isinstance(node, Concat):
        return concat(*(prune_subsumed(i) for i in node.items))
    if isinstance(node, Star):
        return star(prune_subsumed(node.item))
    if isinstance(node, Plus):
        return plus(prune_subsumed(node.item))
    if isinstance(node, Opt):
        return opt(prune_subsumed(node.item))
    if isinstance(node, Alt):
        items = [prune_subsumed(i) for i in node.items]
        kept: list[Regex] = []
        for index, item in enumerate(items):
            others = kept + items[index + 1:]
            if others and is_subset(item, alt(*others)):
                continue
            kept.append(item)
        return alt(*kept)
    raise TypeError(f"unknown regex node {node!r}")


def simplify_deep(node: Regex) -> Regex:
    """Syntactic simplification plus semantic subsumption pruning.

    The result is language-equivalent to the input (asserted in debug
    builds via :func:`repro.regex.language.is_equivalent`).
    """
    result = simplify(prune_subsumed(simplify(node)))
    if __debug__ and not is_equivalent(node, result):  # pragma: no cover
        raise AssertionError(
            f"simplification changed the language: {node} -> {result}"
        )
    return result
