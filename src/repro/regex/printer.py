"""Rendering regular expressions back to DTD content-model syntax.

The printer emits the notation used throughout the paper: ``,`` for
sequence, ``|`` for alternation, postfix ``*``, ``+``, ``?``, and
``name^i`` for specialized (tagged) names.  Parentheses are inserted
only where required by precedence, so round-tripping through the parser
is stable.
"""

from __future__ import annotations

from .ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
)

#: Precedence levels, loosest first: Alt < Concat < postfix < atom.
_PREC_ALT = 0
_PREC_CONCAT = 1
_PREC_POSTFIX = 2
_PREC_ATOM = 3


def _precedence(r: Regex) -> int:
    if isinstance(r, Alt):
        return _PREC_ALT
    if isinstance(r, Concat):
        return _PREC_CONCAT
    if isinstance(r, (Star, Plus, Opt)):
        return _PREC_POSTFIX
    return _PREC_ATOM


def _wrap(r: Regex, parent_prec: int) -> str:
    text = to_string(r)
    if _precedence(r) < parent_prec:
        return f"({text})"
    return text


def to_string(r: Regex) -> str:
    """Render ``r`` in DTD content-model notation.

    ``Epsilon`` prints as ``()`` and ``Empty`` as ``#FAIL``; both occur
    only in intermediate results, never in finished DTDs.
    """
    if isinstance(r, Sym):
        if r.tag == 0:
            return r.name
        return f"{r.name}^{r.tag}"
    if isinstance(r, Epsilon):
        return "()"
    if isinstance(r, Empty):
        return "#FAIL"
    if isinstance(r, Concat):
        return ", ".join(_wrap(i, _PREC_CONCAT) for i in r.items)
    if isinstance(r, Alt):
        return " | ".join(_wrap(i, _PREC_CONCAT) for i in r.items)
    if isinstance(r, Star):
        return _wrap(r.item, _PREC_ATOM) + "*"
    if isinstance(r, Plus):
        return _wrap(r.item, _PREC_ATOM) + "+"
    if isinstance(r, Opt):
        return _wrap(r.item, _PREC_ATOM) + "?"
    raise TypeError(f"unknown regex node {r!r}")


def to_xml_content_model(r: Regex) -> str:
    """Render ``r`` in strict XML 1.0 ``<!ELEMENT>`` syntax.

    XML requires the content model to be parenthesized as a whole and
    uses no whitespace conventions; tags are not representable, so the
    caller should pass an untagged expression (see ``regex.ast.image``).
    """
    text = to_string(r)
    if not text.startswith("("):
        text = f"({text})"
    return text
