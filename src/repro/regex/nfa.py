"""Glushkov (position) automaton construction.

The Glushkov automaton of a regular expression has one state per symbol
*occurrence* (position) plus a start state, and no epsilon transitions.
It is the standard construction for DTD content models: XML 1.0's
"deterministic content model" rule is exactly the requirement that the
Glushkov automaton be deterministic.

States are integers: ``0`` is the start state; positions are numbered
``1..n`` in left-to-right occurrence order.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import Alt, Concat, Empty, Epsilon, Opt, Plus, Regex, Star, Sym, nullable


@dataclass(frozen=True)
class Nfa:
    """A Glushkov automaton.

    Attributes:
        n_positions: number of symbol occurrences in the expression.
        labels: ``labels[i]`` is the (name, tag) letter of position ``i+1``.
        first: positions that can start a word.
        last: positions that can end a word.
        follow: ``follow[p]`` is the set of positions that may follow ``p``.
        accepts_epsilon: whether the empty word is in the language.
    """

    n_positions: int
    labels: tuple[tuple[str, int], ...]
    first: frozenset[int]
    last: frozenset[int]
    follow: tuple[frozenset[int], ...]
    accepts_epsilon: bool

    def label(self, position: int) -> tuple[str, int]:
        """The letter carried by 1-based ``position``."""
        return self.labels[position - 1]

    def follow_of(self, position: int) -> frozenset[int]:
        """Positions reachable in one step from 1-based ``position``."""
        return self.follow[position - 1]

    def is_deterministic(self) -> bool:
        """XML 1.0 determinism: no state has two successors with one letter."""
        sources = [self.first] + [self.follow_of(p) for p in range(1, self.n_positions + 1)]
        for successors in sources:
            seen: set[tuple[str, int]] = set()
            for q in successors:
                letter = self.label(q)
                if letter in seen:
                    return False
                seen.add(letter)
        return True


@dataclass
class _Facts:
    """first/last/follow facts computed during the Glushkov recursion."""

    first: frozenset[int]
    last: frozenset[int]
    nullable: bool


def build_nfa(regex: Regex) -> Nfa:
    """Construct the Glushkov automaton of ``regex``."""
    labels: list[tuple[str, int]] = []
    follow: list[set[int]] = []

    def visit(node: Regex) -> _Facts:
        if isinstance(node, Sym):
            labels.append(node.key())
            follow.append(set())
            position = len(labels)
            singleton = frozenset((position,))
            return _Facts(singleton, singleton, False)
        if isinstance(node, Epsilon):
            return _Facts(frozenset(), frozenset(), True)
        if isinstance(node, Empty):
            return _Facts(frozenset(), frozenset(), False)
        if isinstance(node, Concat):
            facts = [visit(item) for item in node.items]
            # A concat of a nullable item contributes the next item's
            # first set transitively; fold left-to-right.
            combined_first: set[int] = set()
            for fact in facts:
                combined_first |= fact.first
                if not fact.nullable:
                    break
            combined_last: set[int] = set()
            for fact in reversed(facts):
                combined_last |= fact.last
                if not fact.nullable:
                    break
            # last -> first wiring must also skip nullable middles.
            for i, left in enumerate(facts[:-1]):
                reach: set[int] = set()
                for right in facts[i + 1:]:
                    reach |= right.first
                    if not right.nullable:
                        break
                for p in left.last:
                    follow[p - 1] |= reach
            return _Facts(
                frozenset(combined_first),
                frozenset(combined_last),
                all(f.nullable for f in facts),
            )
        if isinstance(node, Alt):
            facts = [visit(item) for item in node.items]
            return _Facts(
                frozenset().union(*(f.first for f in facts)),
                frozenset().union(*(f.last for f in facts)),
                any(f.nullable for f in facts),
            )
        if isinstance(node, (Star, Plus)):
            inner = visit(node.item)
            for p in inner.last:
                follow[p - 1] |= inner.first
            is_nullable = True if isinstance(node, Star) else inner.nullable
            return _Facts(inner.first, inner.last, is_nullable)
        if isinstance(node, Opt):
            inner = visit(node.item)
            return _Facts(inner.first, inner.last, True)
        raise TypeError(f"unknown regex node {node!r}")

    facts = visit(regex)
    return Nfa(
        n_positions=len(labels),
        labels=tuple(labels),
        first=facts.first,
        last=facts.last,
        follow=tuple(frozenset(f) for f in follow),
        accepts_epsilon=facts.nullable or nullable(regex),
    )


def nfa_accepts(nfa: Nfa, word: list[tuple[str, int]]) -> bool:
    """Simulate the Glushkov automaton on a word of (name, tag) letters."""
    if not word:
        return nfa.accepts_epsilon
    current: frozenset[int] = frozenset(
        p for p in nfa.first if nfa.label(p) == word[0]
    )
    for letter in word[1:]:
        if not current:
            return False
        next_states: set[int] = set()
        for p in current:
            for q in nfa.follow_of(p):
                if nfa.label(q) == letter:
                    next_states.add(q)
        current = frozenset(next_states)
    return bool(current & nfa.last)
