"""Regular expressions over element names (DTD content models).

This subpackage is the formal substrate of the paper: DTD types are
regular expressions over names (Definition 2.2), specialized DTDs use
tagged names (Definition 3.8), and every tightness question is a
regular-language question (Definition 3.3).

Public surface:

* AST and smart constructors: :mod:`repro.regex.ast`
* DTD content-model syntax: :func:`parse_regex`, :func:`to_string`
* Exact decision procedures: :mod:`repro.regex.language`
* Simplification: :func:`simplify`, :func:`simplify_deep`
* Counting and sampling: :mod:`repro.regex.counting`,
  :mod:`repro.regex.sampling`
"""

from .ast import (
    EMPTY,
    EPSILON,
    Alt,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    alphabet,
    alt,
    concat,
    image,
    names,
    nullable,
    opt,
    plus,
    rename,
    size,
    star,
    substitute,
    sym,
    symbols,
)
from .counting import (
    count_words_by_length,
    count_words_up_to,
    language_density,
    looseness_factor,
)
from .language import (
    difference_witness,
    is_empty,
    is_equivalent,
    is_proper_subset,
    is_subset,
    matches,
    matches_letters,
    minimal_dfa,
    to_dfa,
)
from .parser import parse_regex
from .printer import to_string, to_xml_content_model
from .sampling import sample_word, sample_word_uniform
from .simplify import simplify, simplify_deep

__all__ = [
    "EMPTY",
    "EPSILON",
    "Alt",
    "Concat",
    "Empty",
    "Epsilon",
    "Opt",
    "Plus",
    "Regex",
    "Star",
    "Sym",
    "alphabet",
    "alt",
    "concat",
    "count_words_by_length",
    "count_words_up_to",
    "difference_witness",
    "image",
    "is_empty",
    "is_equivalent",
    "is_proper_subset",
    "is_subset",
    "language_density",
    "looseness_factor",
    "matches",
    "matches_letters",
    "minimal_dfa",
    "names",
    "nullable",
    "opt",
    "parse_regex",
    "plus",
    "rename",
    "sample_word",
    "sample_word_uniform",
    "simplify",
    "simplify_deep",
    "size",
    "star",
    "substitute",
    "sym",
    "symbols",
    "to_dfa",
    "to_string",
    "to_xml_content_model",
]
