"""Regular expressions over element names (DTD content models).

This subpackage is the formal substrate of the paper: DTD types are
regular expressions over names (Definition 2.2), specialized DTDs use
tagged names (Definition 3.8), and every tightness question is a
regular-language question (Definition 3.3).

Public surface:

* AST and smart constructors: :mod:`repro.regex.ast`
* DTD content-model syntax: :func:`parse_regex`, :func:`to_string`
* Exact decision procedures: :mod:`repro.regex.language`
* Simplification: :func:`simplify`, :func:`simplify_deep`
* Counting and sampling: :mod:`repro.regex.counting`,
  :mod:`repro.regex.sampling`
* Kernel caches and statistics: :mod:`repro.regex.kernel`
  (:func:`kernel_stats`, :func:`clear_caches`)
"""

from .ast import (
    EMPTY,
    EPSILON,
    Alt,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    alphabet,
    alt,
    concat,
    image,
    letters,
    names,
    nullable,
    opt,
    plus,
    rename,
    size,
    star,
    substitute,
    sym,
    symbols,
)
from .kernel import kernel_stats, kernel_summary, register_cache, render_stats
from .counting import (
    count_words_by_length,
    count_words_up_to,
    language_density,
    looseness_factor,
)
from .language import (
    canonical_signature,
    clear_caches,
    difference_witness,
    equivalence_backend,
    is_empty,
    is_equivalent,
    is_equivalent_pairwise,
    is_proper_subset,
    is_subset,
    matches,
    matches_letters,
    minimal_dfa,
    set_equivalence_backend,
    to_dfa,
)
from .parser import parse_regex
from .printer import to_string, to_xml_content_model
from .sampling import sample_word, sample_word_uniform
from .simplify import simplify, simplify_deep

__all__ = [
    "EMPTY",
    "EPSILON",
    "Alt",
    "Concat",
    "Empty",
    "Epsilon",
    "Opt",
    "Plus",
    "Regex",
    "Star",
    "Sym",
    "alphabet",
    "alt",
    "canonical_signature",
    "clear_caches",
    "concat",
    "count_words_by_length",
    "count_words_up_to",
    "difference_witness",
    "equivalence_backend",
    "image",
    "is_empty",
    "is_equivalent",
    "is_equivalent_pairwise",
    "is_proper_subset",
    "is_subset",
    "kernel_stats",
    "kernel_summary",
    "language_density",
    "letters",
    "looseness_factor",
    "matches",
    "matches_letters",
    "minimal_dfa",
    "names",
    "nullable",
    "register_cache",
    "render_stats",
    "set_equivalence_backend",
    "opt",
    "parse_regex",
    "plus",
    "rename",
    "sample_word",
    "sample_word_uniform",
    "simplify",
    "simplify_deep",
    "size",
    "star",
    "substitute",
    "sym",
    "symbols",
    "to_dfa",
    "to_string",
    "to_xml_content_model",
]
