"""Regular-expression abstract syntax over element names.

DTD content models are regular expressions over element names
(Definition 2.2 of the paper).  Specialized DTDs (Definition 3.8) use
*tagged* names ``n^i``; we represent both uniformly with :class:`Sym`
carrying an integer ``tag`` where tag ``0`` means "unspecialized" and is
printed bare.

The node set mirrors XML 1.0 content-model syntax:

========== =====================================
node       XML / paper notation
========== =====================================
``Sym``    ``name`` or tagged ``name^i``
``Epsilon``the empty sequence (paper's ``e``)
``Empty``  the empty language (paper's ``fail``)
``Concat`` ``r1, r2``
``Alt``    ``r1 | r2``
``Star``   ``r*``
``Plus``   ``r+``
``Opt``    ``r?``
========== =====================================

All nodes are immutable, hashable and **hash-consed**: constructing a
node structurally equal to a live one returns the live one, so
structurally equal expressions are pointer-equal.  Each node carries
facts computed once at interning time -- its hash, its letter set
(``letters``), nullability (``null``), whether it mentions a proper
specialization (``has_tags``) and its node count (``n_nodes``) -- which
makes every downstream memoization key O(1) instead of a deep
structural walk.  The intern tables hold strong references (the node
universe of a mediator run is small and heavily reused, so a
process-wide canonical store beats weak tables that would let hot
nodes die between inference rounds and force re-derivation); they
survive :func:`repro.regex.clear_caches` on purpose, which keeps
pointer-equality stable across cache resets.  See
:mod:`repro.regex.kernel` for the cache registry and interning
statistics.

Use the smart constructors :func:`concat`, :func:`alt`, :func:`star`,
:func:`plus` and :func:`opt` rather than the dataclass constructors:
they apply the *safe local* normalizations (flattening, identity and
absorption laws for ``Epsilon`` and ``Empty``) that keep the paper's
``⊕`` / ``∥`` operators trivial, while never changing the described
language.

``Plus`` and ``Opt`` are first-class (not desugared) so that inferred
types print the way the paper writes them; the automata layer desugars
them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from functools import lru_cache
from typing import Any, Iterable, Iterator, Mapping

from . import kernel

#: An automaton letter: a (element name, specialization tag) pair.
Letter = tuple[str, int]


def _rebuild(cls: type, args: tuple) -> "Regex":
    """Pickle/copy support: reconstruct through the interning constructor."""
    return cls(*args)


class _InternMeta(type):
    """Metaclass that hash-conses every node construction.

    ``Cls(*args)`` looks the argument tuple up in the class's intern
    table first; on a hit the live node is returned **without running
    ``__init__`` at all**, so re-constructing an existing node costs
    one dict probe.  On a miss the node is built normally (running the
    dataclass field assignment, validation and fact derivation once)
    and then published.  Tables hold strong references: the canonical
    store is process-wide and survives :func:`clear_caches`, which is
    what keeps pointer-equality stable across cache resets.
    """

    def __init__(cls, name: str, bases: tuple, namespace: dict, **kwargs: Any) -> None:
        super().__init__(name, bases, namespace, **kwargs)
        table: dict[tuple, "Regex"] = {}
        cls._intern_table = table
        kernel.register_intern_table(name, lambda t=table: len(t))

    def __call__(cls, *args: Any, **kwargs: Any) -> "Regex":
        if kwargs or len(args) != cls._n_fields():
            args = cls._intern_key(args, kwargs)
        table = cls._intern_table
        node = table.get(args)
        if node is not None:
            kernel.INTERN_HITS[cls.__name__] += 1
            return node
        kernel.INTERN_MISSES[cls.__name__] += 1
        node = super().__call__(*args)
        table[args] = node
        return node

    def _n_fields(cls) -> int:
        spec = cls.__dict__.get("_intern_spec")
        if spec is None:
            spec = cls._build_intern_spec()
        return len(spec[0])

    def _build_intern_spec(cls) -> tuple:
        from dataclasses import MISSING

        fields = dataclass_fields(cls)
        spec = (
            tuple(f.name for f in fields),
            tuple(f.default for f in fields),
            MISSING,
        )
        cls._intern_spec = spec
        return spec

    def interned(cls) -> int:
        """Number of live nodes in this class's intern table."""
        return len(cls._intern_table)

    def _intern_key(cls, args: tuple, kwargs: dict) -> tuple:
        """Normalize a mixed/partial call to the full positional tuple."""
        names, defaults, missing = cls.__dict__.get(
            "_intern_spec"
        ) or cls._build_intern_spec()
        full = list(args)
        for name, default in zip(names[len(args):], defaults[len(args):]):
            if name in kwargs:
                full.append(kwargs[name])
            elif default is not missing:
                full.append(default)
            else:
                raise TypeError(
                    f"{cls.__name__}() missing required argument {name!r}"
                )
        return tuple(full)


@dataclass(frozen=True, eq=False)
class Regex(metaclass=_InternMeta):
    """Base class for hash-consed regular-expression nodes.

    Derived facts, set once when a node is first interned:

    ``letters``
        the frozenset of ``(name, tag)`` letters occurring in the node;
    ``null``
        whether the empty sequence belongs to the node's language;
    ``has_tags``
        whether any letter is a proper specialization (tag != 0);
    ``n_nodes``
        the AST node count.
    """

    def __post_init__(self) -> None:
        letters, null, has_tags, n_nodes = self._derive()
        put = object.__setattr__
        put(self, "letters", letters)
        put(self, "null", null)
        put(self, "has_tags", has_tags)
        put(self, "n_nodes", n_nodes)
        put(self, "_hash", hash((type(self).__name__, self._fields())))

    def _derive(self) -> tuple[frozenset[Letter], bool, bool, int]:
        raise TypeError(f"cannot instantiate abstract node {type(self).__name__}")

    def _fields(self) -> tuple:
        return ()

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        # Interning makes structurally equal live nodes identical; the
        # structural fallback only matters for nodes resurrected through
        # pickling boundaries or constructed with unusual call shapes.
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._fields() == other._fields()  # type: ignore[union-attr]

    def __copy__(self) -> "Regex":
        return self

    def __deepcopy__(self, memo: dict) -> "Regex":
        return self

    def __reduce__(self) -> tuple:
        return (_rebuild, (type(self), self._fields()))

    def __str__(self) -> str:  # pragma: no cover - thin delegation
        from .printer import to_string

        return to_string(self)


@dataclass(frozen=True, eq=False)
class Sym(Regex):
    """A (possibly tagged) element name.

    ``Sym("publication")`` is the plain name; ``Sym("publication", 1)``
    is the specialization ``publication^1`` of Definition 3.8.
    """

    name: str
    tag: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("element name must be non-empty")
        if self.tag < 0:
            raise ValueError("specialization tag must be non-negative")
        super().__post_init__()

    def _derive(self) -> tuple[frozenset[Letter], bool, bool, int]:
        return frozenset(((self.name, self.tag),)), False, self.tag != 0, 1

    def _fields(self) -> tuple:
        return (self.name, self.tag)

    @property
    def is_tagged(self) -> bool:
        """True when this symbol is a proper specialization (tag != 0)."""
        return self.tag != 0

    def image(self) -> "Sym":
        """The untagged symbol, per Definition 3.9."""
        return self if self.tag == 0 else Sym(self.name, 0)

    def key(self) -> Letter:
        """Hashable (name, tag) pair used as an automaton alphabet letter."""
        return (self.name, self.tag)


@dataclass(frozen=True, eq=False)
class Epsilon(Regex):
    """The language containing only the empty sequence."""

    def _derive(self) -> tuple[frozenset[Letter], bool, bool, int]:
        return frozenset(), True, False, 1


@dataclass(frozen=True, eq=False)
class Empty(Regex):
    """The empty language -- the paper's ``fail`` value."""

    def _derive(self) -> tuple[frozenset[Letter], bool, bool, int]:
        return frozenset(), False, False, 1


@dataclass(frozen=True, eq=False)
class Concat(Regex):
    """Sequence ``r1, r2, ..., rk`` (k >= 2 after normalization)."""

    items: tuple[Regex, ...]

    def _derive(self) -> tuple[frozenset[Letter], bool, bool, int]:
        return (
            frozenset().union(*(i.letters for i in self.items)),
            all(i.null for i in self.items),
            any(i.has_tags for i in self.items),
            1 + sum(i.n_nodes for i in self.items),
        )

    def _fields(self) -> tuple:
        return (self.items,)


@dataclass(frozen=True, eq=False)
class Alt(Regex):
    """Alternation ``r1 | r2 | ... | rk`` (k >= 2 after normalization)."""

    items: tuple[Regex, ...]

    def _derive(self) -> tuple[frozenset[Letter], bool, bool, int]:
        return (
            frozenset().union(*(i.letters for i in self.items)),
            any(i.null for i in self.items),
            any(i.has_tags for i in self.items),
            1 + sum(i.n_nodes for i in self.items),
        )

    def _fields(self) -> tuple:
        return (self.items,)


@dataclass(frozen=True, eq=False)
class Star(Regex):
    """Kleene closure ``r*``."""

    item: Regex

    def _derive(self) -> tuple[frozenset[Letter], bool, bool, int]:
        return self.item.letters, True, self.item.has_tags, 1 + self.item.n_nodes

    def _fields(self) -> tuple:
        return (self.item,)


@dataclass(frozen=True, eq=False)
class Plus(Regex):
    """One-or-more ``r+`` (equivalent to ``r, r*``)."""

    item: Regex

    def _derive(self) -> tuple[frozenset[Letter], bool, bool, int]:
        return (
            self.item.letters,
            self.item.null,
            self.item.has_tags,
            1 + self.item.n_nodes,
        )

    def _fields(self) -> tuple:
        return (self.item,)


@dataclass(frozen=True, eq=False)
class Opt(Regex):
    """Zero-or-one ``r?`` (equivalent to ``r | epsilon``)."""

    item: Regex

    def _derive(self) -> tuple[frozenset[Letter], bool, bool, int]:
        return self.item.letters, True, self.item.has_tags, 1 + self.item.n_nodes

    def _fields(self) -> tuple:
        return (self.item,)


#: Singletons for the two constant languages.
EPSILON = Epsilon()
EMPTY = Empty()


def sym(name: str, tag: int = 0) -> Sym:
    """Construct a (possibly tagged) name symbol."""
    return Sym(name, tag)


def concat(*parts: Regex) -> Regex:
    """Sequence the given expressions.

    Applies the identities ``r, epsilon = r`` and ``r, fail = fail`` and
    flattens nested concatenations.  With zero arguments returns
    ``EPSILON``.  This is exactly the paper's ``⊕`` operator extended to
    n-ary form: ``fail`` is absorbing.
    """
    flat: list[Regex] = []
    for part in parts:
        if isinstance(part, Empty):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.items)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alt(*parts: Regex) -> Regex:
    """Alternate the given expressions.

    Applies ``r | fail = r`` (the paper's ``∥`` operator: ``fail`` is the
    identity), flattens nested alternations, and drops syntactic
    duplicates (keeping first occurrence order).  With zero arguments
    returns ``EMPTY``.
    """
    flat: list[Regex] = []
    seen: set[Regex] = set()
    for part in parts:
        if isinstance(part, Empty):
            continue
        members = part.items if isinstance(part, Alt) else (part,)
        for member in members:
            if member not in seen:
                seen.add(member)
                flat.append(member)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Alt(tuple(flat))


def star(item: Regex) -> Regex:
    """Kleene closure with the identities on constants and idempotence."""
    if isinstance(item, (Epsilon, Empty)):
        return EPSILON
    if isinstance(item, (Star, Plus)):
        return Star(item.item)
    if isinstance(item, Opt):
        return Star(item.item)
    return Star(item)


def plus(item: Regex) -> Regex:
    """One-or-more with the identities on constants."""
    if isinstance(item, (Epsilon, Empty)):
        return item
    if isinstance(item, (Star, Opt)):
        return star(item.item)
    if isinstance(item, Plus):
        return item
    return Plus(item)


def opt(item: Regex) -> Regex:
    """Zero-or-one with the identities on constants."""
    if isinstance(item, Epsilon):
        return EPSILON
    if isinstance(item, Empty):
        return EPSILON
    if isinstance(item, (Star, Opt)):
        return item
    if isinstance(item, Plus):
        return star(item.item)
    return Opt(item)


def symbols(r: Regex) -> Iterator[Sym]:
    """Yield every symbol occurrence in ``r`` in left-to-right order."""
    stack: list[Regex] = [r]
    out: list[Sym] = []
    while stack:
        node = stack.pop()
        if isinstance(node, Sym):
            out.append(node)
        elif isinstance(node, (Concat, Alt)):
            stack.extend(reversed(node.items))
        elif isinstance(node, (Star, Plus, Opt)):
            stack.append(node.item)
    # The stack discipline above visits in order already because we push
    # children reversed; collect then yield to keep the generator simple.
    yield from out


def letters(r: Regex) -> frozenset[Letter]:
    """The set of distinct (name, tag) letters of ``r`` (precomputed)."""
    return r.letters


def alphabet(r: Regex) -> frozenset[Sym]:
    """The set of distinct symbols appearing in ``r``."""
    return frozenset(Sym(name, tag) for name, tag in r.letters)


def names(r: Regex) -> frozenset[str]:
    """The set of distinct element names (tags ignored) appearing in ``r``."""
    return frozenset(name for name, _ in r.letters)


@lru_cache(maxsize=None)
def image(r: Regex) -> Regex:
    """Project specialization tags away, per Definition 3.9.

    The image of a tagged regular expression replaces every ``n^i``
    with ``n``.
    """
    if not r.has_tags:
        return r
    if isinstance(r, Sym):
        return r.image()
    if isinstance(r, Concat):
        return concat(*(image(i) for i in r.items))
    if isinstance(r, Alt):
        return alt(*(image(i) for i in r.items))
    if isinstance(r, Star):
        return star(image(r.item))
    if isinstance(r, Plus):
        return plus(image(r.item))
    if isinstance(r, Opt):
        return opt(image(r.item))
    return r


kernel.register_lru("ast.image", image)


def rename(r: Regex, mapping: Mapping[Letter, Sym]) -> Regex:
    """Replace symbols of ``r`` according to ``mapping`` (key -> new symbol).

    Symbols whose key is not in the mapping are kept unchanged.
    Subtrees whose letter set is disjoint from the mapping's keys are
    returned as-is (pointer-shared), not rebuilt.
    """
    if not mapping:
        return r
    keys = set(mapping.keys())

    def walk(node: Regex) -> Regex:
        if node.letters.isdisjoint(keys):
            return node
        if isinstance(node, Sym):
            return mapping.get(node.key(), node)
        if isinstance(node, Concat):
            return concat(*(walk(i) for i in node.items))
        if isinstance(node, Alt):
            return alt(*(walk(i) for i in node.items))
        if isinstance(node, Star):
            return star(walk(node.item))
        if isinstance(node, Plus):
            return plus(walk(node.item))
        if isinstance(node, Opt):
            return opt(walk(node.item))
        return node

    return walk(r)


def substitute(r: Regex, replacements: Mapping[Letter, Regex]) -> Regex:
    """Replace symbols of ``r`` by whole expressions.

    This implements the *one-level extension* substitution of
    Definition 4.3: replacing a name by its (parenthesized) type.
    """
    if not replacements:
        return r
    keys = set(replacements.keys())

    def walk(node: Regex) -> Regex:
        if node.letters.isdisjoint(keys):
            return node
        if isinstance(node, Sym):
            return replacements.get(node.key(), node)
        if isinstance(node, Concat):
            return concat(*(walk(i) for i in node.items))
        if isinstance(node, Alt):
            return alt(*(walk(i) for i in node.items))
        if isinstance(node, Star):
            return star(walk(node.item))
        if isinstance(node, Plus):
            return plus(walk(node.item))
        if isinstance(node, Opt):
            return opt(walk(node.item))
        return node

    return walk(r)


def nullable(r: Regex) -> bool:
    """True when the empty sequence belongs to ``L(r)`` (precomputed)."""
    return r.null


def size(r: Regex) -> int:
    """Number of AST nodes; a convenient complexity measure for benches."""
    return r.n_nodes


def is_tagged(r: Regex) -> bool:
    """True when ``r`` mentions at least one proper specialization."""
    return r.has_tags


def from_word(word: Iterable[Sym]) -> Regex:
    """The regex denoting exactly the given sequence of symbols."""
    return concat(*word)
