"""Regular-expression abstract syntax over element names.

DTD content models are regular expressions over element names
(Definition 2.2 of the paper).  Specialized DTDs (Definition 3.8) use
*tagged* names ``n^i``; we represent both uniformly with :class:`Sym`
carrying an integer ``tag`` where tag ``0`` means "unspecialized" and is
printed bare.

The node set mirrors XML 1.0 content-model syntax:

========== =====================================
node       XML / paper notation
========== =====================================
``Sym``    ``name`` or tagged ``name^i``
``Epsilon``the empty sequence (paper's ``e``)
``Empty``  the empty language (paper's ``fail``)
``Concat`` ``r1, r2``
``Alt``    ``r1 | r2``
``Star``   ``r*``
``Plus``   ``r+``
``Opt``    ``r?``
========== =====================================

All nodes are immutable and hashable.  Use the smart constructors
:func:`concat`, :func:`alt`, :func:`star`, :func:`plus` and :func:`opt`
rather than the dataclass constructors: they apply the *safe local*
normalizations (flattening, identity and absorption laws for ``Epsilon``
and ``Empty``) that keep the paper's ``⊕`` / ``∥`` operators trivial, while
never changing the described language.

``Plus`` and ``Opt`` are first-class (not desugared) so that inferred
types print the way the paper writes them; the automata layer desugars
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Regex:
    """Base class for regular-expression nodes."""

    def __str__(self) -> str:  # pragma: no cover - thin delegation
        from .printer import to_string

        return to_string(self)


@dataclass(frozen=True)
class Sym(Regex):
    """A (possibly tagged) element name.

    ``Sym("publication")`` is the plain name; ``Sym("publication", 1)``
    is the specialization ``publication^1`` of Definition 3.8.
    """

    name: str
    tag: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("element name must be non-empty")
        if self.tag < 0:
            raise ValueError("specialization tag must be non-negative")

    @property
    def is_tagged(self) -> bool:
        """True when this symbol is a proper specialization (tag != 0)."""
        return self.tag != 0

    def image(self) -> "Sym":
        """The untagged symbol, per Definition 3.9."""
        return self if self.tag == 0 else Sym(self.name, 0)

    def key(self) -> tuple[str, int]:
        """Hashable (name, tag) pair used as an automaton alphabet letter."""
        return (self.name, self.tag)


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language containing only the empty sequence."""


@dataclass(frozen=True)
class Empty(Regex):
    """The empty language -- the paper's ``fail`` value."""


@dataclass(frozen=True)
class Concat(Regex):
    """Sequence ``r1, r2, ..., rk`` (k >= 2 after normalization)."""

    items: tuple[Regex, ...]


@dataclass(frozen=True)
class Alt(Regex):
    """Alternation ``r1 | r2 | ... | rk`` (k >= 2 after normalization)."""

    items: tuple[Regex, ...]


@dataclass(frozen=True)
class Star(Regex):
    """Kleene closure ``r*``."""

    item: Regex


@dataclass(frozen=True)
class Plus(Regex):
    """One-or-more ``r+`` (equivalent to ``r, r*``)."""

    item: Regex


@dataclass(frozen=True)
class Opt(Regex):
    """Zero-or-one ``r?`` (equivalent to ``r | epsilon``)."""

    item: Regex


#: Singletons for the two constant languages.
EPSILON = Epsilon()
EMPTY = Empty()


def sym(name: str, tag: int = 0) -> Sym:
    """Construct a (possibly tagged) name symbol."""
    return Sym(name, tag)


def concat(*parts: Regex) -> Regex:
    """Sequence the given expressions.

    Applies the identities ``r, epsilon = r`` and ``r, fail = fail`` and
    flattens nested concatenations.  With zero arguments returns
    ``EPSILON``.  This is exactly the paper's ``⊕`` operator extended to
    n-ary form: ``fail`` is absorbing.
    """
    flat: list[Regex] = []
    for part in parts:
        if isinstance(part, Empty):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.items)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alt(*parts: Regex) -> Regex:
    """Alternate the given expressions.

    Applies ``r | fail = r`` (the paper's ``∥`` operator: ``fail`` is the
    identity), flattens nested alternations, and drops syntactic
    duplicates (keeping first occurrence order).  With zero arguments
    returns ``EMPTY``.
    """
    flat: list[Regex] = []
    seen: set[Regex] = set()
    for part in parts:
        if isinstance(part, Empty):
            continue
        members = part.items if isinstance(part, Alt) else (part,)
        for member in members:
            if member not in seen:
                seen.add(member)
                flat.append(member)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Alt(tuple(flat))


def star(item: Regex) -> Regex:
    """Kleene closure with the identities on constants and idempotence."""
    if isinstance(item, (Epsilon, Empty)):
        return EPSILON
    if isinstance(item, (Star, Plus)):
        return Star(item.item)
    if isinstance(item, Opt):
        return Star(item.item)
    return Star(item)


def plus(item: Regex) -> Regex:
    """One-or-more with the identities on constants."""
    if isinstance(item, (Epsilon, Empty)):
        return item
    if isinstance(item, (Star, Opt)):
        return star(item.item)
    if isinstance(item, Plus):
        return item
    return Plus(item)


def opt(item: Regex) -> Regex:
    """Zero-or-one with the identities on constants."""
    if isinstance(item, Epsilon):
        return EPSILON
    if isinstance(item, Empty):
        return EPSILON
    if isinstance(item, (Star, Opt)):
        return item
    if isinstance(item, Plus):
        return star(item.item)
    return Opt(item)


def symbols(r: Regex) -> Iterator[Sym]:
    """Yield every symbol occurrence in ``r`` in left-to-right order."""
    stack: list[Regex] = [r]
    out: list[Sym] = []
    while stack:
        node = stack.pop()
        if isinstance(node, Sym):
            out.append(node)
        elif isinstance(node, (Concat, Alt)):
            stack.extend(reversed(node.items))
        elif isinstance(node, (Star, Plus, Opt)):
            stack.append(node.item)
    # The stack discipline above visits in order already because we push
    # children reversed; collect then yield to keep the generator simple.
    yield from out


def alphabet(r: Regex) -> frozenset[Sym]:
    """The set of distinct symbols appearing in ``r``."""
    return frozenset(symbols(r))


def names(r: Regex) -> frozenset[str]:
    """The set of distinct element names (tags ignored) appearing in ``r``."""
    return frozenset(s.name for s in symbols(r))


def image(r: Regex) -> Regex:
    """Project specialization tags away, per Definition 3.9.

    The image of a tagged regular expression replaces every ``n^i``
    with ``n``.
    """
    if isinstance(r, Sym):
        return r.image()
    if isinstance(r, Concat):
        return concat(*(image(i) for i in r.items))
    if isinstance(r, Alt):
        return alt(*(image(i) for i in r.items))
    if isinstance(r, Star):
        return star(image(r.item))
    if isinstance(r, Plus):
        return plus(image(r.item))
    if isinstance(r, Opt):
        return opt(image(r.item))
    return r


def rename(r: Regex, mapping: dict[tuple[str, int], Sym]) -> Regex:
    """Replace symbols of ``r`` according to ``mapping`` (key -> new symbol).

    Symbols whose key is not in the mapping are kept unchanged.
    """
    if isinstance(r, Sym):
        return mapping.get(r.key(), r)
    if isinstance(r, Concat):
        return concat(*(rename(i, mapping) for i in r.items))
    if isinstance(r, Alt):
        return alt(*(rename(i, mapping) for i in r.items))
    if isinstance(r, Star):
        return star(rename(r.item, mapping))
    if isinstance(r, Plus):
        return plus(rename(r.item, mapping))
    if isinstance(r, Opt):
        return opt(rename(r.item, mapping))
    return r


def substitute(r: Regex, replacements: dict[tuple[str, int], Regex]) -> Regex:
    """Replace symbols of ``r`` by whole expressions.

    This implements the *one-level extension* substitution of
    Definition 4.3: replacing a name by its (parenthesized) type.
    """
    if isinstance(r, Sym):
        return replacements.get(r.key(), r)
    if isinstance(r, Concat):
        return concat(*(substitute(i, replacements) for i in r.items))
    if isinstance(r, Alt):
        return alt(*(substitute(i, replacements) for i in r.items))
    if isinstance(r, Star):
        return star(substitute(r.item, replacements))
    if isinstance(r, Plus):
        return plus(substitute(r.item, replacements))
    if isinstance(r, Opt):
        return opt(substitute(r.item, replacements))
    return r


@lru_cache(maxsize=65536)
def nullable(r: Regex) -> bool:
    """True when the empty sequence belongs to ``L(r)``."""
    if isinstance(r, (Epsilon, Star, Opt)):
        return True
    if isinstance(r, (Empty, Sym)):
        return False
    if isinstance(r, Concat):
        return all(nullable(i) for i in r.items)
    if isinstance(r, Alt):
        return any(nullable(i) for i in r.items)
    if isinstance(r, Plus):
        return nullable(r.item)
    raise TypeError(f"unknown regex node {r!r}")


def size(r: Regex) -> int:
    """Number of AST nodes; a convenient complexity measure for benches."""
    if isinstance(r, (Sym, Epsilon, Empty)):
        return 1
    if isinstance(r, (Concat, Alt)):
        return 1 + sum(size(i) for i in r.items)
    if isinstance(r, (Star, Plus, Opt)):
        return 1 + size(r.item)
    raise TypeError(f"unknown regex node {r!r}")


def is_tagged(r: Regex) -> bool:
    """True when ``r`` mentions at least one proper specialization."""
    return any(s.is_tagged for s in symbols(r))


def from_word(word: Iterable[Sym]) -> Regex:
    """The regex denoting exactly the given sequence of symbols."""
    return concat(*word)
