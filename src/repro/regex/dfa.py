"""Deterministic finite automata over (name, tag) letters.

DFAs here are the workhorse for the *exact* language questions the
inference algorithms ask: emptiness, membership, inclusion and
equivalence.  They are built from Glushkov automata by the subset
construction and minimized with Hopcroft's algorithm.

A DFA is always *complete* over its declared alphabet (a sink state is
added when needed), which makes complementation trivial.  Letters not
in the alphabet are implicitly rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .ast import Regex, alphabet
from .nfa import build_nfa

Letter = tuple[str, int]


@dataclass(frozen=True)
class Dfa:
    """A complete DFA.

    Attributes:
        alphabet: the letters the automaton is defined over.
        n_states: number of states, numbered ``0..n_states-1``.
        start: the start state.
        accepting: the accepting states.
        transitions: ``transitions[state][letter]`` is the next state;
            every (state, letter) pair over the alphabet is present.
    """

    alphabet: frozenset[Letter]
    n_states: int
    start: int
    accepting: frozenset[int]
    transitions: tuple[dict[Letter, int], ...]

    def step(self, state: int, letter: Letter) -> int | None:
        """Next state, or None when the letter is outside the alphabet."""
        return self.transitions[state].get(letter)

    def accepts(self, word: Sequence[Letter]) -> bool:
        """Run the automaton on ``word``."""
        state = self.start
        for letter in word:
            next_state = self.step(state, letter)
            if next_state is None:
                return False
            state = next_state
        return state in self.accepting

    def is_empty(self) -> bool:
        """True when the automaton accepts no word."""
        return not self._reachable_accepting()

    def _reachable_accepting(self) -> bool:
        seen = {self.start}
        frontier = [self.start]
        while frontier:
            state = frontier.pop()
            if state in self.accepting:
                return True
            for target in self.transitions[state].values():
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return False

    def shortest_word(self) -> list[Letter] | None:
        """A shortest accepted word, or None when the language is empty."""
        from collections import deque

        parents: dict[int, tuple[int, Letter] | None] = {self.start: None}
        queue: deque[int] = deque([self.start])
        goal: int | None = None
        while queue:
            state = queue.popleft()
            if state in self.accepting:
                goal = state
                break
            for letter, target in sorted(self.transitions[state].items()):
                if target not in parents:
                    parents[target] = (state, letter)
                    queue.append(target)
        if goal is None:
            return None
        word: list[Letter] = []
        state = goal
        while parents[state] is not None:
            state, letter = parents[state]  # type: ignore[misc]
            word.append(letter)
        word.reverse()
        return word


def dfa_from_regex(regex: Regex, extra_alphabet: Iterable[Letter] = ()) -> Dfa:
    """Subset-construct a complete DFA from the Glushkov automaton.

    ``extra_alphabet`` extends the automaton's alphabet beyond the
    letters occurring in the expression; inclusion checks between two
    expressions must use the union of their alphabets.
    """
    nfa = build_nfa(regex)
    letters = frozenset(nfa.labels) | frozenset(extra_alphabet)
    # Each DFA state is a frozenset of Glushkov positions; the virtual
    # position 0 is the pre-first start state.
    start_key: frozenset[int] = frozenset((0,))
    subset_ids: dict[frozenset[int], int] = {start_key: 0}
    transitions: list[dict[Letter, int]] = [{}]
    accepting: set[int] = set()
    if nfa.accepts_epsilon:
        accepting.add(0)
    sink: int | None = None

    def successors(subset: frozenset[int]) -> dict[Letter, frozenset[int]]:
        by_letter: dict[Letter, set[int]] = {}
        for position in subset:
            source = nfa.first if position == 0 else nfa.follow_of(position)
            for successor in source:
                by_letter.setdefault(nfa.label(successor), set()).add(successor)
        return {letter: frozenset(s) for letter, s in by_letter.items()}

    worklist = [start_key]
    while worklist:
        subset = worklist.pop()
        state_id = subset_ids[subset]
        if subset & nfa.last:
            accepting.add(state_id)
        succ = successors(subset)
        for letter in letters:
            targets = succ.get(letter, frozenset())
            if not targets:
                if sink is None:
                    sink = len(transitions)
                    transitions.append({})
                transitions[state_id][letter] = sink
                continue
            if targets not in subset_ids:
                subset_ids[targets] = len(transitions)
                transitions.append({})
                worklist.append(targets)
            transitions[state_id][letter] = subset_ids[targets]
    if sink is not None:
        for letter in letters:
            transitions[sink][letter] = sink
    return Dfa(
        alphabet=letters,
        n_states=len(transitions),
        start=0,
        accepting=frozenset(accepting),
        transitions=tuple(transitions),
    )


def complement(dfa: Dfa) -> Dfa:
    """The complement DFA (relative to the DFA's own alphabet)."""
    return Dfa(
        alphabet=dfa.alphabet,
        n_states=dfa.n_states,
        start=dfa.start,
        accepting=frozenset(range(dfa.n_states)) - dfa.accepting,
        transitions=dfa.transitions,
    )


def product(left: Dfa, right: Dfa, accept) -> Dfa:
    """Product automaton; ``accept(a_ok, b_ok)`` defines acceptance.

    Both inputs must share the same alphabet (use ``with_alphabet`` to
    align them first).
    """
    if left.alphabet != right.alphabet:
        raise ValueError("product requires aligned alphabets")
    letters = left.alphabet
    start = (left.start, right.start)
    ids: dict[tuple[int, int], int] = {start: 0}
    transitions: list[dict[Letter, int]] = [{}]
    accepting: set[int] = set()
    worklist = [start]
    while worklist:
        pair = worklist.pop()
        state_id = ids[pair]
        a, b = pair
        if accept(a in left.accepting, b in right.accepting):
            accepting.add(state_id)
        for letter in letters:
            target = (left.transitions[a][letter], right.transitions[b][letter])
            if target not in ids:
                ids[target] = len(transitions)
                transitions.append({})
                worklist.append(target)
            transitions[state_id][letter] = ids[target]
    return Dfa(
        alphabet=letters,
        n_states=len(transitions),
        start=0,
        accepting=frozenset(accepting),
        transitions=tuple(transitions),
    )


def with_alphabet(dfa: Dfa, letters: frozenset[Letter]) -> Dfa:
    """Extend a DFA to a superset alphabet (new letters go to a sink)."""
    if letters == dfa.alphabet:
        return dfa
    if not letters >= dfa.alphabet:
        raise ValueError("target alphabet must be a superset")
    new_letters = letters - dfa.alphabet
    sink = dfa.n_states
    transitions = [dict(t) for t in dfa.transitions]
    transitions.append({})
    for table in transitions:
        for letter in new_letters:
            table[letter] = sink
    for letter in letters:
        transitions[sink][letter] = sink
    return Dfa(
        alphabet=letters,
        n_states=dfa.n_states + 1,
        start=dfa.start,
        accepting=dfa.accepting,
        transitions=tuple(transitions),
    )


#: Fingerprint of the empty language (no live states to enumerate).
EMPTY_SIGNATURE: tuple = ("empty",)

#: A canonical fingerprint of a regular language; see :func:`dfa_signature`.
Signature = tuple


def dfa_signature(dfa: Dfa) -> Signature:
    """Canonical fingerprint of ``L(dfa)``; requires a *minimal* input DFA.

    The fingerprint is the trimmed automaton (dead states and the
    transitions into them dropped) with states renumbered by BFS from
    the start state following letter-sorted transitions.  The minimal
    DFA of a language is unique up to isomorphism and BFS renumbering
    picks a canonical representative of the isomorphism class, so two
    minimal DFAs have equal signatures iff their languages are equal.
    Trimming makes the fingerprint independent of the declared
    alphabet: letters that occur in no accepted word leave no trace,
    so e.g. ``(a, b*)`` restricted to words without ``b`` and plain
    ``a`` fingerprint identically.
    """
    # States that can reach an accepting state (the live ones, since a
    # minimized DFA is already restricted to reachable states).
    reverse: dict[int, set[int]] = {}
    for state, table in enumerate(dfa.transitions):
        for target in table.values():
            reverse.setdefault(target, set()).add(state)
    alive = set(dfa.accepting)
    frontier = list(alive)
    while frontier:
        state = frontier.pop()
        for predecessor in reverse.get(state, ()):
            if predecessor not in alive:
                alive.add(predecessor)
                frontier.append(predecessor)
    if dfa.start not in alive:
        return EMPTY_SIGNATURE
    order: dict[int, int] = {dfa.start: 0}
    bfs = [dfa.start]
    rows: list[tuple[bool, tuple[tuple[Letter, int], ...]]] = []
    for state in bfs:  # grows during iteration: BFS
        row: list[tuple[Letter, int]] = []
        for letter in sorted(dfa.transitions[state]):
            target = dfa.transitions[state][letter]
            if target not in alive:
                continue
            if target not in order:
                order[target] = len(order)
                bfs.append(target)
            row.append((letter, order[target]))
        rows.append((state in dfa.accepting, tuple(row)))
    return (len(rows), tuple(rows))


def minimize(dfa: Dfa) -> Dfa:
    """Hopcroft minimization (on the reachable part of the DFA)."""
    # Restrict to reachable states first.
    reachable: list[int] = [dfa.start]
    seen = {dfa.start}
    for state in reachable:
        for target in dfa.transitions[state].values():
            if target not in seen:
                seen.add(target)
                reachable.append(target)
    remap = {old: new for new, old in enumerate(reachable)}
    n = len(reachable)
    letters = sorted(dfa.alphabet)
    delta = [
        {letter: remap[dfa.transitions[old][letter]] for letter in letters}
        for old in reachable
    ]
    accepting = frozenset(remap[s] for s in dfa.accepting if s in remap)

    # Hopcroft partition refinement.
    non_accepting = frozenset(range(n)) - accepting
    partition: list[set[int]] = [set(p) for p in (accepting, non_accepting) if p]
    worklist: list[frozenset[int]] = [frozenset(p) for p in partition]
    # Precompute inverse transitions.
    inverse: dict[tuple[Letter, int], set[int]] = {}
    for state in range(n):
        for letter in letters:
            inverse.setdefault((letter, delta[state][letter]), set()).add(state)

    while worklist:
        splitter = worklist.pop()
        for letter in letters:
            predecessors: set[int] = set()
            for target in splitter:
                predecessors |= inverse.get((letter, target), set())
            if not predecessors:
                continue
            new_partition: list[set[int]] = []
            for block in partition:
                inside = block & predecessors
                outside = block - predecessors
                if inside and outside:
                    new_partition.extend((inside, outside))
                    smaller = frozenset(min(inside, outside, key=len))
                    worklist.append(smaller)
                else:
                    new_partition.append(block)
            partition = new_partition

    block_of: dict[int, int] = {}
    for block_id, block in enumerate(partition):
        for state in block:
            block_of[state] = block_id
    transitions = [
        {letter: block_of[delta[next(iter(block))][letter]] for letter in letters}
        for block in partition
    ]
    return Dfa(
        alphabet=dfa.alphabet,
        n_states=len(partition),
        start=block_of[remap[dfa.start]],
        accepting=frozenset(block_of[s] for s in accepting),
        transitions=tuple(transitions),
    )
