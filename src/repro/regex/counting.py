"""Counting words of a regular language by length.

The *looseness factor* experiments (DESIGN.md, E12) quantify the
paper's Section 3.2 information-loss discussion: a looser content model
accepts strictly more child-name sequences, and counting the accepted
sequences of each length measures exactly how much looser it is.

Counting uses the transfer matrix of the (minimized) DFA: the number of
accepted words of length k is ``e_start · M^k · accept`` where ``M`` is
the state-to-state edge-count matrix.  Counts grow exponentially, so we
use exact Python integers (not floats).
"""

from __future__ import annotations

from .ast import Regex
from .dfa import Dfa
from .language import minimal_dfa


def _transfer_matrix(dfa: Dfa) -> list[list[int]]:
    n = dfa.n_states
    matrix = [[0] * n for _ in range(n)]
    for state in range(n):
        for target in dfa.transitions[state].values():
            matrix[state][target] += 1
    return matrix


def count_words_by_length(regex: Regex, max_length: int) -> list[int]:
    """``result[k]`` = number of words of length exactly ``k`` in L(regex).

    Counts are exact arbitrary-precision integers.
    """
    dfa = minimal_dfa(regex)
    matrix = _transfer_matrix(dfa)
    n = dfa.n_states
    # row vector: number of paths from start to each state, by length.
    row = [0] * n
    row[dfa.start] = 1
    counts: list[int] = []
    for _ in range(max_length + 1):
        counts.append(sum(row[s] for s in dfa.accepting))
        row = [
            sum(row[s] * matrix[s][t] for s in range(n) if matrix[s][t])
            for t in range(n)
        ]
    return counts


def count_words_up_to(regex: Regex, max_length: int) -> int:
    """Total number of words of length at most ``max_length``."""
    return sum(count_words_by_length(regex, max_length))


def looseness_factor(loose: Regex, tight: Regex, max_length: int) -> float:
    """How many times more sequences ``loose`` admits than ``tight``.

    Both are counted up to ``max_length``.  Returns ``inf`` when the
    tight language is empty but the loose one is not.
    """
    loose_count = count_words_up_to(loose, max_length)
    tight_count = count_words_up_to(tight, max_length)
    if tight_count == 0:
        return float("inf") if loose_count else 1.0
    return loose_count / tight_count


def language_density(regex: Regex, max_length: int) -> list[float]:
    """Accepted fraction of all possible words per length.

    The denominator is ``|alphabet|^k``; useful to compare content
    models over the same alphabet on a normalized scale.
    """
    dfa = minimal_dfa(regex)
    k = len(dfa.alphabet)
    counts = count_words_by_length(regex, max_length)
    return [
        count / (k ** length) if k else (1.0 if count else 0.0)
        for length, count in enumerate(counts)
    ]
