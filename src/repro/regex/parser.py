"""Parser for DTD content-model expressions.

Accepts the notation used in the paper and in XML 1.0 element type
declarations::

    name, professor+, gradStudent+, course*
    title, author+, (journal | conference)
    firstName, lastName, publication*, publication^1, publication*

Grammar (standard precedence: ``|`` loosest, then ``,``, then postfix)::

    alt      := concat ("|" concat)*
    concat   := postfix ("," postfix)*
    postfix  := atom ("*" | "+" | "?")*
    atom     := "(" alt ")" | "()" | "#FAIL" | name ("^" int)?
    name     := [A-Za-z_][A-Za-z0-9_.-]*

``()`` denotes the empty sequence and ``#FAIL`` the empty language;
both appear only in intermediate expressions.  ``#PCDATA`` is *not*
part of this grammar -- character content is a separate kind of type at
the DTD level (see ``repro.dtd``).
"""

from __future__ import annotations

import re

from ..errors import RegexSyntaxError
from .ast import EMPTY, EPSILON, Regex, alt, concat, opt, plus, star, sym

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")
_WS_RE = re.compile(r"\s+")


class _Parser:
    """Recursive-descent parser over a content-model string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.text, self.pos)

    def skip_ws(self) -> None:
        match = _WS_RE.match(self.text, self.pos)
        if match:
            self.pos = match.end()

    def peek(self) -> str:
        self.skip_ws()
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def take(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def parse(self) -> Regex:
        result = self.parse_alt()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("unexpected trailing input")
        return result

    def parse_alt(self) -> Regex:
        parts = [self.parse_concat()]
        while self.peek() == "|":
            self.pos += 1
            parts.append(self.parse_concat())
        return alt(*parts) if len(parts) > 1 else parts[0]

    def parse_concat(self) -> Regex:
        parts = [self.parse_postfix()]
        while self.peek() == ",":
            self.pos += 1
            parts.append(self.parse_postfix())
        return concat(*parts) if len(parts) > 1 else parts[0]

    def parse_postfix(self) -> Regex:
        result = self.parse_atom()
        while True:
            char = self.peek()
            if char == "*":
                result = star(result)
            elif char == "+":
                result = plus(result)
            elif char == "?":
                result = opt(result)
            else:
                return result
            self.pos += 1

    def parse_atom(self) -> Regex:
        char = self.peek()
        if char == "(":
            self.pos += 1
            if self.peek() == ")":
                self.pos += 1
                return EPSILON
            inner = self.parse_alt()
            self.take(")")
            return inner
        if char == "#":
            if self.text.startswith("#FAIL", self.pos):
                self.pos += len("#FAIL")
                return EMPTY
            raise self.error("unknown # token (only #FAIL is recognized)")
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise self.error("expected a name or '('")
        self.pos = match.end()
        tag = 0
        if self.pos < len(self.text) and self.text[self.pos] == "^":
            self.pos += 1
            digits = re.match(r"\d+", self.text[self.pos:])
            if not digits:
                raise self.error("expected a tag number after '^'")
            tag = int(digits.group())
            self.pos += digits.end()
        return sym(match.group(), tag)


def parse_regex(text: str) -> Regex:
    """Parse a DTD content-model expression.

    Raises :class:`repro.errors.RegexSyntaxError` on malformed input.
    """
    return _Parser(text).parse()
