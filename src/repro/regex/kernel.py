"""Central cache registry and statistics for the regex language kernel.

The language layer (hash-consed AST nodes, memoized automata, canonical
minimal-DFA signatures, the equivalence union-find) keeps a number of
process-wide caches.  They all register here so that

* :func:`clear_all` -- the implementation behind
  :func:`repro.regex.language.clear_caches` -- cannot silently miss one
  (the benchmark ``fresh_caches`` fixture depends on this), and
* :func:`kernel_stats` can report hit/miss/size counters for every
  cache in one place (surfaced by the CLI ``--stats`` flag and in
  benchmark ``extra_info``).

This module deliberately imports nothing from the rest of the package
so every sibling module may import it without cycles.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Optional

#: hash-consing counters, keyed by AST class name.  A *hit* means the
#: constructor returned an already-interned node; a *miss* means a new
#: node was built (and its derived facts computed once).
INTERN_HITS: Counter[str] = Counter()
INTERN_MISSES: Counter[str] = Counter()

#: free-form event counters for the decision procedures (equivalence
#: fast paths, signature comparisons, union-find resolutions, ...).
EVENTS: Counter[str] = Counter()

_ClearFn = Callable[[], None]
_InfoFn = Callable[[], Dict[str, Any]]

_CACHES: Dict[str, tuple[_ClearFn, Optional[_InfoFn]]] = {}

#: live-size probes for the interning tables, keyed by class name.
_INTERN_SIZES: Dict[str, Callable[[], int]] = {}

#: extra top-level ``kernel_stats()`` sections (e.g. ``repro.obs``
#: folds its metrics snapshot in under ``"obs"``).
_SECTIONS: Dict[str, _InfoFn] = {}


def register_cache(name: str, clear: _ClearFn, info: Optional[_InfoFn] = None) -> None:
    """Register a kernel cache by name.

    ``clear`` drops the cache's contents; ``info`` (optional) returns a
    stats dict.  Registering the same name twice replaces the entry,
    so module reloads stay harmless.
    """
    _CACHES[name] = (clear, info)


def register_lru(name: str, fn: Any) -> Any:
    """Register a ``functools.lru_cache``-wrapped function and return it."""
    register_cache(
        name,
        fn.cache_clear,
        lambda: dict(fn.cache_info()._asdict()),
    )
    return fn


def register_intern_table(class_name: str, size: Callable[[], int]) -> None:
    """Register a live-size probe for one AST class's intern table."""
    _INTERN_SIZES[class_name] = size


def register_stats_section(name: str, info: _InfoFn) -> None:
    """Add a named top-level section to ``kernel_stats()``.

    Clearing is the section owner's concern (pair with
    :func:`register_cache` when the data should reset with the
    caches); re-registering a name replaces it.
    """
    _SECTIONS[name] = info


def registered_caches() -> tuple[str, ...]:
    """Names of every registered cache (for registry tests)."""
    return tuple(sorted(_CACHES))


def registered_sections() -> tuple[str, ...]:
    """Names of every registered stats section (for registry tests)."""
    return tuple(sorted(_SECTIONS))


def clear_all() -> None:
    """Clear every registered cache and reset all counters.

    The interning tables themselves are *not* dropped: the canonical
    node store is process-wide by design -- dropping it would only
    break pointer-sharing between nodes built before and after the
    reset, while keeping it preserves every derived fact.  Memoization
    caches keyed on nodes (automata, signatures, the union-find) *are*
    dropped, so cleared state is observable where it matters.
    """
    for clear, _ in _CACHES.values():
        clear()
    INTERN_HITS.clear()
    INTERN_MISSES.clear()
    EVENTS.clear()


def kernel_stats() -> Dict[str, Any]:
    """A snapshot of every kernel counter and cache.

    Layout::

        {
          "interning": {"Sym": {"hits": ..., "misses": ..., "live": ...}, ...},
          "caches":    {"language.dfa": {"hits": ..., "misses": ..., ...}, ...},
          "events":    {"equiv.signature_hit": ..., ...},
        }
    """
    interning: Dict[str, Dict[str, int]] = {}
    for class_name in sorted(set(INTERN_HITS) | set(INTERN_MISSES) | set(_INTERN_SIZES)):
        probe = _INTERN_SIZES.get(class_name)
        interning[class_name] = {
            "hits": INTERN_HITS.get(class_name, 0),
            "misses": INTERN_MISSES.get(class_name, 0),
            "live": probe() if probe is not None else 0,
        }
    caches: Dict[str, Dict[str, Any]] = {}
    for name, (_, info) in sorted(_CACHES.items()):
        if info is not None:
            caches[name] = info()
    stats: Dict[str, Any] = {
        "interning": interning,
        "caches": caches,
        "events": dict(sorted(EVENTS.items())),
    }
    for name, info in sorted(_SECTIONS.items()):
        stats[name] = info()
    return stats


def kernel_summary() -> Dict[str, int]:
    """Aggregate one-line counters (cheap enough for benchmark extra_info)."""
    stats = kernel_stats()
    cache_hits = sum(int(c.get("hits", 0)) for c in stats["caches"].values())
    cache_misses = sum(int(c.get("misses", 0)) for c in stats["caches"].values())
    return {
        "interned_nodes": sum(c["live"] for c in stats["interning"].values()),
        "intern_hits": sum(c["hits"] for c in stats["interning"].values()),
        "intern_misses": sum(c["misses"] for c in stats["interning"].values()),
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
    }


def render_stats() -> str:
    """Human-readable kernel stats (the CLI ``--stats`` output)."""
    stats = kernel_stats()
    lines = ["kernel stats:"]
    lines.append("  interned nodes (live/hits/misses):")
    for class_name, row in stats["interning"].items():
        lines.append(
            f"    {class_name:8s} {row['live']:6d} {row['hits']:8d} {row['misses']:8d}"
        )
    lines.append("  caches (hits/misses/size):")
    for name, row in stats["caches"].items():
        lines.append(
            "    {:28s} {:8d} {:8d} {:6d}".format(
                name,
                int(row.get("hits", 0)),
                int(row.get("misses", 0)),
                int(row.get("currsize", row.get("size", 0))),
            )
        )
    if stats["events"]:
        lines.append("  events:")
        for name, count in stats["events"].items():
            lines.append(f"    {name:28s} {count:8d}")
    matview = stats.get("matview")
    if matview and any(matview.values()):
        lines.append("  matview cache:")
        for name, value in matview.items():
            lines.append(f"    {name:28s} {value:8d}")
    sharding = stats.get("sharding")
    if sharding and any(sharding.values()):
        lines.append("  sharded sources:")
        for name, value in sharding.items():
            lines.append(f"    {name:28s} {value:8d}")
    obs = stats.get("obs")
    if obs and any(obs.values()):
        lines.append("  obs metrics:")
        for name, value in obs.get("counters", {}).items():
            lines.append(f"    {name:36s} {value:10d}")
        for name, value in obs.get("gauges", {}).items():
            lines.append(f"    {name:36s} {value:10g}")
        for name, row in obs.get("histograms", {}).items():
            lines.append(
                f"    {name:36s} n={row['count']}"
                f" mean={row['mean'] * 1e3:.3f}ms"
                f" max={row['max'] * 1e3:.3f}ms"
            )
    return "\n".join(lines)
