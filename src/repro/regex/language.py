"""Exact language-level decision procedures on regular expressions.

These are the questions the view-DTD inference machinery asks:

* membership   -- does a child-name sequence match a content model?
* emptiness    -- did a refinement produce an unsatisfiable type?
* inclusion    -- is one type *tighter* than another (Definition 3.3)?
* equivalence  -- did a refinement actually change the type (validity)?

All procedures are exact (automata-based), not syntactic approximations.
Results are cached: the inference algorithms ask the same questions
about the same types repeatedly.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from .ast import Regex, Sym, alphabet
from .dfa import Dfa, Letter, dfa_from_regex, minimize, product, with_alphabet


@lru_cache(maxsize=4096)
def _dfa(regex: Regex) -> Dfa:
    return dfa_from_regex(regex)


def to_dfa(regex: Regex) -> Dfa:
    """The (cached) complete DFA of ``regex`` over its own alphabet."""
    return _dfa(regex)


def matches(regex: Regex, word: Sequence[Sym]) -> bool:
    """Membership: is the symbol sequence in ``L(regex)``?"""
    return _dfa(regex).accepts([s.key() for s in word])


def matches_letters(regex: Regex, word: Sequence[Letter]) -> bool:
    """Membership over raw (name, tag) letters."""
    return _dfa(regex).accepts(list(word))


@lru_cache(maxsize=4096)
def is_empty(regex: Regex) -> bool:
    """True when ``L(regex)`` is the empty language."""
    return _dfa(regex).is_empty()


def _aligned(left: Regex, right: Regex) -> tuple[Dfa, Dfa]:
    letters = frozenset(s.key() for s in alphabet(left) | alphabet(right))
    return (
        with_alphabet(_dfa(left), letters),
        with_alphabet(_dfa(right), letters),
    )


@lru_cache(maxsize=4096)
def is_subset(left: Regex, right: Regex) -> bool:
    """Inclusion: ``L(left) ⊆ L(right)``.

    This is the paper's "tighter than" relation on types
    (Definition 3.3): ``left`` is tighter than ``right``.
    """
    a, b = _aligned(left, right)
    difference = product(a, b, lambda x, y: x and not y)
    return difference.is_empty()


@lru_cache(maxsize=4096)
def is_equivalent(left: Regex, right: Regex) -> bool:
    """Language equality of the two expressions."""
    a, b = _aligned(left, right)
    symmetric = product(a, b, lambda x, y: x != y)
    return symmetric.is_empty()


def is_proper_subset(left: Regex, right: Regex) -> bool:
    """Strict inclusion: tighter and not equivalent."""
    return is_subset(left, right) and not is_subset(right, left)


def intersection_dfa(left: Regex, right: Regex) -> Dfa:
    """DFA for ``L(left) ∩ L(right)``."""
    a, b = _aligned(left, right)
    return product(a, b, lambda x, y: x and y)


def difference_witness(left: Regex, right: Regex) -> list[Letter] | None:
    """A shortest word in ``L(left) \\ L(right)``, or None if included.

    Used to produce counterexamples in tightness reports and tests.
    """
    a, b = _aligned(left, right)
    difference = product(a, b, lambda x, y: x and not y)
    return difference.shortest_word()


def minimal_dfa(regex: Regex) -> Dfa:
    """The minimized DFA; state count is a canonical complexity measure."""
    return minimize(_dfa(regex))


def clear_caches() -> None:
    """Drop all memoized automata (useful between benchmark rounds)."""
    _dfa.cache_clear()
    is_empty.cache_clear()
    is_subset.cache_clear()
    is_equivalent.cache_clear()
