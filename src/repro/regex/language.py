"""Exact language-level decision procedures on regular expressions.

These are the questions the view-DTD inference machinery asks:

* membership   -- does a child-name sequence match a content model?
* emptiness    -- did a refinement produce an unsatisfiable type?
* inclusion    -- is one type *tighter* than another (Definition 3.3)?
* equivalence  -- did a refinement actually change the type (validity)?

All procedures are exact (automata-based), not syntactic approximations.

The layer is organized as a *kernel* around canonical forms rather than
per-call constructions:

* every regex gets a memoized DFA, minimal DFA, and **canonical
  signature** (the trimmed, BFS-renumbered minimal DFA -- a canonical
  form of its language, see :func:`repro.regex.dfa.dfa_signature`);
* :func:`is_equivalent` decides by signature comparison backed by a
  union-find over already-equated expressions, so the product
  automaton of the legacy path (kept as
  :func:`is_equivalent_pairwise` for differential testing) is never
  built;
* :func:`is_subset` runs its difference product on cached *minimal*
  automata after an O(1) signature fast path.

Every cache registers with :mod:`repro.regex.kernel`, so
:func:`clear_caches` and the stats surface cover them all.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Sequence

from . import kernel
from .ast import Regex, Sym
from .dfa import (
    EMPTY_SIGNATURE,
    Dfa,
    Letter,
    Signature,
    dfa_from_regex,
    dfa_signature,
    minimize,
    product,
    with_alphabet,
)

# ---------------------------------------------------------------------------
# canonical forms


@lru_cache(maxsize=None)
def _dfa(regex: Regex) -> Dfa:
    return dfa_from_regex(regex)


kernel.register_lru("language.dfa", _dfa)


@lru_cache(maxsize=None)
def _min_dfa(regex: Regex) -> Dfa:
    return minimize(_dfa(regex))


kernel.register_lru("language.min_dfa", _min_dfa)


#: Interning table for signatures: equal fingerprints become the same
#: object, so signature comparison is a pointer check.
_SIGNATURES: dict[Signature, Signature] = {}


@lru_cache(maxsize=None)
def canonical_signature(regex: Regex) -> Signature:
    """The canonical fingerprint of ``L(regex)`` (interned, cached).

    Two expressions denote the same language iff their canonical
    signatures are the same object.
    """
    sig = dfa_signature(_min_dfa(regex))
    return _SIGNATURES.setdefault(sig, sig)


kernel.register_lru("language.signature", canonical_signature)
kernel.register_cache(
    "language.signature_intern",
    _SIGNATURES.clear,
    lambda: {"size": len(_SIGNATURES)},
)


def to_dfa(regex: Regex) -> Dfa:
    """The (cached) complete DFA of ``regex`` over its own alphabet."""
    return _dfa(regex)


def minimal_dfa(regex: Regex) -> Dfa:
    """The (cached) minimized DFA; its state count is a canonical
    complexity measure."""
    return _min_dfa(regex)


# ---------------------------------------------------------------------------
# equivalence: signature kernel + union-find, with the legacy
# product-automaton path kept for differential testing


#: Union-find parents over regexes already proven equivalent.  Nodes
#: are hash-consed, so identity-keyed path compression is sound.
_EQUIV_PARENT: dict[Regex, Regex] = {}

kernel.register_cache(
    "language.equiv_union_find",
    _EQUIV_PARENT.clear,
    lambda: {"size": len(_EQUIV_PARENT)},
)

#: Equivalence backend: "signature" (the kernel) or "pairwise" (the
#: legacy per-pair product automaton).  Overridable per call site, per
#: process (set_equivalence_backend), or via environment.
_BACKENDS = ("signature", "pairwise")
_backend = os.environ.get("REPRO_EQUIV_BACKEND", "signature")


def set_equivalence_backend(name: str) -> str:
    """Set the process-wide equivalence backend; returns the old one."""
    global _backend
    if name not in _BACKENDS:
        raise ValueError(f"unknown equivalence backend {name!r}")
    old, _backend = _backend, name
    return old


def equivalence_backend() -> str:
    """The current process-wide equivalence backend."""
    return _backend


def _find(regex: Regex) -> Regex:
    root = regex
    while True:
        parent = _EQUIV_PARENT.get(root)
        if parent is None or parent is root:
            break
        root = parent
    while regex is not root:  # path compression
        parent = _EQUIV_PARENT.get(regex, root)
        _EQUIV_PARENT[regex] = root
        regex = parent
    return root


def is_equivalent(left: Regex, right: Regex) -> bool:
    """Language equality of the two expressions."""
    if _backend == "pairwise":
        return is_equivalent_pairwise(left, right)
    if left is right:
        kernel.EVENTS["equiv.identity"] += 1
        return True
    root_left, root_right = _find(left), _find(right)
    if root_left is root_right:
        kernel.EVENTS["equiv.union_find_hit"] += 1
        return True
    if canonical_signature(root_left) is canonical_signature(root_right):
        _EQUIV_PARENT[root_left] = root_right
        kernel.EVENTS["equiv.signature_equal"] += 1
        return True
    kernel.EVENTS["equiv.signature_distinct"] += 1
    return False


@lru_cache(maxsize=None)
def _pairwise_equivalent(left: Regex, right: Regex) -> bool:
    a, b = _aligned(left, right)
    symmetric = product(a, b, lambda x, y: x != y)
    return symmetric.is_empty()


kernel.register_lru("language.pairwise_equivalent", _pairwise_equivalent)


def is_equivalent_pairwise(left: Regex, right: Regex) -> bool:
    """Legacy equivalence: emptiness of the symmetric-difference product.

    Kept as the differential-testing oracle for the signature kernel.
    The call is symmetric, so arguments are normalized to a canonical
    order and ``(a, b)`` / ``(b, a)`` share one cache entry.
    """
    if left is right:
        return True
    if (right._hash, id(right)) < (left._hash, id(left)):
        left, right = right, left
    return _pairwise_equivalent(left, right)


# ---------------------------------------------------------------------------
# membership / emptiness / inclusion


def matches(regex: Regex, word: Sequence[Sym]) -> bool:
    """Membership: is the symbol sequence in ``L(regex)``?"""
    return _dfa(regex).accepts([s.key() for s in word])


def matches_letters(regex: Regex, word: Sequence[Letter]) -> bool:
    """Membership over raw (name, tag) letters."""
    return _dfa(regex).accepts(list(word))


@lru_cache(maxsize=None)
def is_empty(regex: Regex) -> bool:
    """True when ``L(regex)`` is the empty language."""
    return _dfa(regex).is_empty()


kernel.register_lru("language.is_empty", is_empty)


def _aligned(left: Regex, right: Regex) -> tuple[Dfa, Dfa]:
    letters = left.letters | right.letters
    return (
        with_alphabet(_dfa(left), letters),
        with_alphabet(_dfa(right), letters),
    )


@lru_cache(maxsize=None)
def _subset_of(left: Regex, right: Regex) -> bool:
    letters = left.letters | right.letters
    a = with_alphabet(_min_dfa(left), letters)
    b = with_alphabet(_min_dfa(right), letters)
    difference = product(a, b, lambda x, y: x and not y)
    return difference.is_empty()


kernel.register_lru("language.subset", _subset_of)


def is_subset(left: Regex, right: Regex) -> bool:
    """Inclusion: ``L(left) ⊆ L(right)``.

    This is the paper's "tighter than" relation on types
    (Definition 3.3): ``left`` is tighter than ``right``.  Decided on
    the cached minimal automata, after O(1) fast paths: pointer
    equality, signature equality, and emptiness of the left side.
    """
    if left is right:
        return True
    sig_left = canonical_signature(left)
    if sig_left is EMPTY_SIGNATURE or sig_left is canonical_signature(right):
        kernel.EVENTS["subset.signature_fast_path"] += 1
        return True
    return _subset_of(left, right)


def is_proper_subset(left: Regex, right: Regex) -> bool:
    """Strict inclusion: tighter and not equivalent."""
    return is_subset(left, right) and not is_subset(right, left)


def intersection_dfa(left: Regex, right: Regex) -> Dfa:
    """DFA for ``L(left) ∩ L(right)``."""
    a, b = _aligned(left, right)
    return product(a, b, lambda x, y: x and y)


def difference_witness(left: Regex, right: Regex) -> list[Letter] | None:
    """A shortest word in ``L(left) \\ L(right)``, or None if included.

    Used to produce counterexamples in tightness reports and tests.
    """
    a, b = _aligned(left, right)
    difference = product(a, b, lambda x, y: x and not y)
    return difference.shortest_word()


def clear_caches() -> None:
    """Drop every registered kernel cache (between benchmark rounds).

    Delegates to the central registry in :mod:`repro.regex.kernel`:
    automata, signatures, the union-find, and all event counters are
    registered there, so nothing can be missed by this function going
    stale.
    """
    kernel.clear_all()
