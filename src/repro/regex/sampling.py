"""Random word generation from regular expressions.

Two samplers with different guarantees:

* :func:`sample_word` walks the expression structurally (Star repeats a
  geometric number of times, Alt picks a branch uniformly).  Fast, used
  by the document generators; the distribution is *not* uniform over
  the language.
* :func:`sample_word_uniform` draws uniformly among all accepted words
  of length at most L, by dynamic programming over the DFA transfer
  matrix.  Used where distributional bias would invalidate a
  measurement (tightness-ratio estimation, E12).
"""

from __future__ import annotations

import random

from .ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
)
from .language import is_empty, minimal_dfa


def sample_word(
    regex: Regex,
    rng: random.Random,
    star_mean: float = 1.5,
) -> list[Sym] | None:
    """A random member of ``L(regex)``, or None when the language is empty.

    ``star_mean`` is the expected repetition count for ``*`` (and the
    expected extra repetitions for ``+``), drawn geometrically.
    """
    if is_empty(regex):
        return None

    continue_prob = star_mean / (1.0 + star_mean)

    def geometric() -> int:
        count = 0
        while rng.random() < continue_prob:
            count += 1
        return count

    def visit(node: Regex, out: list[Sym]) -> None:
        if isinstance(node, Sym):
            out.append(node)
        elif isinstance(node, (Epsilon, Empty)):
            pass
        elif isinstance(node, Concat):
            for item in node.items:
                visit(item, out)
        elif isinstance(node, Alt):
            # Choose only among non-empty branches so the result is
            # always a member of the language.
            branches = [item for item in node.items if not is_empty(item)]
            visit(rng.choice(branches), out)
        elif isinstance(node, Star):
            for _ in range(geometric()):
                visit(node.item, out)
        elif isinstance(node, Plus):
            for _ in range(1 + geometric()):
                visit(node.item, out)
        elif isinstance(node, Opt):
            if rng.random() < 0.5:
                visit(node.item, out)
        else:
            raise TypeError(f"unknown regex node {node!r}")

    word: list[Sym] = []
    visit(regex, word)
    return word


def sample_word_uniform(
    regex: Regex,
    max_length: int,
    rng: random.Random,
) -> list[Sym] | None:
    """Uniform sample among accepted words of length <= ``max_length``.

    Returns None when no word of that length exists.  The DP table
    ``paths[state][k]`` counts accepted completions of length exactly
    ``k`` from ``state``; sampling walks the DFA choosing each letter
    with probability proportional to the completions it leads to.
    """
    dfa = minimal_dfa(regex)
    letters = sorted(dfa.alphabet)
    paths: list[list[int]] = [[0] * (max_length + 1) for _ in range(dfa.n_states)]
    for state in range(dfa.n_states):
        paths[state][0] = 1 if state in dfa.accepting else 0
    for length in range(1, max_length + 1):
        for state in range(dfa.n_states):
            total = 0
            for letter in letters:
                total += paths[dfa.transitions[state][letter]][length - 1]
            paths[state][length] = total

    total_words = sum(paths[dfa.start][k] for k in range(max_length + 1))
    if total_words == 0:
        return None
    target = rng.randrange(total_words)
    length = 0
    while target >= paths[dfa.start][length]:
        target -= paths[dfa.start][length]
        length += 1

    word: list[Sym] = []
    state = dfa.start
    for remaining in range(length, 0, -1):
        for letter in letters:
            nxt = dfa.transitions[state][letter]
            weight = paths[nxt][remaining - 1]
            if target < weight:
                word.append(Sym(letter[0], letter[1]))
                state = nxt
                break
            target -= weight
        else:  # pragma: no cover - defensive
            raise AssertionError("sampling walked off the DP table")
    return word
