"""XML document model (the abstraction of Section 2 / Appendix A).

Elements are name + unique ID + content, where content is a child
sequence or a PCDATA string; no attributes (beyond ID), no mixed
content, no entities -- exactly the class of documents whose structure
a DTD fully types.
"""

from .element import (
    Document,
    Element,
    elem,
    fresh_id,
    mutation_stamp,
    text_elem,
)
from .index import DocumentIndex, document_index
from .parser import parse_document, parse_element
from .serializer import serialize_document, serialize_element

__all__ = [
    "Document",
    "DocumentIndex",
    "Element",
    "document_index",
    "elem",
    "fresh_id",
    "mutation_stamp",
    "parse_document",
    "parse_element",
    "serialize_document",
    "serialize_element",
    "text_elem",
]
