"""The XML abstraction of Section 2 of the paper.

An element (Definition 2.1) is a triplet of a *name*, a unique *ID*,
and *content*, where content is either a sequence of elements or a
PCDATA string.  A valid document (Definition 2.4) is an element
together with a DTD and a root document type.

Following the paper's simplifying assumptions, there are no attributes
other than ID, no empty elements, no mixed content, and no entities.
Elements *with empty content* (an empty sequence of children) are
allowed and distinct from PCDATA elements with the empty string.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Union

_id_counter = itertools.count(1)


def fresh_id() -> str:
    """A document-unique element ID (``e1``, ``e2``, ...)."""
    return f"e{next(_id_counter)}"


# Process-wide mutation clock.  Every mutating API stamps its element
# (and bumps this global), so caches keyed on object identity -- the
# document index, chiefly -- can validate a hit in O(1) against the
# global stamp and only fall back to a scan when *something* mutated
# since they were built (see repro.xmlmodel.index.document_index).
_mutations = 0


def mutation_stamp() -> int:
    """The current value of the global mutation clock."""
    return _mutations


def _bump_mutations() -> int:
    global _mutations
    _mutations += 1
    return _mutations


@dataclass(eq=False)
class Element:
    """An XML element per Definition 2.1.

    ``content`` is either a list of child elements (element content) or
    a string (PCDATA content).  Identity (the ID attribute) is explicit
    so that queries can express ID inequality (``Pub1 != Pub2``).
    Structural equality is provided by :meth:`structurally_equal`;
    ``==`` stays identity-based because two distinct elements with the
    same shape are different objects in a document.
    """

    name: str
    content: Union[list["Element"], str]
    id: str = field(default_factory=fresh_id)
    #: non-ID attributes (Appendix A layer; empty under the core model)
    attributes: dict[str, str] = field(default_factory=dict)
    #: value of the global mutation clock at this element's last
    #: mutation (0 = never mutated); maintained by the mutating APIs
    mutation_version: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("element name must be non-empty")

    # -- mutation (version-stamped) -------------------------------------
    #
    # Documents served by sources are immutable in practice, which is
    # what makes index caching sound -- but nothing stops a caller from
    # editing a held tree.  Mutations MUST go through these APIs: they
    # stamp the element so the cached document index can detect the
    # edit instead of silently answering against the old tree.

    def _touch(self) -> None:
        self.mutation_version = _bump_mutations()

    def append_child(self, child: "Element") -> None:
        """Append a child element (element content only)."""
        if isinstance(self.content, str):
            raise ValueError(
                f"element {self.name!r} has PCDATA content; cannot append"
            )
        self.content.append(child)
        self._touch()

    def insert_child(self, index: int, child: "Element") -> None:
        """Insert a child element at ``index`` (element content only)."""
        if isinstance(self.content, str):
            raise ValueError(
                f"element {self.name!r} has PCDATA content; cannot insert"
            )
        self.content.insert(index, child)
        self._touch()

    def remove_child(self, child: "Element") -> None:
        """Remove a child element (by identity, then equality)."""
        if isinstance(self.content, str):
            raise ValueError(
                f"element {self.name!r} has PCDATA content; cannot remove"
            )
        self.content.remove(child)
        self._touch()

    def set_content(self, content: Union[list["Element"], str]) -> None:
        """Replace the whole content (children list or PCDATA string)."""
        self.content = content
        self._touch()

    def set_text(self, value: str) -> None:
        """Replace the content with a PCDATA string."""
        self.content = value
        self._touch()

    def set_attribute(self, name: str, value: str) -> None:
        """Set a non-ID attribute."""
        self.attributes[name] = value
        self._touch()

    @property
    def is_pcdata(self) -> bool:
        """True when this element has character (string) content."""
        return isinstance(self.content, str)

    @property
    def children(self) -> list["Element"]:
        """Child elements; empty for PCDATA content."""
        if isinstance(self.content, str):
            return []
        return self.content

    @property
    def text(self) -> str | None:
        """The PCDATA string, or None for element content."""
        if isinstance(self.content, str):
            return self.content
        return None

    def child_names(self) -> list[str]:
        """The name sequence of the children (what content models see)."""
        return [child.name for child in self.children]

    def iter(self) -> Iterator["Element"]:
        """Depth-first, left-to-right traversal including self.

        This is the document order used by the paper for view results.
        Iterative (explicit stack): recursive-chain documents nested
        deeper than the interpreter's recursion limit traverse fine.
        """
        stack = [self]
        while stack:
            element = stack.pop()
            yield element
            content = element.content
            if not isinstance(content, str):
                stack.extend(reversed(content))

    def find_all(self, predicate: Callable[["Element"], bool]) -> list["Element"]:
        """All descendants-or-self satisfying ``predicate``, document order."""
        return [e for e in self.iter() if predicate(e)]

    def descendants_named(self, name: str) -> list["Element"]:
        """All descendants-or-self with the given name, document order."""
        return self.find_all(lambda e: e.name == name)

    def structurally_equal(self, other: "Element") -> bool:
        """Shape equality ignoring IDs but comparing strings.

        Two documents in the same *structural class* (Definition 3.5)
        additionally allow string renaming; see
        :func:`repro.dtd.tightness.same_structural_class`.
        """
        stack = [(self, other)]
        while stack:
            mine, theirs = stack.pop()
            if mine.name != theirs.name:
                return False
            if mine.attributes != theirs.attributes:
                return False
            if mine.is_pcdata != theirs.is_pcdata:
                return False
            if mine.is_pcdata:
                if mine.content != theirs.content:
                    return False
                continue
            if len(mine.children) != len(theirs.children):
                return False
            stack.extend(zip(mine.children, theirs.children))
        return True

    def deep_copy(self, fresh_ids: bool = False) -> "Element":
        """A structural copy; ``fresh_ids`` re-IDs every element.

        Built iteratively: a preorder pass collects the nodes (so fresh
        IDs are assigned in document order, as the recursive version
        did), then copies are constructed children-first.
        """
        nodes: list[Element] = []
        child_lists: list[list[int]] = []
        stack: list[tuple[Element, int]] = [(self, -1)]
        while stack:
            node, parent_index = stack.pop()
            index = len(nodes)
            nodes.append(node)
            child_lists.append([])
            if parent_index >= 0:
                child_lists[parent_index].append(index)
            if not isinstance(node.content, str):
                for child in reversed(node.content):
                    stack.append((child, index))
        new_ids = [fresh_id() if fresh_ids else node.id for node in nodes]
        copies: list[Element | None] = [None] * len(nodes)
        for index in range(len(nodes) - 1, -1, -1):
            node = nodes[index]
            content: Union[list[Element], str]
            if isinstance(node.content, str):
                content = node.content
            else:
                content = [copies[c] for c in child_lists[index]]  # type: ignore[misc]
            copies[index] = Element(
                node.name, content, new_ids[index], dict(node.attributes)
            )
        return copies[0]  # type: ignore[return-value]

    def size(self) -> int:
        """Number of elements in the subtree (a benchmark measure)."""
        return sum(1 for _ in self.iter())

    def depth(self) -> int:
        """Height of the subtree (a single element has depth 1)."""
        best = 1
        stack: list[tuple[Element, int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            if level > best:
                best = level
            for child in node.children:
                stack.append((child, level + 1))
        return best

    def __repr__(self) -> str:
        if self.is_pcdata:
            return f"<{self.name} {self.id}>{self.content!r}"
        return f"<{self.name} {self.id}>[{len(self.children)} children]"


@dataclass(eq=False)
class Document:
    """A document: a root element (and, conceptually, its DTD).

    The DTD itself lives in :mod:`repro.dtd`; a *valid* document pairs
    the two -- see :func:`repro.dtd.validation.validate_document`.
    """

    root: Element
    #: global-mutation-clock value at the last document-level mutation
    #: (``replace_root``); element edits stamp the elements themselves
    mutation_version: int = field(default=0, init=False, repr=False)

    def replace_root(self, root: Element) -> None:
        """Swap the root element (a document-level, version-stamped edit)."""
        self.root = root
        self.mutation_version = _bump_mutations()

    @property
    def root_type(self) -> str:
        """The document type: the name of the root element."""
        return self.root.name

    def iter(self) -> Iterator[Element]:
        """Document-order traversal of all elements."""
        return self.root.iter()

    def check_unique_ids(self) -> list[str]:
        """IDs appearing more than once (valid documents have none)."""
        seen: set[str] = set()
        duplicates: list[str] = []
        for element in self.iter():
            if element.id in seen:
                duplicates.append(element.id)
            seen.add(element.id)
        return duplicates

    def element_by_id(self, element_id: str) -> Element | None:
        """Look up an element by its ID attribute."""
        for element in self.iter():
            if element.id == element_id:
                return element
        return None

    def size(self) -> int:
        """Number of elements in the document."""
        return self.root.size()


def elem(name: str, *children: Element, id: str | None = None) -> Element:
    """Build an element with element content."""
    return Element(name, list(children), id if id is not None else fresh_id())


def text_elem(name: str, value: str, id: str | None = None) -> Element:
    """Build an element with PCDATA content."""
    return Element(name, value, id if id is not None else fresh_id())
