"""Parser for the XML subset of the paper's model.

Accepted syntax::

    <department id="d1">
      <name>CS</name>
      <professor>...</professor>
    </department>

* An optional ``id="..."`` attribute (the model's ID); further
  attributes are parsed and carried on the element for the Appendix A
  layer (``repro.dtd.attributes``), the core model ignores them.
* Element content (children only) or PCDATA content (text only);
  mixing raises, matching the paper's "no mixed content" assumption.
  Whitespace between child elements is ignored.
* ``<name/>`` self-closing forms denote empty *element content* (the
  model has no EMPTY elements, only empty content).
* Entities ``&lt; &gt; &amp; &quot; &apos;`` in PCDATA.
* Comments ``<!-- ... -->`` and XML/DOCTYPE prologs are skipped (a
  DOCTYPE's internal subset is NOT interpreted here -- use
  ``repro.dtd.parser`` for DTDs).
"""

from __future__ import annotations

import re

from ..errors import XmlSyntaxError
from .element import Document, Element, fresh_id

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def location(self) -> tuple[int, int]:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> XmlSyntaxError:
        line, column = self.location()
        return XmlSyntaxError(message, line, column)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def skip_misc(self) -> None:
        """Skip whitespace, comments, XML declaration, DOCTYPE."""
        while True:
            self.skip_ws()
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos + 2)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!DOCTYPE", self.pos):
                self._skip_doctype()
            else:
                return

    def _skip_doctype(self) -> None:
        depth = 0
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == ">" and depth <= 0:
                self.pos += 1
                return
            self.pos += 1
        raise self.error("unterminated DOCTYPE")

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def read_name(self) -> str:
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise self.error("expected a name")
        self.pos = match.end()
        return match.group()


def _decode_entities(scanner: _Scanner, raw: str) -> str:
    def replace(match: re.Match[str]) -> str:
        entity = match.group(1)
        if entity.startswith("#"):
            try:
                code = int(entity[2:], 16) if entity[1] in "xX" else int(entity[1:])
            except ValueError:
                raise scanner.error(f"bad character reference &{entity};")
            return chr(code)
        if entity not in _ENTITIES:
            raise scanner.error(f"unknown entity &{entity};")
        return _ENTITIES[entity]

    return re.sub(r"&([^;]+);", replace, raw)


def _parse_element(scanner: _Scanner) -> Element:
    scanner.expect("<")
    name = scanner.read_name()
    scanner.skip_ws()
    element_id: str | None = None
    attributes: dict[str, str] = {}
    while not scanner.at_end() and scanner.text[scanner.pos] not in ">/":
        attr = scanner.read_name()
        scanner.skip_ws()
        scanner.expect("=")
        scanner.skip_ws()
        quote = scanner.text[scanner.pos] if not scanner.at_end() else ""
        if quote not in "\"'":
            raise scanner.error("expected a quoted attribute value")
        scanner.pos += 1
        end = scanner.text.find(quote, scanner.pos)
        if end < 0:
            raise scanner.error("unterminated attribute value")
        value = _decode_entities(scanner, scanner.text[scanner.pos:end])
        scanner.pos = end + 1
        scanner.skip_ws()
        if attr.lower() == "id":
            element_id = value
        elif attr in attributes:
            raise scanner.error(f"duplicate attribute {attr!r}")
        else:
            # Appendix A layer: non-ID attributes are carried on the
            # element; the core model ignores them.
            attributes[attr] = value
    if scanner.text.startswith("/>", scanner.pos):
        scanner.pos += 2
        return Element(name, [], element_id or fresh_id(), attributes)
    scanner.expect(">")

    children: list[Element] = []
    text_parts: list[str] = []
    while True:
        if scanner.at_end():
            raise scanner.error(f"unterminated element <{name}>")
        next_lt = scanner.text.find("<", scanner.pos)
        if next_lt < 0:
            raise scanner.error(f"unterminated element <{name}>")
        raw = scanner.text[scanner.pos:next_lt]
        if raw:
            text_parts.append(_decode_entities(scanner, raw))
            scanner.pos = next_lt
        if scanner.text.startswith("</", scanner.pos):
            scanner.pos += 2
            closing = scanner.read_name()
            if closing != name:
                raise scanner.error(
                    f"mismatched closing tag </{closing}> for <{name}>"
                )
            scanner.skip_ws()
            scanner.expect(">")
            break
        if scanner.text.startswith("<!--", scanner.pos):
            end = scanner.text.find("-->", scanner.pos + 4)
            if end < 0:
                raise scanner.error("unterminated comment")
            scanner.pos = end + 3
            continue
        children.append(_parse_element(scanner))

    text = "".join(text_parts)
    if children:
        if text.strip():
            raise scanner.error(
                f"mixed content in <{name}> is outside the paper's model"
            )
        return Element(name, children, element_id or fresh_id(), attributes)
    if text_parts and (text.strip() or not children):
        # Pure character content (possibly all-whitespace text counts
        # as PCDATA only when nothing else is present and it is
        # non-empty after stripping; otherwise it is empty content).
        if text.strip():
            return Element(name, text, element_id or fresh_id(), attributes)
    return Element(name, [], element_id or fresh_id(), attributes)


def parse_document(text: str) -> Document:
    """Parse an XML document string into a :class:`Document`."""
    scanner = _Scanner(text)
    scanner.skip_misc()
    if scanner.at_end() or scanner.text[scanner.pos] != "<":
        raise scanner.error("expected a root element")
    root = _parse_element(scanner)
    scanner.skip_misc()
    if not scanner.at_end():
        raise scanner.error("content after the root element")
    return Document(root)


def parse_element(text: str) -> Element:
    """Parse a single element (fragment) from a string."""
    scanner = _Scanner(text)
    scanner.skip_misc()
    element = _parse_element(scanner)
    scanner.skip_misc()
    if not scanner.at_end():
        raise scanner.error("content after the element")
    return element
