"""Parser for the XML subset of the paper's model.

Accepted syntax::

    <department id="d1">
      <name>CS</name>
      <professor>...</professor>
    </department>

* An optional ``id="..."`` attribute (the model's ID); further
  attributes are parsed and carried on the element for the Appendix A
  layer (``repro.dtd.attributes``), the core model ignores them.
* Element content (children only) or PCDATA content (text only);
  mixing raises, matching the paper's "no mixed content" assumption.
  Whitespace between child elements is ignored.
* ``<name/>`` self-closing forms denote empty *element content* (the
  model has no EMPTY elements, only empty content).
* Entities ``&lt; &gt; &amp; &quot; &apos;`` and numeric character
  references (``&#65;``, ``&#x42;``) in PCDATA and attribute values.
  Character references outside the Unicode range or in the surrogate
  block raise :class:`~repro.errors.XmlSyntaxError` pointing at the
  offending reference.
* Comments ``<!-- ... -->`` and XML/DOCTYPE prologs are skipped (a
  DOCTYPE's internal subset is NOT interpreted here -- use
  ``repro.dtd.parser`` for DTDs).

Two front ends share one scanner core:

* :func:`parse_document` / :func:`parse_element` build the in-memory
  :class:`~repro.xmlmodel.element.Element` tree, and
* :func:`iter_document_events` streams ``("start", name, id, attrs)`` /
  ``("pcdata", text)`` / ``("end",)`` events without materializing the
  tree -- this is what :mod:`repro.store` ingests from, keeping memory
  proportional to document depth plus one text region rather than to
  corpus size.

Both are iterative (explicit stack), so recursive-chain documents
nested deeper than the interpreter's recursion limit parse fine.
"""

from __future__ import annotations

import re
from typing import Iterator, Union

from ..errors import XmlSyntaxError
from .element import Document, Element, fresh_id

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")
_ENTITY_RE = re.compile(r"&([^;]+);")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

#: A streaming parse event: ``("start", name, id_or_None, attributes)``
#: opens an element, ``("pcdata", text)`` carries its character content
#: (emitted at most once, immediately before the matching end), and
#: ``("end",)`` closes the innermost open element.
XmlEvent = Union[
    tuple[str, str, "str | None", dict[str, str]],
    tuple[str, str],
    tuple[str],
]


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def location_at(self, pos: int) -> tuple[int, int]:
        consumed = self.text[:pos]
        line = consumed.count("\n") + 1
        column = pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def location(self) -> tuple[int, int]:
        return self.location_at(self.pos)

    def error_at(self, pos: int, message: str) -> XmlSyntaxError:
        line, column = self.location_at(pos)
        return XmlSyntaxError(message, line, column)

    def error(self, message: str) -> XmlSyntaxError:
        return self.error_at(self.pos, message)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def skip_misc(self) -> None:
        """Skip whitespace, comments, XML declaration, DOCTYPE."""
        while True:
            self.skip_ws()
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos + 2)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!DOCTYPE", self.pos):
                self._skip_doctype()
            else:
                return

    def _skip_doctype(self) -> None:
        # A ">" (or "["/"]") inside a quoted SYSTEM/PUBLIC literal is
        # data, not markup -- track the quote state so DOCTYPEs like
        # <!DOCTYPE a SYSTEM "ids>1.dtd"> skip in full.
        depth = 0
        quote: str | None = None
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if quote is not None:
                if char == quote:
                    quote = None
            elif char in "\"'":
                quote = char
            elif char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == ">" and depth <= 0:
                self.pos += 1
                return
            self.pos += 1
        raise self.error("unterminated DOCTYPE")

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def read_name(self) -> str:
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise self.error("expected a name")
        self.pos = match.end()
        return match.group()


def _decode_entities(scanner: _Scanner, raw: str, base: int | None = None) -> str:
    """Decode entity and character references in a text slice.

    ``base`` is the absolute offset of ``raw`` within the scanned text
    (default: the scanner's current position); errors point at the
    offending reference itself, not the start of the enclosing region.
    """
    start = scanner.pos if base is None else base

    def replace(match: re.Match[str]) -> str:
        entity = match.group(1)
        at = start + match.start()
        if entity.startswith("#"):
            try:
                code = int(entity[2:], 16) if entity[1] in "xX" else int(entity[1:])
            except (IndexError, ValueError):
                raise scanner.error_at(at, f"bad character reference &{entity};")
            # chr() itself raises ValueError past 0x10FFFF, and lone
            # surrogates are not XML characters at all; both must
            # surface as positioned syntax errors, not a raw ValueError.
            if not 0 <= code <= 0x10FFFF or 0xD800 <= code <= 0xDFFF:
                raise scanner.error_at(
                    at,
                    f"character reference &{entity}; is not a valid "
                    "XML character",
                )
            return chr(code)
        if entity not in _ENTITIES:
            raise scanner.error_at(at, f"unknown entity &{entity};")
        return _ENTITIES[entity]

    return _ENTITY_RE.sub(replace, raw)


def _parse_open_tag(
    scanner: _Scanner,
) -> tuple[str, str | None, dict[str, str], bool]:
    """Parse ``<name attr="v" ...>`` / ``<name/>`` at the scanner.

    Returns ``(name, element_id, attributes, self_closing)``.
    """
    scanner.expect("<")
    name = scanner.read_name()
    scanner.skip_ws()
    element_id: str | None = None
    attributes: dict[str, str] = {}
    while not scanner.at_end() and scanner.text[scanner.pos] not in ">/":
        attr = scanner.read_name()
        scanner.skip_ws()
        scanner.expect("=")
        scanner.skip_ws()
        quote = scanner.text[scanner.pos] if not scanner.at_end() else ""
        if quote not in "\"'":
            raise scanner.error("expected a quoted attribute value")
        scanner.pos += 1
        end = scanner.text.find(quote, scanner.pos)
        if end < 0:
            raise scanner.error("unterminated attribute value")
        value = _decode_entities(scanner, scanner.text[scanner.pos:end])
        scanner.pos = end + 1
        scanner.skip_ws()
        if attr.lower() == "id":
            # The ID is an attribute like any other: a second id= (in
            # any case form) is a duplicate, not a silent overwrite.
            if element_id is not None:
                raise scanner.error(f"duplicate attribute {attr!r}")
            element_id = value
        elif attr in attributes:
            raise scanner.error(f"duplicate attribute {attr!r}")
        else:
            # Appendix A layer: non-ID attributes are carried on the
            # element; the core model ignores them.
            attributes[attr] = value
    if scanner.text.startswith("/>", scanner.pos):
        scanner.pos += 2
        return name, element_id, attributes, True
    scanner.expect(">")
    return name, element_id, attributes, False


def _iter_element_events(scanner: _Scanner) -> Iterator[XmlEvent]:
    """Stream the events of one element (and its subtree).

    The stack holds ``[name, text_parts, had_children]`` per open
    element -- O(depth) state, never the tree.
    """
    stack: list[list] = []
    while True:
        name, element_id, attributes, self_closing = _parse_open_tag(scanner)
        yield ("start", name, element_id, attributes)
        if self_closing:
            yield ("end",)
            if not stack:
                return
            stack[-1][2] = True
        else:
            stack.append([name, [], False])
        descend = False
        while stack and not descend:
            top = stack[-1]
            if scanner.at_end():
                raise scanner.error(f"unterminated element <{top[0]}>")
            next_lt = scanner.text.find("<", scanner.pos)
            if next_lt < 0:
                raise scanner.error(f"unterminated element <{top[0]}>")
            raw = scanner.text[scanner.pos:next_lt]
            if raw:
                top[1].append(_decode_entities(scanner, raw))
                scanner.pos = next_lt
            if scanner.text.startswith("</", scanner.pos):
                scanner.pos += 2
                closing = scanner.read_name()
                if closing != top[0]:
                    raise scanner.error(
                        f"mismatched closing tag </{closing}> for <{top[0]}>"
                    )
                scanner.skip_ws()
                scanner.expect(">")
                closed_name, text_parts, had_children = stack.pop()
                text = "".join(text_parts)
                if had_children:
                    if text.strip():
                        raise scanner.error(
                            f"mixed content in <{closed_name}> is outside "
                            "the paper's model"
                        )
                elif text.strip():
                    # Pure character content; all-whitespace text counts
                    # as PCDATA only when non-empty after stripping,
                    # otherwise the element has empty content.
                    yield ("pcdata", text)
                yield ("end",)
                if stack:
                    stack[-1][2] = True
            elif scanner.text.startswith("<!--", scanner.pos):
                end = scanner.text.find("-->", scanner.pos + 4)
                if end < 0:
                    raise scanner.error("unterminated comment")
                scanner.pos = end + 3
            else:
                descend = True
        if not stack:
            return


def _element_from_events(events: Iterator[XmlEvent]) -> Element:
    """Build an :class:`Element` tree from a complete event stream."""
    stack: list[list] = []
    element: Element | None = None
    for event in events:
        kind = event[0]
        if kind == "start":
            stack.append([event[1], event[2], event[3], []])
        elif kind == "pcdata":
            stack[-1][3] = event[1]
        else:
            name, element_id, attributes, content = stack.pop()
            element = Element(
                name, content, element_id or fresh_id(), attributes
            )
            if stack:
                stack[-1][3].append(element)
    assert element is not None
    return element


def iter_document_events(text: str) -> Iterator[XmlEvent]:
    """Streaming parse of a document: yield :data:`XmlEvent` tuples.

    Same syntax, validation, and error positions as
    :func:`parse_document`, but the tree is never materialized --
    memory stays O(document depth).  ``id`` is ``None`` in ``start``
    events when the source text carries no ID; consumers that need one
    (the persistent store does) assign their own.
    """
    scanner = _Scanner(text)
    scanner.skip_misc()
    if scanner.at_end() or scanner.text[scanner.pos] != "<":
        raise scanner.error("expected a root element")
    yield from _iter_element_events(scanner)
    scanner.skip_misc()
    if not scanner.at_end():
        raise scanner.error("content after the root element")


def parse_document(text: str) -> Document:
    """Parse an XML document string into a :class:`Document`."""
    return Document(_element_from_events(iter_document_events(text)))


def parse_element(text: str) -> Element:
    """Parse a single element (fragment) from a string."""
    scanner = _Scanner(text)
    scanner.skip_misc()
    element = _element_from_events(_iter_element_events(scanner))
    scanner.skip_misc()
    if not scanner.at_end():
        raise scanner.error("content after the element")
    return element
