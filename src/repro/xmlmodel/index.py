"""Document-side index for the compiled query engine.

A :class:`DocumentIndex` is a one-pass, preorder flattening of a
document into parallel arrays: element order, parent pointers, depths,
descendant intervals, per-label position lists, and child-position
lists.  It turns the two expensive primitives of tree matching into
array operations:

* *label lookup* -- "all elements named ``n`` in document order" is a
  precomputed list instead of a full traversal, and
* *recursive steps* -- "descendants of ``e`` named ``n``" is a binary
  search over that list against ``e``'s descendant interval
  ``[pos, end)`` instead of a re-descent.

The build is iterative (explicit stack), so documents nested
arbitrarily deep -- the Example 3.5 recursive-chain shape -- index
without ``RecursionError``.

Indexes are cached per document object (weakly, so dropping a document
drops its index) and the cache registers with the
:mod:`repro.regex.kernel` registry: ``clear_caches()`` empties it and
``kernel_stats()`` reports its hit/miss/size counters.
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from operator import attrgetter

from ..regex import kernel
from .element import Document, Element, mutation_stamp

_VERSION_OF = attrgetter("mutation_version")


class DocumentIndex:
    """Preorder arrays over one document.

    ``order[i]`` is the ``i``-th element in document order;
    ``parent[i]`` its parent's position (``-1`` for the root);
    ``end[i]`` the exclusive end of its descendant interval (the
    subtree of ``order[i]`` is exactly ``order[i:end[i]]``);
    ``depth[i]`` its depth (root ``0``); ``children[i]`` the positions
    of its child elements in order; and ``by_label[name]`` the
    document-order positions of all elements named ``name``.

    The index reflects the document at build time; documents served by
    a :class:`~repro.mediator.source.Source` are immutable in practice,
    which is what makes caching sound.
    """

    __slots__ = (
        "order",
        "parent",
        "end",
        "depth",
        "children",
        "by_label",
        "_label_sets",
        "stamp",
    )

    def __init__(self, document: Document) -> None:
        self.stamp = mutation_stamp()
        order: list[Element] = []
        parent: list[int] = []
        depth: list[int] = []
        children: list[list[int]] = []
        by_label: dict[str, list[int]] = {}
        stack: list[tuple[Element, int, int]] = [(document.root, -1, 0)]
        while stack:
            element, parent_pos, level = stack.pop()
            pos = len(order)
            order.append(element)
            parent.append(parent_pos)
            depth.append(level)
            children.append([])
            by_label.setdefault(element.name, []).append(pos)
            if parent_pos >= 0:
                children[parent_pos].append(pos)
            kids = element.children
            for child in reversed(kids):
                stack.append((child, pos, level + 1))
        end = [0] * len(order)
        for pos in range(len(order) - 1, -1, -1):
            kids = children[pos]
            end[pos] = end[kids[-1]] if kids else pos + 1
        self.order = order
        self.parent = parent
        self.end = end
        self.depth = depth
        self.children = children
        self.by_label = by_label
        self._label_sets: dict[str, frozenset[int]] = {}

    def __len__(self) -> int:
        return len(self.order)

    # -- narrow accessors (the index protocol) --------------------------
    #
    # The engine's hot paths go through these instead of dereferencing
    # ``order[pos]`` directly, so an index that does NOT hold Element
    # objects at all -- repro.store's StoredDocumentIndex hydrates rows
    # lazily from SQLite -- can satisfy the same protocol.

    def name_at(self, pos: int) -> str:
        """The element name at a preorder position."""
        return self.order[pos].name

    def pcdata_at(self, pos: int) -> str | None:
        """The PCDATA string at a position, or None for element content."""
        content = self.order[pos].content
        return content if isinstance(content, str) else None

    def element_at(self, pos: int) -> Element:
        """The :class:`Element` at a position (here: the indexed object)."""
        return self.order[pos]

    def fresh_at(self, stamp: int) -> bool:
        """Whether no indexed element mutated after ``stamp``."""
        return max(map(_VERSION_OF, self.order)) <= stamp

    def position_of(self, element: Element) -> int | None:
        """The preorder position of an element (identity), or None."""
        positions = self.by_label.get(element.name)
        if positions is None:
            return None
        for pos in positions:
            if self.order[pos] is element:
                return pos
        return None

    def labelled(self, name: str) -> list[int]:
        """Positions of all elements named ``name``, document order."""
        return self.by_label.get(name, [])

    def labelled_set(self, name: str) -> frozenset[int]:
        """``labelled`` as a frozenset, built lazily and kept.

        The engine's satisfaction sets for leaf conditions are exactly
        these; sharing them across runs (the index is cached per
        document) turns a per-evaluation set build into a dict probe.
        Unlocked on purpose: a racing rebuild produces an identical
        frozenset and the dict store is atomic — last writer wins.
        """
        cached = self._label_sets.get(name)
        if cached is None:
            cached = frozenset(self.by_label.get(name, ()))
            self._label_sets[name] = cached
        return cached

    def labelled_within(self, name: str, pos: int) -> list[int]:
        """Positions named ``name`` inside the subtree of ``pos``.

        This is the interval scan that replaces a recursive re-descent:
        two binary searches over the label's position list against the
        descendant interval ``[pos, end[pos])``.
        """
        positions = self.by_label.get(name, [])
        lo = bisect_left(positions, pos)
        hi = bisect_left(positions, self.end[pos], lo)
        return positions[lo:hi]

    def is_ancestor_or_self(self, ancestor: int, descendant: int) -> bool:
        """Interval containment test on preorder positions."""
        return ancestor <= descendant < self.end[ancestor]


_INDEX_CACHE: "weakref.WeakKeyDictionary[Document, DocumentIndex]" = (
    weakref.WeakKeyDictionary()
)
# Parallel fan-out legs and concurrent server requests index documents
# from worker threads; the lock keeps the stamp-validation/re-arm
# sequence atomic, the counters exact, and the WeakKeyDictionary safe
# (its internals are not guaranteed atomic under mutation + GC).
_INDEX_LOCK = threading.RLock()
_index_hits = 0
_index_misses = 0
_index_invalidations = 0
_index_content_rearms = 0


def _clear_index_cache() -> None:
    global _index_hits, _index_misses, _index_invalidations
    global _index_content_rearms
    with _INDEX_LOCK:
        _INDEX_CACHE.clear()
        _index_hits = 0
        _index_misses = 0
        _index_invalidations = 0
        _index_content_rearms = 0


kernel.register_cache(
    "engine.doc_index",
    _clear_index_cache,
    lambda: {
        "hits": _index_hits,
        "misses": _index_misses,
        "invalidations": _index_invalidations,
        "content_rearms": _index_content_rearms,
        "size": len(_INDEX_CACHE),
    },
)


def _index_is_fresh(document: Document, index: DocumentIndex) -> bool:
    """Whether a cached index still reflects its document.

    An index built at mutation stamp ``s`` is stale iff the document
    (``replace_root``) or any element *it indexed* mutated after ``s``.
    Elements added after the build necessarily hang off a mutated
    indexed parent (or a replaced root), so scanning ``index.order``
    plus the document stamp is complete.
    """
    if document.mutation_version > index.stamp:
        return False
    return index.fresh_at(index.stamp)


def _structure_intact(index: DocumentIndex, mutated: list[int]) -> bool:
    """Whether the mutated elements kept their indexed child lists.

    Every structural edit (``append_child`` / ``insert_child`` /
    ``remove_child`` / ``set_content``) stamps the parent whose child
    list changed, and element names are immutable -- so if each
    mutated element's current children are identity-equal to the
    positions the index recorded, only *content* changed
    (``set_text`` / ``set_attribute``) and every structural array and
    label list is still exact.  Content is read live from the elements
    by all index consumers, so such an index can be re-armed in place
    instead of rebuilt.
    """
    order = index.order
    children = index.children
    for pos in mutated:
        kids = order[pos].content
        kid_positions = children[pos]
        if isinstance(kids, str):
            if kid_positions:
                return False
            continue
        if len(kids) != len(kid_positions):
            return False
        for child, child_pos in zip(kids, kid_positions):
            if order[child_pos] is not child:
                return False
    return True


def document_index(document: Document) -> DocumentIndex:
    """The (cached, mutation-validated) index of a document.

    Keyed weakly on the document object: re-indexing the same held
    document is a dict probe, and dropped documents free their index.
    A hit is validated against the global mutation clock -- O(1) when
    nothing in the process mutated since the build (the overwhelmingly
    common case); one scan re-arms that fast path after unrelated
    mutations.  An edit of this document invalidates and rebuilds
    (counted as ``invalidations``) unless it was content-only
    (``set_text`` / ``set_attribute``), in which case the structural
    arrays are still exact and the index re-arms in place (counted as
    ``content_rearms``).
    """
    global _index_hits, _index_misses, _index_invalidations
    global _index_content_rearms
    # Store-backed documents carry their own index (validated against
    # the store's on-disk generation counter, not the in-process
    # mutation clock); dispatch via duck typing so repro.xmlmodel never
    # imports repro.store.
    stored = getattr(document, "stored_index", None)
    if stored is not None:
        return stored()
    with _INDEX_LOCK:
        index = _INDEX_CACHE.get(document)
        if index is not None:
            stamp = mutation_stamp()
            if stamp == index.stamp:
                _index_hits += 1
                return index
            if _index_is_fresh(document, index):
                # Mutations elsewhere in the process; this document is
                # untouched.  Re-arm the O(1) fast path at today's stamp.
                index.stamp = stamp
                _index_hits += 1
                return index
            if document.mutation_version <= index.stamp:
                built = index.stamp
                mutated = [
                    pos
                    for pos, el in enumerate(index.order)
                    if el.mutation_version > built
                ]
                if _structure_intact(index, mutated):
                    index.stamp = stamp
                    _index_content_rearms += 1
                    return index
            _index_invalidations += 1
        else:
            _index_misses += 1
        index = DocumentIndex(document)
        _INDEX_CACHE[document] = index
        return index
