"""Serialization of documents back to XML text."""

from __future__ import annotations

from .element import Document, Element

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}


def _escape(text: str) -> str:
    for raw, entity in _ESCAPES.items():
        text = text.replace(raw, entity)
    return text


def serialize_element(
    element: Element,
    indent: int = 2,
    include_ids: bool = False,
    _level: int = 0,
) -> str:
    """Render an element as XML text.

    ``include_ids`` emits the ID attributes (off by default: generated
    IDs are noise in goldens and examples).
    """
    pad = " " * (indent * _level)
    id_attr = f' id="{element.id}"' if include_ids else ""
    for attr_name in sorted(element.attributes):
        value = _escape(element.attributes[attr_name]).replace('"', "&quot;")
        id_attr += f' {attr_name}="{value}"'

    if element.is_pcdata:
        return f"{pad}<{element.name}{id_attr}>{_escape(element.text or '')}</{element.name}>"
    if not element.children:
        return f"{pad}<{element.name}{id_attr}/>"
    inner = "\n".join(
        serialize_element(child, indent, include_ids, _level + 1)
        for child in element.children
    )
    return f"{pad}<{element.name}{id_attr}>\n{inner}\n{pad}</{element.name}>"


def serialize_document(
    document: Document,
    indent: int = 2,
    include_ids: bool = False,
) -> str:
    """Render a document (root element) as XML text with a declaration."""
    body = serialize_element(document.root, indent, include_ids)
    return f'<?xml version="1.0"?>\n{body}\n'
