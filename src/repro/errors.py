"""Exception hierarchy and the diagnostic-code namespace.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.

Every exception class additionally carries a stable *diagnostic code*
(``DTD002``, ``MIX002``, ...).  Lint rules (:mod:`repro.lint`) register
their rule codes in the same namespace via
:func:`register_diagnostic_code`, so a code printed by the CLI -- be it
from a runtime failure or a static finding -- identifies exactly one
condition, catalogued in ``docs/DIAGNOSTICS.md``.
"""

from __future__ import annotations

#: The unified code namespace: code -> one-line description.  Exception
#: codes are registered below; lint rules add theirs on import of
#: :mod:`repro.lint`.
DIAGNOSTIC_CODES: dict[str, str] = {}


def register_diagnostic_code(code: str, description: str) -> str:
    """Claim a diagnostic code; collisions are programming errors.

    Returns the code so registrations can double as assignments.
    """
    if not code or not code[-1].isdigit():
        raise ValueError(f"malformed diagnostic code {code!r}")
    existing = DIAGNOSTIC_CODES.get(code)
    if existing is not None and existing != description:
        raise ValueError(
            f"diagnostic code {code!r} already registered for {existing!r}"
        )
    DIAGNOSTIC_CODES[code] = description
    return code


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    code = register_diagnostic_code("REPRO001", "library failure")


class RegexSyntaxError(ReproError):
    """A DTD content-model expression could not be parsed."""

    code = register_diagnostic_code(
        "REX001", "content-model expression syntax error"
    )

    def __init__(self, message: str, text: str, position: int) -> None:
        super().__init__(f"{message} at position {position} in {text!r}")
        self.text = text
        self.position = position


class XmlSyntaxError(ReproError):
    """An XML document could not be parsed."""

    code = register_diagnostic_code("XML001", "XML document syntax error")

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class DtdSyntaxError(ReproError):
    """A DTD declaration could not be parsed."""

    code = register_diagnostic_code("DTD001", "DTD declaration syntax error")


class DtdConsistencyError(ReproError):
    """A DTD references undeclared names or is otherwise malformed."""

    code = register_diagnostic_code(
        "DTD002", "DTD references undeclared names / malformed"
    )


class ValidationError(ReproError):
    """A document does not satisfy a DTD.

    Raised by the ``require_valid`` helpers; the non-raising validators
    return a report object instead.
    """

    code = register_diagnostic_code(
        "VAL001", "document does not satisfy its DTD"
    )


class QuerySyntaxError(ReproError):
    """An XMAS query could not be parsed."""

    code = register_diagnostic_code("MIX001", "XMAS query syntax error")

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class QueryAnalysisError(ReproError):
    """A query is outside the class handled by an algorithm.

    For example, the view-DTD inference pipeline raises this for queries
    with recursive path steps (Section 4.4, footnote 9 of the paper).
    """

    code = register_diagnostic_code(
        "MIX002", "query outside the class an algorithm handles"
    )


class UnknownNameError(ReproError):
    """A query or document mentions an element name absent from the DTD."""

    code = register_diagnostic_code(
        "MIX003", "undeclared element name mentioned"
    )


class MediatorError(ReproError):
    """A mediator operation failed (unknown view, unknown source, ...)."""

    code = register_diagnostic_code("MED001", "mediator operation failed")


class SourceTimeout(MediatorError):
    """A source call exceeded its timeout or the fan-out deadline.

    The transport layer (:mod:`repro.mediator.transport`) detects
    overruns cooperatively: it charges each call's elapsed time (on
    the injectable clock) against the per-call timeout and the shared
    deadline budget, and converts overruns into this exception.
    """

    code = register_diagnostic_code(
        "MED002", "source call exceeded its timeout or deadline budget"
    )


class SourceUnavailable(MediatorError):
    """A source could not answer: retries exhausted or breaker open.

    Carries the terminal condition of the retry/breaker policy; the
    last underlying failure, when there is one, is attached as
    ``__cause__``.
    """

    code = register_diagnostic_code(
        "MED003", "source unavailable (retries exhausted or breaker open)"
    )


class DegradedAnswer(MediatorError):
    """A partial answer exists but cannot be returned soundly.

    Raised by the mediator's degradation mode when skipping the failed
    sources would yield an answer that violates the inferred view DTD
    (degradation never trades soundness for availability).  The
    partial document and the degradation report are attached as
    ``.document`` and ``.report`` so callers can still inspect them.
    """

    code = register_diagnostic_code(
        "MED004", "degraded answer refused: partial answer violates view DTD"
    )

    def __init__(self, message: str, document=None, report=None) -> None:
        super().__init__(message)
        self.document = document
        self.report = report


class FaultInjected(MediatorError):
    """A deterministic injected wrapper fault (testing/benchmarks only).

    Raised by :class:`repro.mediator.faults.FaultySource` on scheduled
    error outcomes; the transport layer treats it like any transient
    wrapper failure.
    """

    code = register_diagnostic_code(
        "MED005", "injected source fault (fault-injection harness)"
    )


#: Informational codes for the materialized-view answer cache
#: (:mod:`repro.mediator.matview`).  Nothing raises these: they label
#: span events, stats counters, and serve responses so operators can
#: grep one namespace for every cache decision (docs/DIAGNOSTICS.md).
CACHE_BYPASSED = register_diagnostic_code(
    "MED006", "materialized-view cache bypassed for this request"
)
STALE_DELTA_FALLBACK = register_diagnostic_code(
    "MED007",
    "delta maintenance unsound for this mutation; full recompute",
)

#: Informational code for sharded-source gathers
#: (:mod:`repro.mediator.sharding`): one or more shards failed
#: permanently and the logical source released the surviving shards'
#: merged answer instead of failing the whole call.  Labels span
#: events and the ``sharding`` stats section; never raised.
PARTIAL_SHARD_GATHER = register_diagnostic_code(
    "MED008", "partial shard gather: failed shards dropped from answer"
)


class ShardConfigError(MediatorError):
    """A sharded source's fragmentation is invalid.

    Raised by :class:`repro.mediator.sharding.ShardedSource` for
    structural misconfiguration: no fragments, duplicate fragment
    names, a fragment DTD that is no specialization of the logical
    DTD, or a routed document that fits no fragment DTD.
    """

    code = register_diagnostic_code(
        "MED009", "invalid shard fragmentation (sharded-source config)"
    )


class StoreError(ReproError):
    """A persistent document-store operation failed.

    Raised by :mod:`repro.store` for operational failures: using a
    closed store, a missing document id, or mutating a store-backed
    document (stored documents are immutable; re-ingest instead).
    """

    code = register_diagnostic_code(
        "STO001", "document store operation failed"
    )


class StoreFormatError(StoreError):
    """The file is not a repro document store (or a newer format).

    Raised when opening a SQLite file without the expected store
    tables/meta rows, or one written by an incompatible format
    version.
    """

    code = register_diagnostic_code(
        "STO002", "not a document store / incompatible format version"
    )


class StoreStaleError(StoreError):
    """A stored row vanished under a live index.

    Raised when a :class:`~repro.store.StoredDocumentIndex` reads a
    row that no longer exists -- its document was removed by another
    handle after the index was built (the on-disk generation counter
    catches this on the next ``document_index`` probe; this error
    covers reads racing the removal itself).
    """

    code = register_diagnostic_code(
        "STO003", "stored document changed under a live index"
    )
