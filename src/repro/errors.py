"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RegexSyntaxError(ReproError):
    """A DTD content-model expression could not be parsed."""

    def __init__(self, message: str, text: str, position: int) -> None:
        super().__init__(f"{message} at position {position} in {text!r}")
        self.text = text
        self.position = position


class XmlSyntaxError(ReproError):
    """An XML document could not be parsed."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class DtdSyntaxError(ReproError):
    """A DTD declaration could not be parsed."""


class DtdConsistencyError(ReproError):
    """A DTD references undeclared names or is otherwise malformed."""


class ValidationError(ReproError):
    """A document does not satisfy a DTD.

    Raised by the ``require_valid`` helpers; the non-raising validators
    return a report object instead.
    """


class QuerySyntaxError(ReproError):
    """An XMAS query could not be parsed."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class QueryAnalysisError(ReproError):
    """A query is outside the class handled by an algorithm.

    For example, the view-DTD inference pipeline raises this for queries
    with recursive path steps (Section 4.4, footnote 9 of the paper).
    """


class UnknownNameError(ReproError):
    """A query or document mentions an element name absent from the DTD."""


class MediatorError(ReproError):
    """A mediator operation failed (unknown view, unknown source, ...)."""
