"""Unit tests for :mod:`repro.store`.

The persistent document store must be a drop-in corpus backend: ingest
streams parser events into SQLite without building trees, stored
handles satisfy the ``Document`` surface, ``document_index`` dispatches
to the store-backed index, and the generation counter plays the role
of the in-process mutation clock -- including across close/reopen.
"""

from __future__ import annotations

import pytest

from repro.errors import StoreError, StoreFormatError, StoreStaleError
from repro.store import (
    DocumentStore,
    StoredDocument,
    StoredDocumentIndex,
    StorePolicy,
)
from repro.workloads import paper
from repro.xmas import parse_query
from repro.xmlmodel import (
    Document,
    Element,
    document_index,
    parse_document,
    serialize_document,
)

SAMPLE = (
    "<site><paper><title>caching</title><year>1999</year></paper>"
    "<paper><title>mediators</title><year>1997</year></paper></site>"
)


def sample_document() -> Document:
    return parse_document(SAMPLE)


class TestIngest:
    def test_ingest_text_round_trips(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            assert isinstance(stored, StoredDocument)
            assert stored.root_type == "site"
            assert stored.size() == sample_document().size()
            assert stored.root.structurally_equal(sample_document().root)

    def test_ingest_document_preserves_ids_and_attributes(self):
        root = Element(
            "site",
            [
                Element("paper", "deep", "p1", {"ref": "x"}),
                Element("paper", [], "p2"),
            ],
            "s1",
        )
        with DocumentStore(":memory:") as store:
            stored = store.ingest_document(Document(root))
            hydrated = stored.root
            assert hydrated.id == "s1"
            assert hydrated.content[0].id == "p1"
            assert hydrated.content[0].attributes == {"ref": "x"}
            assert hydrated.content[1].content == []
            assert hydrated.structurally_equal(root)

    def test_ingest_document_keeps_empty_pcdata_distinct(self):
        """'' PCDATA and empty content are different elements (§2)."""
        root = Element(
            "site", [Element("a", ""), Element("b", [])]
        )
        with DocumentStore(":memory:") as store:
            hydrated = store.ingest_document(Document(root)).root
            assert hydrated.content[0].content == ""
            assert hydrated.content[1].content == []

    def test_ingest_file(self, tmp_path):
        xml = tmp_path / "doc.xml"
        xml.write_text(SAMPLE, encoding="utf-8")
        with DocumentStore(tmp_path / "corpus.db") as store:
            stored = store.ingest_file(xml)
            assert stored.root.structurally_equal(sample_document().root)

    def test_deeply_nested_document_ingests_iteratively(self):
        root = leaf = Element("a", [])
        for _ in range(3000):
            child = Element("a", [])
            leaf.append_child(child)
            leaf = child
        with DocumentStore(":memory:") as store:
            stored = store.ingest_document(Document(root))
            assert stored.size() == 3001
            index = stored.stored_index()
            assert index.depth[3000] == 3000
            assert stored.root.structurally_equal(root)

    def test_ingest_tags_source(self):
        with DocumentStore(":memory:") as store:
            store.ingest_text(SAMPLE, source="siteA")
            store.ingest_text(SAMPLE, source="siteB")
            store.ingest_text(SAMPLE, source="siteA")
            assert len(store.documents()) == 3
            assert len(store.documents(source="siteA")) == 2
            assert store.documents(source="siteB")[0].source == "siteB"
            assert store.documents(source="nowhere") == []


class TestHandles:
    def test_documents_and_document_agree(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            again = store.document(stored.doc_id)
            assert again.doc_id == stored.doc_id
            assert again.size() == stored.size()
            assert store.has_document(stored.doc_id)
            assert store.n_documents() == 1
            assert store.n_elements() == stored.size()

    def test_missing_document_is_sto001(self):
        with DocumentStore(":memory:") as store:
            with pytest.raises(StoreError) as excinfo:
                store.document(99)
            assert excinfo.value.code == "STO001"

    def test_stored_documents_are_immutable(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            with pytest.raises(StoreError):
                stored.replace_root(Element("site", []))

    def test_iter_walks_the_hydrated_tree(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            names = sorted(element.name for element in stored.iter())
            expected = sorted(
                element.name for element in sample_document().iter()
            )
            assert names == expected

    def test_repr_names_the_store(self, tmp_path):
        path = tmp_path / "corpus.db"
        with DocumentStore(path) as store:
            stored = store.ingest_text(SAMPLE)
            assert str(path) in repr(stored)
            assert "site" in repr(stored)


class TestRemoveAndStaleness:
    def test_remove_document_drops_everything(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            keep = store.ingest_text(SAMPLE)
            store.remove_document(stored.doc_id)
            assert not store.has_document(stored.doc_id)
            assert store.n_documents() == 1
            assert store.n_elements() == keep.size()

    def test_remove_missing_document_is_sto001(self):
        with DocumentStore(":memory:") as store:
            with pytest.raises(StoreError):
                store.remove_document(42)

    def test_stale_handle_raises_sto003(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            stored.stored_index()  # build once
            store.remove_document(stored.doc_id)
            with pytest.raises(StoreStaleError) as excinfo:
                stored.stored_index()
            assert excinfo.value.code == "STO003"

    def test_remove_bumps_generation(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            before = store.generation()
            store.remove_document(stored.doc_id)
            assert store.generation() == before + 1


class TestGeneration:
    def test_each_ingest_bumps_the_counter(self):
        with DocumentStore(":memory:") as store:
            assert store.generation() == 0
            store.ingest_text(SAMPLE)
            assert store.generation() == 1
            store.ingest_text(SAMPLE)
            assert store.generation() == 2

    def test_generation_survives_reopen(self, tmp_path):
        path = tmp_path / "corpus.db"
        with DocumentStore(path) as store:
            store.ingest_text(SAMPLE)
            store.ingest_text(SAMPLE)
            generation = store.generation()
        with DocumentStore(path) as reopened:
            assert reopened.generation() == generation
            assert reopened.n_documents() == 2

    def test_second_connection_sees_the_bump(self, tmp_path):
        path = tmp_path / "corpus.db"
        with DocumentStore(path) as writer, DocumentStore(path) as reader:
            assert reader.generation() == 0
            writer.ingest_text(SAMPLE)
            # PRAGMA data_version revalidation: the reader notices the
            # other connection's commit without any shared state.
            assert reader.generation() == 1

    def test_stored_index_revalidates_after_ingest(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            index = stored.stored_index()
            assert stored.stored_index() is index  # cached while fresh
            assert index.fresh_at(index.stamp)
            store.ingest_text(SAMPLE)
            assert not index.fresh_at(index.stamp)
            rebuilt = stored.stored_index()
            assert rebuilt is not index
            assert rebuilt.generation == store.generation()


class TestLifecycleAndFormat:
    def test_closed_store_is_sto001(self):
        store = DocumentStore(":memory:")
        store.close()
        with pytest.raises(StoreError) as excinfo:
            store.ingest_text(SAMPLE)
        assert excinfo.value.code == "STO001"
        store.close()  # idempotent

    def test_non_store_file_is_sto002(self, tmp_path):
        path = tmp_path / "not_a_store.db"
        path.write_bytes(b"this is definitely not sqlite\n" * 40)
        with pytest.raises(StoreFormatError) as excinfo:
            DocumentStore(path)
        assert excinfo.value.code == "STO002"

    def test_future_format_version_is_sto002(self, tmp_path):
        import sqlite3

        path = tmp_path / "corpus.db"
        DocumentStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '99' WHERE key = 'format'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreFormatError):
            DocumentStore(path)

    def test_policy_validates(self):
        with pytest.raises(ValueError):
            StorePolicy(page_size=0)
        with pytest.raises(ValueError):
            StorePolicy(max_pages=0)

    def test_dtd_round_trip(self, tmp_path):
        path = tmp_path / "corpus.db"
        with DocumentStore(path) as store:
            assert store.dtd_text() is None
            store.set_dtd_text("<!ELEMENT site (paper*)>", root="site")
            store.set_dtd_text("<!ELEMENT site (paper+)>", root="site")
        with DocumentStore(path) as reopened:
            assert reopened.dtd_text() == "<!ELEMENT site (paper+)>"
            assert reopened.dtd_root() == "site"


class TestPageCache:
    def test_residency_is_bounded_by_the_budget(self):
        policy = StorePolicy(page_size=8, max_pages=4)
        budget = policy.page_size * policy.max_pages
        with DocumentStore(":memory:", policy=policy) as store:
            big = Document(
                Element(
                    "site",
                    [Element("paper", str(i)) for i in range(500)],
                )
            )
            stored = store.ingest_document(big)
            assert stored.size() > 4 * budget
            index = stored.stored_index()
            for pos in range(stored.size()):  # full payload sweep
                index.pcdata_at(pos)
            info = store.cache_info()
            assert info["resident_rows"] <= budget
            assert info["page_evictions"] > 0

    def test_hot_pages_hit_the_cache(self):
        """A second index over the same document reuses the shared LRU."""
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            stored.stored_index().pcdata_at(2)
            misses = store.cache_info()["page_misses"]
            assert misses >= 1
            other = store.document(stored.doc_id)
            other.stored_index().pcdata_at(2)
            info = store.cache_info()
            assert info["page_misses"] == misses
            assert info["page_hits"] >= 1

    def test_drop_caches_and_kernel_registry(self):
        from repro.regex.kernel import kernel_stats
        from repro.regex.language import clear_caches

        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            index = stored.stored_index()
            index.pcdata_at(2)
            index.labelled("paper")
            assert store.cache_info()["resident_rows"] > 0
            section = kernel_stats()["caches"]["store.pages"]
            assert section["stores"] >= 1
            clear_caches()
            assert store.cache_info()["resident_rows"] == 0
            # still answers correctly after the drop
            assert index.name_at(0) == "site"
            assert index.pcdata_at(2) == "caching"


class TestStoredIndexProtocol:
    def _pair(self, store):
        stored = store.ingest_text(SAMPLE)
        oracle = document_index(sample_document())
        return stored.stored_index(), oracle

    def test_dispatch_builds_a_stored_index(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            assert isinstance(document_index(stored), StoredDocumentIndex)

    def test_arrays_match_the_in_memory_oracle(self):
        with DocumentStore(":memory:") as store:
            index, oracle = self._pair(store)
            assert len(index) == len(oracle)
            for pos in range(len(oracle)):
                assert index.name_at(pos) == oracle.name_at(pos)
                assert index.pcdata_at(pos) == oracle.pcdata_at(pos)
                assert index.parent[pos] == oracle.parent[pos]
                assert index.end[pos] == oracle.end[pos]
                assert index.depth[pos] == oracle.depth[pos]
                assert tuple(index.children[pos]) == tuple(
                    oracle.children[pos]
                )

    def test_labels_and_intervals_match(self):
        with DocumentStore(":memory:") as store:
            index, oracle = self._pair(store)
            for name in ("site", "paper", "title", "year", "absent"):
                assert index.labelled(name) == oracle.labelled(name)
                assert index.labelled_set(name) == oracle.labelled_set(name)
                for pos in range(len(oracle)):
                    assert index.labelled_within(
                        name, pos
                    ) == oracle.labelled_within(name, pos)
            for ancestor in range(len(oracle)):
                for descendant in range(len(oracle)):
                    assert index.is_ancestor_or_self(
                        ancestor, descendant
                    ) == oracle.is_ancestor_or_self(ancestor, descendant)

    def test_position_of_round_trips_through_element_at(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            index = stored.stored_index()
            for pos in range(stored.size()):
                assert index.position_of(index.element_at(pos)) == pos
            assert index.position_of(Element("paper", [])) is None

    def test_element_at_hydrates_the_subtree_only(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            index = stored.stored_index()
            first_paper = index.labelled("paper")[0]
            subtree = index.element_at(first_paper)
            oracle = document_index(sample_document())
            assert subtree.structurally_equal(
                oracle.element_at(
                    oracle.labelled("paper")[0]
                )
            )

    def test_out_of_range_positions_raise(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            index = stored.stored_index()
            with pytest.raises(IndexError):
                index.name_at(stored.size())
            with pytest.raises(IndexError):
                index.pcdata_at(stored.size())
            with pytest.raises(IndexError):
                index.pcdata_at(-1)


class TestSourceIntegration:
    def _query(self):
        return parse_query(
            """
            v = SELECT P
            WHERE <department> <professor>
                    P:<publication><journal/></publication>
                  </> </>
            """,
            source="dept",
        )

    def _corpus(self, n_docs=3, seed=11):
        import random

        from repro.dtd import generate_document

        schema = paper.d1()
        rng = random.Random(seed)
        return schema, [generate_document(schema, rng) for _ in range(n_docs)]

    def test_from_store_answers_like_the_in_memory_source(self):
        from repro.mediator import Source

        schema, documents = self._corpus()
        with DocumentStore(":memory:") as store:
            for document in documents:
                store.ingest_document(document, source="dept")
            stored_source = Source.from_store("dept", schema, store)
            memory_source = Source("dept", schema, documents, validate=False)
            query = self._query()
            assert stored_source.query(query).root.structurally_equal(
                memory_source.query(query).root
            )
            assert stored_source.queries_served == 1

    def test_from_store_filters_by_source_tag(self):
        from repro.mediator import Source

        schema, documents = self._corpus(n_docs=2)
        with DocumentStore(":memory:") as store:
            store.ingest_document(documents[0], source="dept")
            store.ingest_document(documents[1], source="other")
            source = Source.from_store("dept", schema, store, source="dept")
            assert len(source.documents) == 1

    def test_from_store_validate_checks_the_dtd(self):
        from repro.errors import ValidationError
        from repro.mediator import Source

        schema, documents = self._corpus(n_docs=1)
        with DocumentStore(":memory:") as store:
            store.ingest_document(documents[0], source="dept")
            store.ingest_text(SAMPLE, source="junk")
            Source.from_store("dept", schema, store, source="dept",
                              validate=True)
            with pytest.raises(ValidationError):
                Source.from_store("junk", schema, store, source="junk",
                                  validate=True)

    def test_attach_store_loads_the_corpus(self):
        from repro.mediator import Source

        schema, documents = self._corpus(n_docs=2)
        with DocumentStore(":memory:") as store:
            for document in documents:
                store.ingest_document(document)
            source = Source("dept", schema, [], validate=False,
                            attach_store=store)
            assert len(source.documents) == 2
            answer = source.query(self._query())
            assert answer.root.name == "v"

    def test_query_path_never_hydrates(self):
        """The compiled engine answers from the arrays: 0 hydrations."""
        from repro.mediator import Source

        schema, documents = self._corpus()
        with DocumentStore(":memory:") as store:
            for document in documents:
                store.ingest_document(document, source="dept")
            source = Source.from_store("dept", schema, store)
            store.drop_caches()
            source.query(self._query())
            assert store.cache_info()["hydrations"] == 0


class TestSerialization:
    def test_stored_document_serializes_via_hydration(self):
        with DocumentStore(":memory:") as store:
            stored = store.ingest_text(SAMPLE)
            text = serialize_document(stored)
            assert parse_document(text).root.structurally_equal(
                sample_document().root
            )
            assert store.cache_info()["hydrations"] >= 1
