"""Differential tests: the stored index vs. the in-memory oracle.

:class:`~repro.xmlmodel.index.DocumentIndex` is the oracle.  On random
documents, ``ingest -> StoredDocumentIndex`` must be structurally
identical to ``parse_document -> DocumentIndex`` -- every positional
array, every label list, every interval scan -- and query answers over
store-backed sources must match answers over the same documents held
in memory.  A second group re-opens on-disk stores to pin the
generation counter's restart semantics.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.store import DocumentStore, StorePolicy
from repro.xmlmodel import document_index, parse_document, serialize_document
from tests.strategies import document_strategy, eval_query_strategy


def assert_indexes_agree(index, oracle):
    """Every protocol surface of the stored index matches the oracle."""
    n = len(oracle)
    assert len(index) == n
    names = set()
    for pos in range(n):
        assert index.name_at(pos) == oracle.name_at(pos)
        assert index.pcdata_at(pos) == oracle.pcdata_at(pos)
        assert index.parent[pos] == oracle.parent[pos]
        assert index.end[pos] == oracle.end[pos]
        assert index.depth[pos] == oracle.depth[pos]
        assert tuple(index.children[pos]) == tuple(oracle.children[pos])
        names.add(oracle.name_at(pos))
    for name in names | {"never-in-any-document"}:
        assert index.labelled(name) == oracle.labelled(name)
        assert index.labelled_set(name) == oracle.labelled_set(name)
        for pos in range(n):
            assert index.labelled_within(name, pos) == (
                oracle.labelled_within(name, pos)
            )
    assert index.element_at(0).structurally_equal(oracle.element_at(0))


@settings(max_examples=100, deadline=None)
@given(document=document_strategy())
def test_ingest_document_matches_the_oracle(document):
    """Direct tree ingest: arrays, labels, intervals, hydration."""
    with DocumentStore(":memory:") as store:
        stored = store.ingest_document(document)
        assert_indexes_agree(stored.stored_index(), document_index(document))


@settings(max_examples=100, deadline=None)
@given(document=document_strategy())
def test_ingest_text_matches_parse_document(document):
    """Text ingest: the streaming parser and the tree parser agree.

    Both sides consume the *serialized* text (serialization normalizes
    shapes the parser cannot distinguish, e.g. ``''`` PCDATA), so any
    divergence is the streaming event path's fault.
    """
    text = serialize_document(document)
    with DocumentStore(":memory:") as store:
        stored = store.ingest_text(text)
        oracle = document_index(parse_document(text))
        assert_indexes_agree(stored.stored_index(), oracle)


@settings(max_examples=60, deadline=None)
@given(document=document_strategy())
def test_tiny_page_budget_changes_nothing(document):
    """Evictions under a 2x2 page budget must be invisible to readers."""
    policy = StorePolicy(page_size=2, max_pages=2)
    with DocumentStore(":memory:", policy=policy) as store:
        stored = store.ingest_document(document)
        assert_indexes_agree(stored.stored_index(), document_index(document))
        budget = policy.page_size * policy.max_pages
        assert store.cache_info()["resident_rows"] <= budget


@settings(max_examples=60, deadline=None)
@given(document=document_strategy(), query=eval_query_strategy())
def test_queries_over_the_store_match_in_memory(document, query):
    """End to end: evaluate_many over stored handles vs. real trees."""
    from repro.xmas import evaluate_many

    with DocumentStore(":memory:") as store:
        stored = store.ingest_document(document)
        stored_answer = evaluate_many(query, [stored])
        memory_answer = evaluate_many(query, [document])
        assert stored_answer.root.structurally_equal(memory_answer.root)


@settings(max_examples=25, deadline=None)
@given(document=document_strategy())
def test_reopened_store_matches_the_oracle(document, tmp_path_factory):
    """Restart: a cold process re-reads the same arrays and counter."""
    path = tmp_path_factory.mktemp("store") / "corpus.db"
    with DocumentStore(path) as store:
        store.ingest_document(document)
        generation = store.generation()
    with DocumentStore(path) as reopened:
        assert reopened.generation() == generation
        (stored,) = reopened.documents()
        assert_indexes_agree(stored.stored_index(), document_index(document))
