"""Assorted edge-path tests across modules."""

import pytest

from repro.errors import (
    QuerySyntaxError,
    RegexSyntaxError,
    XmlSyntaxError,
)


class TestErrorMetadata:
    def test_regex_error_position(self):
        from repro.regex import parse_regex

        try:
            parse_regex("a, , b")
        except RegexSyntaxError as error:
            assert error.position >= 2
            assert error.text == "a, , b"
        else:  # pragma: no cover
            pytest.fail("expected RegexSyntaxError")

    def test_query_error_location(self):
        from repro.xmas import parse_query

        try:
            parse_query("SELECT X\nWHERE X:<a")
        except QuerySyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected QuerySyntaxError")

    def test_xml_error_fields(self):
        from repro.xmlmodel import parse_document

        try:
            parse_document("<a><b>")
        except XmlSyntaxError as error:
            assert error.line >= 1
            assert error.column >= 1
        else:  # pragma: no cover
            pytest.fail("expected XmlSyntaxError")


class TestDensityEdge:
    def test_empty_alphabet_density(self):
        from repro.regex import language_density, parse_regex

        # epsilon has an empty alphabet: density 1 at length 0.
        density = language_density(parse_regex("()"), 2)
        assert density[0] == 1.0
        assert density[1] == 0.0


class TestStructureDepthCut:
    def test_max_depth_cuts(self):
        from repro.dtd import dtd
        from repro.mediator import structure_tree

        deep = dtd(
            {"a": "b", "b": "c", "c": "d", "d": "#PCDATA"},
            root="a",
        )
        tree = structure_tree(deep, max_depth=2)
        rendered = tree.render()
        assert "a" in rendered and "b" in rendered
        # level-2 node is cut with a marker
        assert "(...)" in rendered


class TestQueryBuilderEdges:
    def test_require_without_names(self):
        from repro.errors import MediatorError
        from repro.mediator import QueryBuilder
        from repro.workloads.paper import d9

        builder = QueryBuilder(d9()).descend("professor", pick=True)
        with pytest.raises(MediatorError):
            builder.descend()


class TestUnionBranchOrder:
    def test_list_type_preserves_branch_order(self):
        from repro.dtd import dtd
        from repro.inference import UnionBranch, infer_union_view_dtd
        from repro.regex import image, is_equivalent, parse_regex
        from repro.xmas import parse_query

        first = dtd({"r": "alpha*", "alpha": "#PCDATA"}, root="r")
        second = dtd({"s": "beta*", "beta": "#PCDATA"}, root="s")
        branches = [
            UnionBranch(
                first, parse_query("v = SELECT X WHERE <r> X:<alpha/> </>",
                                   source="one"),
            ),
            UnionBranch(
                second, parse_query("v = SELECT X WHERE <s> X:<beta/> </>",
                                    source="two"),
            ),
        ]
        result = infer_union_view_dtd(branches, "v")
        assert is_equivalent(
            image(result.list_type), parse_regex("alpha*, beta*")
        )


class TestSourceEdges:
    def test_batch_validation_on_construction(self):
        from repro.dtd import dtd
        from repro.errors import ValidationError
        from repro.mediator import Source
        from repro.xmlmodel import parse_document

        schema = dtd({"a": "#PCDATA"}, root="a")
        good = parse_document("<a>x</a>")
        bad = parse_document("<b>x</b>")
        with pytest.raises(ValidationError):
            Source("s", schema, [good, bad])
        source = Source("s", schema, [good])
        with pytest.raises(ValidationError):
            source.add_document(bad)


class TestRefineSequenceHelper:
    def test_refine_sequence_orders(self):
        from repro.inference import refine_sequence
        from repro.regex import Sym, matches_letters, parse_regex

        r = parse_regex("(a | b)*")
        refined = refine_sequence(r, [Sym("a", 1), Sym("b", 2)])
        assert matches_letters(refined, [("a", 1), ("b", 2)])
        assert matches_letters(refined, [("b", 2), ("b", 0), ("a", 1)])
        assert not matches_letters(refined, [("a", 1)])

    def test_refine_sequence_fails_cleanly(self):
        from repro.inference import refine_sequence
        from repro.regex import Empty, Sym, parse_regex

        result = refine_sequence(
            parse_regex("a"), [Sym("a", 1), Sym("a", 2)]
        )
        assert isinstance(result, Empty)
