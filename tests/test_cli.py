"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.dtd import serialize_dtd
from repro.workloads import paper

DTD_PAPER_NOTATION = """
{<professor : name, (journal | conference)*>
 <name : #PCDATA> <journal : #PCDATA> <conference : #PCDATA>}
"""

QUERY = "SELECT X WHERE X:<professor><journal/></professor>"

DOC = "<professor><name>Y</name><journal>J</journal></professor>"


@pytest.fixture
def files(tmp_path):
    dtd_file = tmp_path / "source.dtd"
    dtd_file.write_text(DTD_PAPER_NOTATION)
    std_dtd_file = tmp_path / "source_std.dtd"
    std_dtd_file.write_text(serialize_dtd(paper.d9()))
    query_file = tmp_path / "query.xmas"
    query_file.write_text(QUERY)
    doc_file = tmp_path / "doc.xml"
    doc_file.write_text(DOC)
    return {
        "dtd": str(dtd_file),
        "std_dtd": str(std_dtd_file),
        "query": str(query_file),
        "doc": str(doc_file),
    }


class TestInfer:
    def test_report(self, files, capsys):
        assert main(["infer", "--dtd", files["dtd"], "--query", files["query"]]) == 0
        out = capsys.readouterr().out
        assert "satisfiable" in out
        assert "journal" in out

    def test_xml_format(self, files, capsys):
        assert (
            main(
                [
                    "infer",
                    "--dtd",
                    files["dtd"],
                    "--query",
                    files["query"],
                    "--format",
                    "xml",
                ]
            )
            == 0
        )
        assert "<!ELEMENT" in capsys.readouterr().out

    def test_paper_format(self, files, capsys):
        assert (
            main(
                [
                    "infer",
                    "--dtd",
                    files["dtd"],
                    "--query",
                    files["query"],
                    "--format",
                    "paper",
                ]
            )
            == 0
        )
        assert "answer" in capsys.readouterr().out

    def test_standard_dtd_autodetected(self, files, capsys):
        assert (
            main(
                ["infer", "--dtd", files["std_dtd"], "--query", files["query"]]
            )
            == 0
        )

    def test_paper_mode_flag(self, files, capsys):
        assert (
            main(
                [
                    "infer",
                    "--dtd",
                    files["dtd"],
                    "--query",
                    files["query"],
                    "--mode",
                    "paper",
                ]
            )
            == 0
        )


class TestClassify:
    def test_satisfiable(self, files, capsys):
        assert (
            main(["classify", "--dtd", files["dtd"], "--query", files["query"]])
            == 0
        )
        assert capsys.readouterr().out.strip() == "satisfiable"

    def test_unsatisfiable_exit_code(self, files, tmp_path, capsys):
        bad = tmp_path / "bad.xmas"
        bad.write_text(
            "SELECT X WHERE X:<name><journal/></name>"
        )
        assert (
            main(["classify", "--dtd", files["dtd"], "--query", str(bad)])
            == 1
        )
        assert capsys.readouterr().out.strip() == "unsatisfiable"


class TestEvaluateValidate:
    def test_evaluate(self, files, capsys):
        assert (
            main(["evaluate", "--query", files["query"], files["doc"]]) == 0
        )
        out = capsys.readouterr().out
        assert "<answer>" in out
        assert "<journal>J</journal>" in out

    def test_evaluate_alias_and_backends(self, files, capsys):
        outputs = []
        for backend in ("legacy", "compiled"):
            assert (
                main(
                    [
                        "eval",
                        "--query",
                        files["query"],
                        "--backend",
                        backend,
                        files["doc"],
                    ]
                )
                == 0
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "<journal>J</journal>" in outputs[0]

    def test_evaluate_stats_reports_engine_caches(self, files, capsys):
        assert (
            main(
                [
                    "evaluate",
                    "--query",
                    files["query"],
                    "--backend",
                    "compiled",
                    "--stats",
                    files["doc"],
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "engine.plans" in err
        assert "engine.doc_index" in err

    def test_validate_ok(self, files, capsys):
        assert main(["validate", "--dtd", files["dtd"], files["doc"]]) == 0
        assert capsys.readouterr().out.strip() == "valid"

    def test_validate_failure(self, files, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<professor><journal>J</journal></professor>")
        assert main(["validate", "--dtd", files["dtd"], str(bad)]) == 1


class TestAsk:
    CLIENT = "picks = SELECT N WHERE <answer> <professor> N:<name/> </> </>"

    def _ask(self, files, tmp_path, *extra):
        client_file = tmp_path / "client.xmas"
        client_file.write_text(self.CLIENT)
        return main(
            [
                "ask",
                "--dtd",
                files["dtd"],
                "--view",
                files["query"],
                "--query",
                str(client_file),
                *extra,
                files["doc"],
            ]
        )

    def test_ask_answers_through_view(self, files, tmp_path, capsys):
        assert self._ask(files, tmp_path) == 0
        out = capsys.readouterr().out
        assert "<picks>" in out
        assert "<name>Y</name>" in out

    def test_ask_backends_agree(self, files, tmp_path, capsys):
        outputs = []
        for backend in ("legacy", "compiled"):
            assert (
                self._ask(
                    files, tmp_path, "--backend", backend, "--strategy",
                    "materialize",
                )
                == 0
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_ask_explain(self, files, tmp_path, capsys):
        assert self._ask(files, tmp_path, "--explain") == 0
        err = capsys.readouterr().err
        assert "strategy:" in err

    def test_ask_transport_flags_accepted(self, files, tmp_path, capsys):
        assert (
            self._ask(
                files, tmp_path, "--timeout", "5.0", "--retries", "0",
                "--no-degrade",
            )
            == 0
        )
        assert "<picks>" in capsys.readouterr().out

    def test_ask_stats_reports_breaker_health(self, files, tmp_path, capsys):
        assert self._ask(files, tmp_path, "--stats") == 0
        err = capsys.readouterr().err
        assert "breaker" in err
        assert "closed" in err


class TestStructure:
    def test_structure(self, files, capsys):
        assert main(["structure", "--dtd", files["dtd"]]) == 0
        out = capsys.readouterr().out
        assert "professor" in out
        assert "#PCDATA" in out


class TestErrors:
    def test_missing_file(self, files, capsys):
        assert (
            main(["infer", "--dtd", "/nope.dtd", "--query", files["query"]])
            == 2
        )
        assert "error" in capsys.readouterr().err

    def test_bad_query(self, files, tmp_path, capsys):
        bad = tmp_path / "bad.xmas"
        bad.write_text("THIS IS NOT XMAS")
        assert (
            main(["infer", "--dtd", files["dtd"], "--query", str(bad)]) == 2
        )


class TestXmlize:
    def test_repairs(self, tmp_path, capsys):
        dtd_file = tmp_path / "nondeterministic.dtd"
        dtd_file.write_text(
            "<!DOCTYPE r [<!ELEMENT r ((a, b) | (a, c))>"
            "<!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>"
            "<!ELEMENT c (#PCDATA)>]>"
        )
        assert main(["xmlize", "--dtd", str(dtd_file)]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out
        assert "<!ELEMENT r" in out

    def test_impossible_flagged(self, tmp_path, capsys):
        dtd_file = tmp_path / "hopeless.dtd"
        dtd_file.write_text(
            "<!DOCTYPE r [<!ELEMENT r ((a | b)*, a, (a | b))>"
            "<!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>]>"
        )
        assert main(["xmlize", "--dtd", str(dtd_file)]) == 1
        assert "impossible" in capsys.readouterr().out


class TestTrace:
    CLIENT = "picks = SELECT N WHERE <answer> <professor> N:<name/> </> </>"

    def test_ask_trace_writes_chrome_json(self, files, tmp_path, capsys):
        import json

        client_file = tmp_path / "client.xmas"
        client_file.write_text(self.CLIENT)
        trace_file = tmp_path / "trace.json"
        assert (
            main(
                [
                    "ask",
                    "--dtd",
                    files["dtd"],
                    "--view",
                    files["query"],
                    "--query",
                    str(client_file),
                    "--trace",
                    str(trace_file),
                    files["doc"],
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "trace written to" in err
        data = json.loads(trace_file.read_text())
        assert data["displayTimeUnit"] == "ms"
        names = {event["name"] for event in data["traceEvents"]}
        assert "mediator.register_view" in names
        assert "inference.infer_view_dtd" in names
        assert "engine.evaluate" in names
        assert "mediator.query_view" in names
        assert "transport.call" in names

    def test_trace_flaky_workload(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "flaky.json"
        assert (
            main(["trace", "--workload", "flaky", "--out", str(out_file)]) == 0
        )
        out = capsys.readouterr().out
        assert "mediator.materialize_union" in out
        data = json.loads(out_file.read_text())
        events = data["traceEvents"]
        spans = {e["name"] for e in events if e["ph"] == "X"}
        assert "transport.call" in spans
        assert "engine.evaluate" in spans
        # the flaky federation retries, so attempt instants must appear
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert any(name.endswith("/attempt") for name in instants)

    def test_trace_paper_workload(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "paper.json"
        assert (
            main(["trace", "--workload", "paper", "--out", str(out_file)]) == 0
        )
        data = json.loads(out_file.read_text())
        spans = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert "inference.infer_view_dtd" in spans
        assert "mediator.query_view" in spans

    def test_trace_uninstalls_tracer_on_exit(self, tmp_path):
        from repro import obs

        assert main(["trace", "--out", str(tmp_path / "t.json")]) == 0
        assert obs.active_tracer() is None


class TestServeCli:
    """serve + bench-serve through main(), against a real socket."""

    def test_serve_and_bench_serve_round_trip(self, capsys):
        import json

        # The serve command itself blocks in serve_forever, so drive
        # the same pieces it wires together (workload + server) and
        # exercise the bench-serve command against them end to end.
        from repro.serve import (
            MediatorServer,
            ServePolicy,
            build_serve_workload,
        )

        mediator = build_serve_workload("paper", n_sources=2)
        with MediatorServer(mediator, ServePolicy()) as server:
            host, port = server.address
            code = main(
                [
                    "bench-serve",
                    "--port",
                    str(port),
                    "--requests",
                    "10",
                    "--concurrency",
                    "2",
                ]
            )
            assert code == 0
            result = json.loads(capsys.readouterr().out)
            assert result["answered"] == 10
            assert result["view"] == "journals"

    def test_bench_serve_unknown_view_fails(self, capsys):
        from repro.serve import (
            MediatorServer,
            ServePolicy,
            build_serve_workload,
        )

        mediator = build_serve_workload("paper", n_sources=2)
        with MediatorServer(mediator, ServePolicy()) as server:
            _, port = server.address
            code = main(
                ["bench-serve", "--port", str(port), "--view", "nope"]
            )
            assert code == 2
            assert "does not serve" in capsys.readouterr().err
