"""The docs link checker (scripts/check_docs_links.py) — both that it
catches breakage and that the repo's actual markdown corpus is clean."""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_docs_links.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs_links", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestChecker:
    def test_broken_references_are_caught(self, tmp_path, monkeypatch):
        checker = load_checker()
        monkeypatch.setattr(checker, "REPO", tmp_path)
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "REAL.md").write_text("# real\n")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[ok](docs/REAL.md) and [broken](docs/GONE.md)\n"
            "`docs/REAL.md` is fine, `docs/REAL.md:999` is past the end,\n"
            "`src/nowhere.py` is missing, `--some-flag` is not a path.\n"
        )
        problems = checker.check_file(doc)
        assert len(problems) == 3
        assert any("GONE.md" in p for p in problems)
        assert any("past end" in p for p in problems)
        assert any("src/nowhere.py" in p for p in problems)

    def test_anchors_and_urls_are_skipped(self, tmp_path, monkeypatch):
        checker = load_checker()
        monkeypatch.setattr(checker, "REPO", tmp_path)
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[web](https://example.com) [anchor](#section)\n"
            "`tests/foo.py::test_bar` selectors check only the file part\n"
        )
        problems = checker.check_file(doc)
        # the pytest selector's file is genuinely missing here
        assert len(problems) == 1 and "tests/foo.py" in problems[0]

    def test_repo_markdown_corpus_is_clean(self):
        """README + docs must not drift from the tree (make check-docs)."""
        checker = load_checker()
        problems = []
        for doc in checker.DOC_FILES:
            problems.extend(checker.check_file(doc))
        assert problems == []
