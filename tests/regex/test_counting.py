"""Tests for bounded word counting and looseness metrics."""

import pytest

from repro.regex import (
    count_words_by_length,
    count_words_up_to,
    language_density,
    looseness_factor,
    parse_regex,
)


class TestCounting:
    def test_star_counts(self):
        # (a|b)* has 2^k words of length k.
        counts = count_words_by_length(parse_regex("(a | b)*"), 5)
        assert counts == [1, 2, 4, 8, 16, 32]

    def test_fixed_word(self):
        counts = count_words_by_length(parse_regex("a, b, c"), 4)
        assert counts == [0, 0, 0, 1, 0]

    def test_empty_language(self):
        counts = count_words_by_length(parse_regex("#FAIL"), 3)
        assert counts == [0, 0, 0, 0]

    def test_epsilon(self):
        counts = count_words_by_length(parse_regex("()"), 2)
        assert counts == [1, 0, 0]

    def test_ordered_vs_mixed(self):
        # Example 3.1's point: (p|g)+ admits vastly more orderings
        # than p+, g+ at the same length.
        mixed = parse_regex("(p | g)+")
        ordered = parse_regex("p+, g+")
        mixed_counts = count_words_by_length(mixed, 6)
        ordered_counts = count_words_by_length(ordered, 6)
        assert mixed_counts[6] == 64
        assert ordered_counts[6] == 5  # p^1g^5 ... p^5g^1
        assert count_words_up_to(ordered, 6) < count_words_up_to(mixed, 6)

    def test_counts_are_exact_big_integers(self):
        counts = count_words_by_length(parse_regex("(a | b | c)*"), 64)
        assert counts[64] == 3**64  # exact, no float rounding


class TestLooseness:
    def test_factor(self):
        loose = parse_regex("(a | b)*")
        tight = parse_regex("a*")
        factor = looseness_factor(loose, tight, 4)
        assert factor == (1 + 2 + 4 + 8 + 16) / 5

    def test_equal_languages(self):
        r = parse_regex("a+, b")
        assert looseness_factor(r, parse_regex("a, a*, b"), 5) == 1.0

    def test_empty_tight(self):
        assert looseness_factor(parse_regex("a"), parse_regex("#FAIL"), 3) == float("inf")


class TestDensity:
    def test_full_language(self):
        density = language_density(parse_regex("(a | b)*"), 3)
        assert density == [1.0, 1.0, 1.0, 1.0]

    def test_half_language(self):
        density = language_density(parse_regex("a, (a | b)*"), 2)
        assert density[0] == 0.0
        assert density[1] == pytest.approx(0.5)
        assert density[2] == pytest.approx(0.5)
