"""Unit tests for the regex AST and smart constructors."""

import pytest

from repro.regex import (
    EMPTY,
    EPSILON,
    Alt,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Star,
    Sym,
    alphabet,
    alt,
    concat,
    image,
    names,
    nullable,
    opt,
    plus,
    rename,
    size,
    star,
    substitute,
    sym,
    symbols,
)


class TestSmartConstructors:
    def test_concat_flattens(self):
        r = concat(sym("a"), concat(sym("b"), sym("c")))
        assert isinstance(r, Concat)
        assert [s.name for s in r.items] == ["a", "b", "c"]

    def test_concat_drops_epsilon(self):
        assert concat(sym("a"), EPSILON, sym("b")) == concat(sym("a"), sym("b"))

    def test_concat_absorbs_empty(self):
        assert concat(sym("a"), EMPTY, sym("b")) is EMPTY or isinstance(
            concat(sym("a"), EMPTY, sym("b")), Empty
        )

    def test_concat_empty_args_is_epsilon(self):
        assert isinstance(concat(), Epsilon)

    def test_concat_single_arg_unwrapped(self):
        assert concat(sym("a")) == sym("a")

    def test_alt_flattens_and_dedupes(self):
        r = alt(sym("a"), alt(sym("b"), sym("a")))
        assert isinstance(r, Alt)
        assert [s.name for s in r.items] == ["a", "b"]

    def test_alt_drops_empty(self):
        assert alt(sym("a"), EMPTY) == sym("a")

    def test_alt_no_args_is_empty(self):
        assert isinstance(alt(), Empty)

    def test_alt_keeps_epsilon_branch(self):
        r = alt(sym("a"), EPSILON)
        assert isinstance(r, Alt)
        assert EPSILON in r.items

    def test_star_of_constants(self):
        assert isinstance(star(EPSILON), Epsilon)
        assert isinstance(star(EMPTY), Epsilon)

    def test_star_collapses_nested_repetition(self):
        inner = sym("a")
        assert star(star(inner)) == Star(inner)
        assert star(plus(inner)) == Star(inner)
        assert star(opt(inner)) == Star(inner)

    def test_plus_identities(self):
        inner = sym("a")
        assert plus(star(inner)) == Star(inner)
        assert plus(opt(inner)) == Star(inner)
        assert plus(plus(inner)) == Plus(inner)
        assert isinstance(plus(EMPTY), Empty)
        assert isinstance(plus(EPSILON), Epsilon)

    def test_opt_identities(self):
        inner = sym("a")
        assert opt(star(inner)) == Star(inner)
        assert opt(opt(inner)) == Opt(inner)
        assert opt(plus(inner)) == Star(inner)
        assert isinstance(opt(EMPTY), Epsilon)


class TestSym:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Sym("")

    def test_rejects_negative_tag(self):
        with pytest.raises(ValueError):
            Sym("a", -1)

    def test_image_strips_tag(self):
        assert Sym("a", 3).image() == Sym("a", 0)
        assert Sym("a", 0).image() == Sym("a", 0)

    def test_is_tagged(self):
        assert Sym("a", 1).is_tagged
        assert not Sym("a").is_tagged

    def test_key(self):
        assert Sym("pub", 2).key() == ("pub", 2)


class TestQueries:
    def test_nullable(self):
        assert nullable(EPSILON)
        assert not nullable(EMPTY)
        assert not nullable(sym("a"))
        assert nullable(star(sym("a")))
        assert nullable(opt(sym("a")))
        assert not nullable(plus(sym("a")))
        assert nullable(concat(star(sym("a")), opt(sym("b"))))
        assert not nullable(concat(star(sym("a")), sym("b")))
        assert nullable(alt(sym("a"), EPSILON))

    def test_symbols_in_order(self):
        r = concat(sym("a"), alt(sym("b"), sym("c")), star(sym("d")))
        assert [s.name for s in symbols(r)] == ["a", "b", "c", "d"]

    def test_alphabet_and_names(self):
        r = concat(sym("a", 1), sym("a"), sym("b"))
        assert alphabet(r) == frozenset({Sym("a", 1), Sym("a"), Sym("b")})
        assert names(r) == frozenset({"a", "b"})

    def test_size(self):
        r = concat(sym("a"), star(alt(sym("b"), sym("c"))))
        # concat + a + star + alt + b + c
        assert size(r) == 6

    def test_image_recursive(self):
        r = concat(sym("a", 1), star(sym("b", 2)))
        assert image(r) == concat(sym("a"), star(sym("b")))

    def test_rename(self):
        r = concat(sym("a", 1), sym("b"))
        renamed = rename(r, {("a", 1): Sym("a", 9)})
        assert renamed == concat(sym("a", 9), sym("b"))

    def test_substitute(self):
        r = concat(sym("a"), sym("b"))
        result = substitute(r, {("a", 0): alt(sym("x"), sym("y"))})
        assert result == concat(alt(sym("x"), sym("y")), sym("b"))
