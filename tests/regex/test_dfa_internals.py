"""Edge-case tests for the DFA layer internals."""

import pytest
from hypothesis import given, settings

from repro.regex import parse_regex, to_dfa
from repro.regex.dfa import (
    complement,
    minimize,
    product,
    with_alphabet,
)

from tests.strategies import regex_strategy


class TestWithAlphabet:
    def test_extends_with_sink(self):
        dfa = to_dfa(parse_regex("a"))
        extended = with_alphabet(dfa, dfa.alphabet | {("z", 0)})
        assert ("z", 0) in extended.alphabet
        assert extended.accepts([("a", 0)])
        assert not extended.accepts([("z", 0)])
        assert not extended.accepts([("a", 0), ("z", 0)])

    def test_same_alphabet_identity(self):
        dfa = to_dfa(parse_regex("a | b"))
        assert with_alphabet(dfa, dfa.alphabet) is dfa

    def test_non_superset_rejected(self):
        dfa = to_dfa(parse_regex("a, b"))
        with pytest.raises(ValueError):
            with_alphabet(dfa, frozenset({("z", 0)}))


class TestProduct:
    def test_misaligned_alphabets_rejected(self):
        left = to_dfa(parse_regex("a"))
        right = to_dfa(parse_regex("b"))
        with pytest.raises(ValueError):
            product(left, right, lambda x, y: x and y)

    def test_intersection(self):
        letters = frozenset({("a", 0), ("b", 0)})
        left = with_alphabet(to_dfa(parse_regex("a, (a | b)*")), letters)
        right = with_alphabet(to_dfa(parse_regex("(a | b)*, b")), letters)
        both = product(left, right, lambda x, y: x and y)
        assert both.accepts([("a", 0), ("b", 0)])
        assert not both.accepts([("a", 0)])
        assert not both.accepts([("b", 0), ("b", 0)])


class TestComplement:
    def test_complement_flips_membership(self):
        dfa = to_dfa(parse_regex("a+"))
        flipped = complement(dfa)
        assert not flipped.accepts([("a", 0)])
        assert flipped.accepts([])

    @given(regex_strategy(max_leaves=5))
    @settings(max_examples=80, deadline=None)
    def test_double_complement_is_identity(self, r):
        import itertools

        dfa = to_dfa(r)
        double = complement(complement(dfa))
        letters = sorted(dfa.alphabet)
        for length in range(3):
            for word in itertools.product(letters, repeat=length):
                assert dfa.accepts(list(word)) == double.accepts(list(word))


class TestMinimize:
    def test_unreachable_states_dropped(self):
        # (a | b), c builds several states; minimization must not
        # exceed the reachable count and stays equivalent.
        dfa = to_dfa(parse_regex("(a | b), c"))
        small = minimize(dfa)
        assert small.n_states <= dfa.n_states
        assert small.accepts([("a", 0), ("c", 0)])
        assert small.accepts([("b", 0), ("c", 0)])
        assert not small.accepts([("c", 0)])

    def test_already_minimal(self):
        dfa = minimize(to_dfa(parse_regex("a*")))
        assert minimize(dfa).n_states == dfa.n_states

    def test_empty_language(self):
        dfa = minimize(to_dfa(parse_regex("#FAIL")))
        assert dfa.is_empty()
        assert dfa.shortest_word() is None
