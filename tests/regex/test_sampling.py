"""Distributional and edge tests for the word samplers."""

import random
from collections import Counter

import pytest

from repro.regex import (
    EMPTY,
    parse_regex,
    sample_word,
    sample_word_uniform,
)


class TestStructuralSampler:
    def test_empty_language_returns_none(self, rng):
        assert sample_word(EMPTY, rng) is None
        assert sample_word(parse_regex("a, #FAIL"), rng) is None

    def test_star_mean_controls_length(self):
        r = parse_regex("a*")
        short_rng, long_rng = random.Random(1), random.Random(1)
        short = [len(sample_word(r, short_rng, star_mean=0.5)) for _ in range(300)]
        long = [len(sample_word(r, long_rng, star_mean=4.0)) for _ in range(300)]
        assert sum(short) / len(short) < sum(long) / len(long)

    def test_zero_star_mean_minimal_words(self, rng):
        r = parse_regex("a, b*, c+")
        for _ in range(20):
            word = sample_word(r, rng, star_mean=0.0)
            assert [s.name for s in word] == ["a", "c"]

    def test_alt_avoids_empty_branches(self, rng):
        r = parse_regex("(a, #FAIL) | b")
        for _ in range(20):
            word = sample_word(r, rng)
            assert [s.name for s in word] == ["b"]


class TestUniformSampler:
    def test_no_word_within_bound(self, rng):
        r = parse_regex("a, a, a, a")
        assert sample_word_uniform(r, 3, rng) is None

    def test_distribution_is_uniform(self):
        # (a | b), c? has 4 words of length <= 2: ac, bc... wait:
        # words: a, b, (a,c), (b,c) -- each must appear ~25%.
        r = parse_regex("(a | b), c?")
        rng = random.Random(7)
        counts = Counter()
        trials = 4000
        for _ in range(trials):
            word = sample_word_uniform(r, 2, rng)
            counts[tuple(s.name for s in word)] += 1
        assert set(counts) == {("a",), ("b",), ("a", "c"), ("b", "c")}
        for count in counts.values():
            assert abs(count / trials - 0.25) < 0.04

    def test_lengths_weighted_by_word_count(self):
        # (a | b)* up to length 2: 1 word of length 0, 2 of length 1,
        # 4 of length 2 -> expected fractions 1/7, 2/7, 4/7.
        r = parse_regex("(a | b)*")
        rng = random.Random(11)
        lengths = Counter()
        trials = 7000
        for _ in range(trials):
            lengths[len(sample_word_uniform(r, 2, rng))] += 1
        assert abs(lengths[0] / trials - 1 / 7) < 0.03
        assert abs(lengths[1] / trials - 2 / 7) < 0.03
        assert abs(lengths[2] / trials - 4 / 7) < 0.03
