"""Tests for the language-preserving simplifiers."""

from hypothesis import given, settings

from repro.regex import (
    is_equivalent,
    parse_regex,
    simplify,
    simplify_deep,
    to_string,
)
from repro.regex.simplify import prune_subsumed

from tests.strategies import regex_strategy


class TestCases:
    def test_fuse_star_symbol(self):
        assert to_string(simplify(parse_regex("a*, a"))) == "a+"
        assert to_string(simplify(parse_regex("a, a*"))) == "a+"
        assert to_string(simplify(parse_regex("a*, a, a*"))) == "a+"

    def test_fuse_run_with_minimum_two(self):
        result = simplify(parse_regex("a, a+, a*"))
        assert to_string(result) == "a, a+"

    def test_fuse_respects_different_bodies(self):
        r = parse_regex("a*, b")
        assert simplify(r) == r

    def test_epsilon_branch_becomes_opt(self):
        assert to_string(simplify(parse_regex("a | ()"))) == "a?"

    def test_star_absorbs_nullability(self):
        assert to_string(simplify(parse_regex("(a?)*"))) == "a*"
        assert to_string(simplify(parse_regex("(a? | b)*"))) == "(a | b)*"
        assert to_string(simplify(parse_regex("(a+ | b)*"))) == "(a | b)*"

    def test_subsumption_pruning(self):
        # a is subsumed by (a | b); a,a by a+.
        assert to_string(prune_subsumed(parse_regex("(a | b) | a"))) == "a | b"
        assert to_string(simplify_deep(parse_regex("a+ | (a, a)"))) == "a+"

    def test_example_4_3_style(self):
        # The D10 publication union collapses to one branch.
        merged = parse_regex(
            "(title, author+, (journal | conference)) | (title, author+, journal)"
        )
        assert (
            to_string(simplify_deep(merged))
            == "title, author+, (journal | conference)"
        )

    def test_optional_union(self):
        assert to_string(simplify_deep(parse_regex("(a, a*) | (a, a) | ()"))) == "a*"


class TestProperties:
    @given(regex_strategy())
    @settings(max_examples=150, deadline=None)
    def test_simplify_preserves_language(self, r):
        assert is_equivalent(simplify(r), r)

    @given(regex_strategy())
    @settings(max_examples=100, deadline=None)
    def test_simplify_deep_preserves_language(self, r):
        assert is_equivalent(simplify_deep(r), r)

    @given(regex_strategy())
    @settings(max_examples=100, deadline=None)
    def test_simplify_idempotent(self, r):
        once = simplify(r)
        assert simplify(once) == once
