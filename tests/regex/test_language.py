"""Unit tests for the exact language decision procedures."""

from repro.regex import (
    EMPTY,
    EPSILON,
    Sym,
    concat,
    difference_witness,
    is_empty,
    is_equivalent,
    is_proper_subset,
    is_subset,
    matches,
    matches_letters,
    minimal_dfa,
    parse_regex,
    star,
    sym,
    to_dfa,
)


def w(*names: str) -> list[Sym]:
    return [Sym(name) for name in names]


class TestMembership:
    def test_simple(self):
        r = parse_regex("a, b*")
        assert matches(r, w("a"))
        assert matches(r, w("a", "b", "b"))
        assert not matches(r, w("b"))
        assert not matches(r, w())

    def test_epsilon(self):
        assert matches(EPSILON, w())
        assert not matches(EPSILON, w("a"))

    def test_empty_language(self):
        assert not matches(EMPTY, w())
        assert not matches(EMPTY, w("a"))

    def test_disjunction(self):
        r = parse_regex("title, author+, (journal | conference)")
        assert matches(r, w("title", "author", "journal"))
        assert matches(r, w("title", "author", "author", "conference"))
        assert not matches(r, w("title", "journal"))
        assert not matches(r, w("title", "author"))

    def test_tagged_letters(self):
        r = parse_regex("a*, a^1, a*")
        assert matches_letters(r, [("a", 0), ("a", 1)])
        assert matches_letters(r, [("a", 1)])
        assert not matches_letters(r, [("a", 0)])

    def test_unknown_letter_rejected(self):
        r = parse_regex("a*")
        assert not matches(r, w("z"))


class TestEmptiness:
    def test_empty(self):
        assert is_empty(EMPTY)
        assert is_empty(concat(sym("a"), EMPTY))

    def test_non_empty(self):
        assert not is_empty(EPSILON)
        assert not is_empty(parse_regex("a*"))


class TestInclusion:
    def test_reflexive(self):
        r = parse_regex("a, (b | c)*")
        assert is_subset(r, r)
        assert is_equivalent(r, r)

    def test_paper_tightness_example(self):
        # D3's publication type is tighter than D1's.
        tight = parse_regex("title, author+, journal")
        loose = parse_regex("title, author+, (journal | conference)")
        assert is_subset(tight, loose)
        assert not is_subset(loose, tight)
        assert is_proper_subset(tight, loose)

    def test_star_plus(self):
        assert is_proper_subset(parse_regex("a+"), parse_regex("a*"))
        assert is_equivalent(parse_regex("a, a*"), parse_regex("a+"))
        assert is_equivalent(parse_regex("a? | a, a"), parse_regex("a?, a?"))

    def test_disjoint_alphabets(self):
        assert not is_subset(parse_regex("a"), parse_regex("b"))
        assert not is_equivalent(parse_regex("a"), parse_regex("b"))

    def test_witness(self):
        loose = parse_regex("(a | b)*")
        tight = parse_regex("a*")
        witness = difference_witness(loose, tight)
        assert witness is not None
        assert ("b", 0) in witness
        assert difference_witness(tight, loose) is None


class TestDfa:
    def test_minimal_dfa_size(self):
        # a* needs exactly one state; (a|b)* too.
        assert minimal_dfa(parse_regex("a*")).n_states == 1
        assert minimal_dfa(parse_regex("(a | b)*")).n_states == 1
        # a, a needs 3 productive states + sink.
        assert minimal_dfa(parse_regex("a, a")).n_states == 4

    def test_shortest_word(self):
        dfa = to_dfa(parse_regex("a, b+, c"))
        assert dfa.shortest_word() == [("a", 0), ("b", 0), ("c", 0)]

    def test_shortest_word_empty_language(self):
        assert to_dfa(EMPTY).shortest_word() is None

    def test_accepts_epsilon(self):
        assert to_dfa(star(sym("a"))).accepts([])
        assert not to_dfa(sym("a")).accepts([])
