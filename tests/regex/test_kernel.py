"""The hash-consing / canonical-signature kernel.

Covers the interning semantics of :mod:`repro.regex.ast`, the derived
facts carried on nodes, the signature-based equivalence backend
against the legacy pairwise oracle (differential, on random
expressions), and the cache registry / statistics surface of
:mod:`repro.regex.kernel`.
"""

from __future__ import annotations

import copy
import pickle

import pytest
from hypothesis import given, settings

from repro.regex import (
    EMPTY,
    EPSILON,
    Concat,
    Star,
    Sym,
    canonical_signature,
    clear_caches,
    concat,
    equivalence_backend,
    is_equivalent,
    is_equivalent_pairwise,
    kernel_stats,
    kernel_summary,
    letters,
    matches,
    nullable,
    parse_regex,
    set_equivalence_backend,
    size,
    star,
    sym,
)
from repro.regex import kernel
from repro.regex.ast import Alt, Empty, Epsilon, Opt, Plus, Regex, symbols

from tests.strategies import regex_strategy


class TestInterning:
    def test_structurally_equal_nodes_are_pointer_equal(self):
        assert sym("a") is sym("a")
        assert sym("a", 1) is sym("a", 1)
        assert sym("a") is not sym("a", 1)
        assert concat(sym("a"), sym("b")) is concat(sym("a"), sym("b"))
        assert star(concat(sym("a"), sym("b"))) is star(
            concat(sym("a"), sym("b"))
        )

    def test_call_spellings_intern_to_one_node(self):
        assert Sym("a") is Sym("a", 0)
        assert Sym("a") is Sym("a", tag=0)
        assert Sym(name="a", tag=0) is Sym("a")

    def test_parsing_interns_too(self):
        assert parse_regex("a, b*") is parse_regex("a, b*")
        assert parse_regex("(a)") is sym("a")

    def test_structural_equality_and_hash_still_hold(self):
        assert sym("a") == sym("a")
        assert sym("a") != sym("b")
        assert hash(sym("a")) == hash(sym("a"))
        assert concat(sym("a"), sym("b")) != concat(sym("b"), sym("a"))

    def test_validation_fires_on_every_construction(self):
        with pytest.raises(ValueError):
            Sym("")
        with pytest.raises(ValueError):
            Sym("a", -1)
        with pytest.raises(ValueError):
            Sym("a", -1)  # invalid spellings are never interned

    def test_pickle_roundtrip_returns_the_interned_node(self):
        node = star(concat(sym("a", 2), sym("b")))
        assert pickle.loads(pickle.dumps(node)) is node

    def test_copy_is_identity(self):
        node = concat(sym("a"), star(sym("b")))
        assert copy.copy(node) is node
        assert copy.deepcopy(node) is node

    def test_interning_survives_clear_caches(self):
        before = concat(sym("a"), sym("b"), star(sym("c")))
        clear_caches()
        assert concat(sym("a"), sym("b"), star(sym("c"))) is before


def _walk_count(r: Regex) -> int:
    if isinstance(r, (Sym, Epsilon, Empty)):
        return 1
    if isinstance(r, (Concat, Alt)):
        return 1 + sum(_walk_count(i) for i in r.items)
    assert isinstance(r, (Star, Plus, Opt))
    return 1 + _walk_count(r.item)


class TestDerivedFacts:
    @given(regex_strategy(tags=(0, 1)))
    def test_letters_match_symbol_occurrences(self, r):
        assert letters(r) == frozenset(s.key() for s in symbols(r))

    @given(regex_strategy())
    def test_nullability_matches_the_automaton(self, r):
        assert nullable(r) == matches(r, [])

    @given(regex_strategy(tags=(0, 1)))
    def test_size_matches_a_structural_walk(self, r):
        assert size(r) == _walk_count(r)

    @given(regex_strategy(tags=(0, 2)))
    def test_has_tags_matches_the_letter_set(self, r):
        assert r.has_tags == any(tag != 0 for _, tag in letters(r))


class TestSignatureEquivalence:
    def test_signatures_are_interned_objects(self):
        left = parse_regex("a, a*")
        right = parse_regex("a+")
        assert canonical_signature(left) is canonical_signature(right)
        assert canonical_signature(left) is not canonical_signature(sym("a"))

    def test_signature_ignores_vacuous_letters(self):
        # Raw constructors can mention letters that occur in no
        # accepted word; trimming makes them leave no trace.
        dead_branch = Concat((sym("b"), EMPTY))
        assert canonical_signature(dead_branch) is canonical_signature(EMPTY)
        padded = Alt((sym("a"), dead_branch))
        assert canonical_signature(padded) is canonical_signature(sym("a"))

    @settings(max_examples=60)
    @given(regex_strategy(tags=(0, 1)), regex_strategy(tags=(0, 1)))
    def test_differential_signature_vs_pairwise(self, left, right):
        assert is_equivalent(left, right) == is_equivalent_pairwise(
            left, right
        )

    @given(regex_strategy())
    def test_reflexive_under_both_backends(self, r):
        assert is_equivalent(r, r)
        assert is_equivalent_pairwise(r, r)

    def test_backend_switch_roundtrip(self):
        assert equivalence_backend() == "signature"
        old = set_equivalence_backend("pairwise")
        try:
            assert old == "signature"
            assert equivalence_backend() == "pairwise"
            assert is_equivalent(parse_regex("a, a*"), parse_regex("a+"))
        finally:
            set_equivalence_backend("signature")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_equivalence_backend("syntactic")


class TestKernelRegistry:
    def test_registry_names_cover_the_language_caches(self):
        names = kernel.registered_caches()
        for expected in (
            "ast.image",
            "language.dfa",
            "language.min_dfa",
            "language.signature",
            "language.signature_intern",
            "language.equiv_union_find",
            "language.pairwise_equivalent",
            "language.subset",
            "language.is_empty",
        ):
            assert expected in names

    def test_clear_caches_empties_every_registered_cache(self):
        is_equivalent(parse_regex("a, a*"), parse_regex("a+"))
        clear_caches()
        stats = kernel_stats()
        for name, row in stats["caches"].items():
            assert row.get("currsize", row.get("size", 0)) == 0, name
        assert stats["events"] == {}

    def test_stats_count_interning_and_decisions(self):
        clear_caches()
        left, right = parse_regex("a, a*"), parse_regex("a+")
        assert left is not right
        assert is_equivalent(left, right)
        stats = kernel_stats()
        assert sum(r["hits"] for r in stats["interning"].values()) > 0
        assert sum(r["live"] for r in stats["interning"].values()) > 0
        assert stats["events"].get("equiv.signature_equal", 0) >= 1
        summary = kernel_summary()
        assert summary["interned_nodes"] > 0
        assert summary["intern_hits"] > 0

    def test_inference_run_exercises_the_kernel(self):
        # Acceptance check for the PR: a paper-workload inference run
        # must leave nonzero kernel counters behind.
        from repro.inference import infer_view_dtd
        from repro.workloads import paper

        clear_caches()
        infer_view_dtd(paper.d1(), paper.q2())
        summary = kernel_summary()
        assert summary["intern_hits"] > 0
        assert summary["cache_hits"] > 0
        assert summary["cache_misses"] > 0

    def test_render_stats_mentions_every_section(self):
        is_equivalent(parse_regex("a"), parse_regex("a"))
        text = kernel.render_stats()
        assert "interned nodes" in text
        assert "caches" in text
        assert "language.signature" in text

    def test_every_stats_section_resets_with_clear_caches(self):
        # Regression: a stats section registered without a paired
        # cache-clear hook survives clear_caches() with stale counters.
        # Put traffic through every section owner, clear, and demand
        # zeros everywhere.
        from repro import obs
        from repro.mediator import MatViewCache

        def all_zero(value, path):
            if isinstance(value, dict):
                for key, sub in value.items():
                    all_zero(sub, f"{path}.{key}")
            elif isinstance(value, (int, float)):
                assert value == 0, f"{path} = {value!r} after clear"
            # non-numeric leaves (labels etc.) are not counters

        cache = MatViewCache()
        cache.note_bypass()
        obs.REGISTRY.counter("kernel.test.section_reset").inc()
        with obs.span("kernel.test.section_reset"):
            pass
        clear_caches()
        stats = kernel_stats()
        for name in kernel.registered_sections():
            assert name in stats
            all_zero(stats[name], name)
        assert cache.info()["bypasses"] == 0


class TestConstants:
    def test_constants_are_singletons(self):
        assert Epsilon() is EPSILON
        assert Empty() is not EPSILON
        assert star(EPSILON) is EPSILON
