"""Round-trip and error tests for the content-model parser/printer."""

import pytest

from repro.errors import RegexSyntaxError
from repro.regex import (
    EPSILON,
    Alt,
    Concat,
    Opt,
    Plus,
    Star,
    Sym,
    alt,
    concat,
    opt,
    parse_regex,
    plus,
    star,
    sym,
    to_string,
    to_xml_content_model,
)


class TestParsing:
    def test_simple_sequence(self):
        r = parse_regex("name, professor+, gradStudent+, course*")
        assert isinstance(r, Concat)
        assert len(r.items) == 4
        assert isinstance(r.items[1], Plus)
        assert isinstance(r.items[3], Star)

    def test_disjunction_precedence(self):
        # '|' binds loosest: a, b | c parses as (a, b) | c
        r = parse_regex("a, b | c")
        assert isinstance(r, Alt)
        assert r.items[0] == concat(sym("a"), sym("b"))
        assert r.items[1] == sym("c")

    def test_parenthesized_disjunction(self):
        r = parse_regex("title, author+, (journal | conference)")
        assert isinstance(r, Concat)
        assert isinstance(r.items[2], Alt)

    def test_postfix_stacking(self):
        assert parse_regex("a*?") == star(sym("a"))
        assert parse_regex("(a+)+") == plus(sym("a"))

    def test_tagged_names(self):
        r = parse_regex("publication*, publication^1, publication*")
        assert isinstance(r, Concat)
        assert r.items[1] == Sym("publication", 1)

    def test_epsilon_and_fail(self):
        assert parse_regex("()") == EPSILON
        assert parse_regex("#FAIL | a") == sym("a")

    def test_optional(self):
        r = parse_regex("a?, b")
        assert isinstance(r.items[0], Opt)

    def test_whitespace_insensitive(self):
        assert parse_regex(" a ,\n b ") == parse_regex("a,b")

    @pytest.mark.parametrize(
        "bad",
        ["", "a,", "a |", "(a", "a)", "a ^", "a^x", "#WRONG", "a b", "|a", ","],
    )
    def test_errors(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse_regex(bad)


class TestPrinting:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "a, b, c",
            "a | b | c",
            "(a, b) | c",
            "a, (b | c)",
            "a*",
            "a+",
            "a?",
            "(a, b)*",
            "(a | b)+",
            "name, (journal | conference)*",
            "firstName, lastName, publication*, publication^1, publication*",
            "title, author+, (journal | conference)",
        ],
    )
    def test_round_trip(self, text):
        parsed = parse_regex(text)
        assert parse_regex(to_string(parsed)) == parsed

    def test_nested_needs_parens(self):
        r = concat(alt(sym("a"), sym("b")), sym("c"))
        assert to_string(r) == "(a | b), c"
        assert parse_regex(to_string(r)) == r

    def test_star_of_concat_parenthesized(self):
        r = star(concat(sym("a"), sym("b")))
        assert to_string(r) == "(a, b)*"

    def test_tagged_rendering(self):
        assert to_string(Sym("pub", 2)) == "pub^2"
        assert to_string(Sym("pub")) == "pub"

    def test_xml_content_model_wraps(self):
        assert to_xml_content_model(parse_regex("a, b")) == "(a, b)"
        assert to_xml_content_model(parse_regex("(a, b)")) == "(a, b)"


class TestRoundTripProperty:
    def test_many_random_round_trips(self):
        from hypothesis import given, settings

        from tests.strategies import regex_strategy

        @given(regex_strategy(tags=(0, 1)))
        @settings(max_examples=200, deadline=None)
        def check(r):
            assert parse_regex(to_string(r)) == r

        check()
