"""Property-based cross-checks of the two language engines.

The Glushkov/DFA path and the Brzozowski-derivative path are built
from different theory; agreement on random inputs is strong evidence
both are right.  Also checks the samplers against membership and the
counter against brute-force enumeration.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings

from repro.regex import (
    Sym,
    count_words_by_length,
    derivatives,
    is_equivalent,
    is_subset,
    matches,
    minimal_dfa,
    nullable,
    sample_word,
    sample_word_uniform,
    to_dfa,
)
from repro.regex.nfa import build_nfa, nfa_accepts

from tests.strategies import NAMES, regex_strategy, words_strategy

FAST = settings(max_examples=150, deadline=None)


@given(regex_strategy(), words_strategy())
@FAST
def test_dfa_agrees_with_derivatives(r, word):
    assert matches(r, word) == derivatives.matches(r, word)


@given(regex_strategy(), words_strategy())
@FAST
def test_nfa_agrees_with_dfa(r, word):
    letters = [s.key() for s in word]
    assert nfa_accepts(build_nfa(r), letters) == to_dfa(r).accepts(letters)


@given(regex_strategy())
@FAST
def test_nullable_agrees_with_membership(r):
    assert nullable(r) == matches(r, [])


@given(regex_strategy())
@FAST
def test_minimized_dfa_equivalent(r):
    original = to_dfa(r)
    minimized = minimal_dfa(r)
    assert minimized.n_states <= original.n_states
    for word in itertools.chain.from_iterable(
        itertools.product([(n, 0) for n in NAMES], repeat=k) for k in range(4)
    ):
        assert original.accepts(list(word)) == minimized.accepts(list(word))


@given(regex_strategy())
@FAST
def test_structural_sampler_produces_members(r):
    rng = random.Random(7)
    word = sample_word(r, rng)
    if word is None:
        assert not matches(r, [])  # empty language has no members
        # the language must really be empty
        from repro.regex import is_empty

        assert is_empty(r)
    else:
        assert matches(r, word)


@given(regex_strategy())
@FAST
def test_uniform_sampler_produces_members(r):
    rng = random.Random(13)
    word = sample_word_uniform(r, 5, rng)
    if word is not None:
        assert len(word) <= 5
        assert matches(r, word)


@given(regex_strategy(max_leaves=5))
@settings(max_examples=60, deadline=None)
def test_counting_matches_enumeration(r):
    counts = count_words_by_length(r, 3)
    alphabet_letters = sorted(
        {s.key() for s in _regex_alphabet(r)}
    )
    for length in range(4):
        brute = sum(
            1
            for word in itertools.product(alphabet_letters, repeat=length)
            if to_dfa(r).accepts(list(word))
        )
        assert counts[length] == brute


def _regex_alphabet(r):
    from repro.regex import alphabet

    return alphabet(r)


@given(regex_strategy(max_leaves=5), regex_strategy(max_leaves=5))
@settings(max_examples=80, deadline=None)
def test_subset_consistent_with_membership(r1, r2):
    if is_subset(r1, r2):
        # every sampled member of r1 must be in r2
        rng = random.Random(3)
        for _ in range(5):
            word = sample_word(r1, rng)
            if word is not None:
                assert matches(r2, word)


@given(regex_strategy(max_leaves=5), regex_strategy(max_leaves=5))
@settings(max_examples=80, deadline=None)
def test_equivalence_is_mutual_inclusion(r1, r2):
    assert is_equivalent(r1, r2) == (is_subset(r1, r2) and is_subset(r2, r1))
