"""Shared fixtures."""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
