"""Tests for the dataguide baseline (Related Work, Section 5)."""

import random

import pytest

from repro.dataguide import (
    build_dataguide,
    conforms,
    dataguide_to_sdtd,
)
from repro.dtd import generate_document, satisfies_sdtd
from repro.workloads import paper
from repro.xmas import evaluate
from repro.xmlmodel import Document, parse_document


def corpus(n=5, seed=0, star_mean=1.6):
    rng = random.Random(seed)
    d1 = paper.d1()
    return [generate_document(d1, rng, star_mean=star_mean) for _ in range(n)]


class TestBuild:
    def test_one_node_per_label_path(self):
        docs = corpus()
        guide = build_dataguide(docs)
        paths = guide.paths()
        assert len(paths) == len(set(paths))  # strong dataguide

    def test_counts(self):
        doc = parse_document("<a><b/><b/><c/></a>")
        guide = build_dataguide([Document(doc.root)])
        assert guide.root.count == 1
        assert guide.root.children["b"].count == 2
        assert guide.root.children["c"].count == 1

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            build_dataguide([])

    def test_mixed_roots_rejected(self):
        with pytest.raises(ValueError):
            build_dataguide(
                [parse_document("<a/>"), parse_document("<b/>")]
            )

    def test_render(self):
        guide = build_dataguide(corpus(2))
        text = guide.render()
        assert "department" in text
        assert "publication" in text


class TestConformance:
    def test_corpus_conforms_to_own_guide(self):
        docs = corpus()
        guide = build_dataguide(docs)
        assert all(conforms(doc, guide) for doc in docs)

    def test_unseen_path_rejected(self):
        guide = build_dataguide([parse_document("<a><b>x</b></a>")])
        assert not conforms(parse_document("<a><c>x</c></a>"), guide)

    def test_wrong_root_rejected(self):
        guide = build_dataguide([parse_document("<a/>")])
        assert not conforms(parse_document("<z/>"), guide)

    def test_dataguide_overfits_valid_data(self):
        """The paper's implicit point: dataguides are data-derived and
        may reject valid documents a DTD-based description admits."""
        from repro.dtd import validate_document

        train = parse_document(
            "<department><name>CS</name>"
            "<professor><firstName>a</firstName><lastName>b</lastName>"
            "<publication><title>t</title><author>x</author>"
            "<journal>J</journal></publication>"
            "<teaches>c</teaches></professor>"
            "<gradStudent><firstName>c</firstName><lastName>d</lastName>"
            "<publication><title>u</title><author>y</author>"
            "<journal>K</journal></publication></gradStudent>"
            "</department>"
        )
        guide = build_dataguide([train])
        # A valid document whose professor has a *conference* paper:
        # the source DTD admits it, the trained dataguide does not.
        fresh = parse_document(
            "<department><name>CS</name>"
            "<professor><firstName>a</firstName><lastName>b</lastName>"
            "<publication><title>t</title><author>x</author>"
            "<conference>ICDE</conference></publication>"
            "<teaches>c</teaches></professor>"
            "<gradStudent><firstName>c</firstName><lastName>d</lastName>"
            "<publication><title>u</title><author>y</author>"
            "<journal>K</journal></publication></gradStudent>"
            "</department>"
        )
        assert validate_document(fresh, paper.d1()).ok
        assert not conforms(fresh, guide)


class TestConversion:
    def test_sdtd_loses_order_and_cardinality(self):
        # Build the guide of Q2's view and compare its description of
        # professor against the inferred tight type.
        from repro.inference import infer_view_dtd
        from repro.regex import is_proper_subset

        d1 = paper.d1()
        q2 = paper.q2()
        result = infer_view_dtd(d1, q2)
        rng = random.Random(3)
        views = []
        while len(views) < 4:
            doc = generate_document(d1, rng, star_mean=2.2)
            view = evaluate(q2, doc)
            if view.root.children:
                views.append(view)
        guide = build_dataguide(views)
        guide_sdtd = dataguide_to_sdtd(guide)
        prof_keys = [
            key for key in guide_sdtd.types if key[0] == "professor"
        ]
        assert prof_keys
        guide_type = guide_sdtd.types[prof_keys[0]]
        tight_type = result.dtd.types["professor"]
        # (f | l | pub | teaches)* admits strictly more sequences than
        # the ordered, cardinality-constrained DTD type.
        assert is_proper_subset(tight_type, guide_type)

    def test_view_corpus_satisfies_guide_sdtd(self):
        docs = corpus(4, seed=5)
        guide = build_dataguide(docs)
        guide_sdtd = dataguide_to_sdtd(guide)
        for doc in docs:
            assert satisfies_sdtd(doc.root, guide_sdtd)

    def test_same_label_different_paths_specialized(self):
        # 'name' under both a and b: two guide nodes, potentially two
        # specializations (here both PCDATA, so they may share tag 0
        # after our first-occurrence-gets-0 policy -- assert at least
        # that both paths are represented).
        doc = parse_document(
            "<r><a><x><y>1</y></x></a><b><x>t</x></b></r>"
        )
        guide = build_dataguide([doc])
        sdtd = dataguide_to_sdtd(guide)
        x_keys = [key for key in sdtd.types if key[0] == "x"]
        assert len(x_keys) == 2  # element-content x vs PCDATA x
        assert satisfies_sdtd(doc.root, sdtd)

    def test_empty_content_node(self):
        doc = parse_document("<r><empty/></r>")
        sdtd = dataguide_to_sdtd(build_dataguide([doc]))
        assert satisfies_sdtd(doc.root, sdtd)
