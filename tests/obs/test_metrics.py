"""Tests for the process-local metrics registry."""

import pytest

from repro import obs
from repro.obs import MetricsRegistry
from repro.regex import kernel
from repro.regex.language import clear_caches


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_get_or_create_and_inc(self, registry):
        counter = registry.counter("queries")
        counter.inc()
        counter.inc(2)
        assert registry.counter("queries").value == 3
        assert registry.counter("queries") is counter

    def test_gauge_set_and_add(self, registry):
        gauge = registry.gauge("inflight")
        gauge.set(4.0)
        gauge.add(-1.0)
        assert registry.gauge("inflight").value == 3.0


class TestHistograms:
    def test_observe_tracks_count_sum_extrema(self, registry):
        histogram = registry.histogram("latency")
        for value in (0.002, 0.04, 0.0005):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.0425)
        assert histogram.min == pytest.approx(0.0005)
        assert histogram.max == pytest.approx(0.04)
        assert histogram.mean == pytest.approx(0.0425 / 3)

    def test_bucket_boundaries(self, registry):
        histogram = registry.histogram("latency")
        histogram.observe(0.0005)  # <= 1e-3
        histogram.observe(0.5)     # <= 1.0
        histogram.observe(100.0)   # above every bound -> inf
        snapshot = histogram.snapshot()
        buckets = snapshot["buckets"]
        assert sum(buckets.values()) == 3
        assert buckets["inf"] == 1

    def test_empty_histogram_snapshot(self, registry):
        snapshot = registry.histogram("nothing").snapshot()
        assert snapshot["count"] == 0


class TestRegistry:
    def test_snapshot_layout(self, registry):
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.1)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 1.0}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_reset(self, registry):
        registry.counter("c").inc()
        registry.histogram("h").observe(0.1)
        assert len(registry) == 2
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestKernelIntegration:
    def test_obs_section_in_kernel_stats(self):
        clear_caches()
        obs.REGISTRY.counter("test.probe").inc(5)
        stats = kernel.kernel_stats()
        assert stats["obs"]["counters"]["test.probe"] == 5
        clear_caches()

    def test_clear_caches_resets_global_registry(self):
        obs.REGISTRY.counter("test.probe").inc()
        clear_caches()
        assert len(obs.REGISTRY) == 0

    def test_render_stats_shows_metrics(self):
        clear_caches()
        obs.REGISTRY.counter("spans.test").inc(2)
        obs.REGISTRY.histogram("span.test").observe(0.001)
        rendered = kernel.render_stats()
        assert "obs metrics:" in rendered
        assert "spans.test" in rendered
        clear_caches()
