"""Tests for spans, tracers, the no-op fast path, and Chrome export.

Every timed assertion runs on the transport's ``FakeClock`` -- the
tracer accepts any object with ``now()``, which is what makes traces
deterministic and exactly assertable.
"""

import json

import pytest

from repro import obs
from repro.mediator import FakeClock
from repro.obs import MetricsRegistry, Tracer


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock, metrics=MetricsRegistry())


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    yield
    assert obs.active_tracer() is None, "a test leaked an installed tracer"


class TestSpans:
    def test_nesting_and_durations(self, clock, tracer):
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.25)
            assert inner.duration == pytest.approx(0.25)
        (outer,) = tracer.roots
        assert outer.duration == pytest.approx(1.25)
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.children[0].parent is outer

    def test_attributes_and_events(self, clock, tracer):
        with tracer.span("call") as span:
            span.set_attribute("source", "site0")
            clock.advance(0.5)
            span.add_event("attempt", number=1)
        assert span.attributes == {"source": "site0"}
        (event,) = span.events
        assert event.name == "attempt"
        assert event.ts == pytest.approx(0.5)
        assert event.attributes == {"number": 1}

    def test_exception_recorded_as_error_attribute(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("doomed") as span:
                raise ValueError("boom")
        assert span.attributes["error"] == "ValueError: boom"
        assert span.end is not None  # still finished

    def test_sibling_spans(self, tracer):
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        (parent,) = tracer.roots
        assert [c.name for c in parent.children] == ["first", "second"]

    def test_walk_and_find(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.walk()] == ["a", "b", "b"]
        assert len(tracer.find("b")) == 2

    def test_render_tree(self, clock, tracer):
        with tracer.span("outer") as span:
            span.set_attribute("k", "v")
            span.add_event("tick")
            clock.advance(0.002)
        rendered = tracer.render()
        assert "outer" in rendered
        assert "[2.000ms]" in rendered
        assert "k=v" in rendered
        assert "* tick" in rendered


class TestSpanMetrics:
    def test_finish_observes_histogram_and_counter(self, clock, tracer):
        with tracer.span("work"):
            clock.advance(0.5)
        snapshot = tracer.metrics.snapshot()
        assert snapshot["counters"]["spans.work"] == 1
        assert snapshot["histograms"]["span.work"]["mean"] == pytest.approx(
            0.5
        )


class TestGlobalSwitch:
    def test_disabled_returns_noop_singleton(self):
        assert not obs.enabled()
        assert obs.span("anything") is obs.NOOP_SPAN
        # the no-op absorbs the full span API
        with obs.span("anything") as span:
            span.set_attribute("k", "v")
            span.add_event("e", n=1)
        obs.event("ignored")
        obs.set_attribute("also", "ignored")

    def test_install_uninstall(self, clock):
        tracer = obs.install_tracer(Tracer(clock=clock, metrics=MetricsRegistry()))
        try:
            assert obs.enabled()
            with obs.span("traced"):
                obs.event("seen", n=2)
                obs.set_attribute("k", "v")
        finally:
            assert obs.uninstall_tracer() is tracer
        assert not obs.enabled()
        (root,) = tracer.roots
        assert root.attributes == {"k": "v"}
        assert root.events[0].attributes == {"n": 2}

    def test_traced_scope_restores_previous(self, clock):
        outer = obs.install_tracer(Tracer(clock=clock, metrics=MetricsRegistry()))
        try:
            with obs.traced(clock=clock, metrics=MetricsRegistry()) as inner:
                assert obs.active_tracer() is inner
                with obs.span("inner-span"):
                    pass
            assert obs.active_tracer() is outer
            assert inner.find("inner-span")
            assert not outer.find("inner-span")
        finally:
            obs.uninstall_tracer()


class TestChromeExport:
    def test_event_shapes(self, clock, tracer):
        clock.advance(1.0)
        with tracer.span("transport.call") as span:
            span.set_attribute("source", "site0")
            clock.advance(0.25)
            span.add_event("attempt", number=1)
            clock.advance(0.25)
        trace = tracer.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        complete, instant = trace["traceEvents"]
        assert complete == {
            "name": "transport.call",
            "cat": "transport",
            "ph": "X",
            "ts": 1_000_000.0,
            "dur": 500_000.0,
            "pid": 1,
            "tid": 1,
            "args": {"source": "site0"},
        }
        assert instant["ph"] == "i"
        assert instant["name"] == "transport.call/attempt"
        assert instant["ts"] == 1_250_000.0
        assert instant["args"] == {"number": 1}

    def test_dump_json_round_trips(self, clock, tracer, tmp_path):
        with tracer.span("root"):
            clock.advance(0.1)
        path = tmp_path / "trace.json"
        tracer.dump_json(str(path))
        data = json.loads(path.read_text())
        assert data["otherData"]["generator"] == "repro.obs"
        assert len(data["traceEvents"]) == 1


class TestInstrumentedPaths:
    def test_inference_spans_appear(self, clock):
        from repro.inference import infer_view_dtd
        from repro.workloads.paper import d1, q3

        with obs.traced(clock=clock, metrics=MetricsRegistry()) as tracer:
            infer_view_dtd(d1(), q3())
        (root,) = [s for s in tracer.walk() if s.parent is None]
        assert root.name == "inference.infer_view_dtd"
        names = {s.name for s in tracer.walk()}
        assert "inference.tighten" in names
        assert "inference.refine" in names
        assert "inference.merge" in names
        assert "inference.infer_list_type" in names
        tighten_span = tracer.find("inference.tighten")[0]
        assert tighten_span.attributes["classification"] == "satisfiable"
        # nested under the pipeline span, not a sibling forest
        assert tighten_span.parent is root

    def test_transport_span_records_retries(self, clock):
        import random

        from repro.dtd import generate_document
        from repro.mediator import (
            FaultPlan,
            FaultySource,
            RetryPolicy,
            SourceTransport,
            TransportPolicy,
        )
        from repro.workloads.paper import d1, q3

        rng = random.Random(3)
        documents = [generate_document(d1(), rng)]
        source = FaultySource(
            "dept",
            d1(),
            documents,
            plan=FaultPlan(fail_first=1),
            clock=clock,
            validate=False,
        )
        transport = SourceTransport(
            source,
            TransportPolicy(retry=RetryPolicy(attempts=3, jitter=0.0)),
            clock,
        )
        with obs.traced(clock=clock, metrics=MetricsRegistry()) as tracer:
            transport.call(q3())
        (span,) = tracer.find("transport.call")
        assert span.attributes["source"] == "dept"
        assert span.attributes["outcome"] == "success"
        assert span.attributes["attempts"] == 2
        event_names = [e.name for e in span.events]
        assert event_names == ["attempt", "failure", "backoff", "attempt"]
