"""Tests for the quality metrics (E12: looseness, structural probes)."""

import random

from repro.inference import (
    infer_view_dtd,
    looseness_report,
    naive_view_dtd,
    structural_tightness_probe,
)
from repro.workloads.paper import d1, q2, q3


class TestLooseness:
    def test_naive_vs_tight_on_q2(self):
        tight = infer_view_dtd(d1(), q2()).dtd
        naive = naive_view_dtd(d1(), q2())
        rows = {row.name: row for row in looseness_report(naive, tight, 6)}
        # The naive list type mixes names freely; the tight one orders
        # and bounds them.
        assert rows["withJournals"].factor > 2
        # The professor type gained a >=2 publications constraint.
        assert rows["professor"].factor > 1
        # Types the refinement left alone count equal.
        assert rows["publication"].factor == 1.0

    def test_list_looseness_grows_with_horizon(self):
        # The naive list type mixes professors and gradStudents freely
        # (2^k sequences of length k) while the tight one orders them
        # (k+1 sequences): the factor explodes with the horizon.
        tight = infer_view_dtd(d1(), q2()).dtd
        naive = naive_view_dtd(d1(), q2())

        def factor(max_len):
            rows = looseness_report(naive, tight, max_len, ["withJournals"])
            return rows[0].factor

        assert factor(4) < factor(8) < factor(12)


class TestStructuralProbe:
    def test_q2_plain_dtd_has_gap(self):
        # Section 3.2: the tightest plain DTD still describes views
        # that cannot occur (professors without two journal pubs).
        result = infer_view_dtd(d1(), q2())
        probe = structural_tightness_probe(
            result, samples=120, rng=random.Random(5)
        )
        assert probe.has_gap
        assert 0.0 < probe.coverage < 1.0
        assert probe.example_gap is not None

    def test_q3_plain_dtd_is_structurally_tight(self):
        # Example 3.2 / D3: the disjunction was fully removed, so the
        # merged plain DTD and the s-DTD coincide.
        result = infer_view_dtd(d1(), q3())
        probe = structural_tightness_probe(
            result, samples=80, rng=random.Random(6)
        )
        assert not probe.has_gap
        assert probe.coverage == 1.0
