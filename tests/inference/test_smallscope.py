"""E20: small-scope exhaustive verification.

Within per-name width caps, *every* valid source document is
enumerated: soundness is checked exactly, and the structural classes
described by the plain/specialized view DTDs are compared against the
classes the view actually produces -- testing the paper's Section 3.3
conjecture (specialized view DTDs are structurally tight) exhaustively
at scope.
"""

import pytest

from repro.dtd import dtd, validate_document
from repro.inference import infer_view_dtd
from repro.inference.smallscope import (
    enumerate_documents,
    enumerate_elements,
    enumerate_sdtd_elements,
    small_scope_analysis,
)
from repro.workloads import paper
from repro.xmas import parse_query


class TestEnumeration:
    def test_enumerates_all_valid_documents(self):
        d = dtd(
            {"r": "a?, b", "a": "#PCDATA", "b": "#PCDATA"},
            root="r",
        )
        docs = enumerate_documents(d, widths=2)
        # words: b / a,b -> 2 documents (single string pool)
        assert len(docs) == 2
        assert all(validate_document(doc, d).ok for doc in docs)

    def test_width_caps_respected(self):
        d = dtd({"r": "a*", "a": "#PCDATA"}, root="r")
        assert len(enumerate_documents(d, widths=3)) == 4  # 0..3 a's

    def test_string_pool_multiplies_pcdata(self):
        d = dtd({"r": "a", "a": "#PCDATA"}, root="r")
        docs = enumerate_documents(d, widths=2, string_pool=("x", "y"))
        assert len(docs) == 2

    def test_recursive_dtd_yields_nothing_forced(self):
        d = dtd({"r": "r"}, root="r")  # no finite documents
        assert enumerate_documents(d, widths=2) == []

    def test_recursive_dtd_with_escape(self):
        d = dtd({"r": "r?, x", "x": "#PCDATA"}, root="r")
        docs = enumerate_documents(d, widths=2)
        # depth grows until the scope memoization stabilizes at the
        # base level: r->x and r->(r->x),x.
        assert len(docs) >= 1
        assert all(validate_document(doc, d).ok for doc in docs)

    def test_sdtd_enumeration_respects_tags(self):
        from repro.dtd import sdtd as make_sdtd

        s = make_sdtd(
            {
                "v": "a^1",
                "a^1": "b, b",
                "a": "b*",
                "b": "#PCDATA",
            },
            root="v",
        )
        shapes = enumerate_sdtd_elements(s, ("v", 0), widths=3)
        # only the a-with-two-bs shape is allowed under v
        assert len(shapes) == 1
        assert len(shapes[0].children[0].children) == 2


SCOPES = {
    "q2": (
        paper.d1,
        paper.q2,
        {"department": 4, "professor": 5, "gradStudent": 5,
         "publication": 3, "*": 3},
        {"withJournals": 2, "department": 4, "professor": 5,
         "gradStudent": 5, "publication": 3, "*": 3},
        ("CS",),
    ),
    "q3": (
        paper.d1,
        paper.q3,
        {"department": 3, "professor": 4, "gradStudent": 3,
         "publication": 3, "*": 3},
        {"publist": 2, "professor": 4, "publication": 3, "*": 3},
        ("CS",),
    ),
    "q6": (
        paper.d9,
        paper.q6,
        {"professor": 3, "*": 3},
        {"answer": 1, "professor": 3, "*": 3},
        ("s",),
    ),
}


@pytest.mark.parametrize("name", sorted(SCOPES))
def test_exhaustive_soundness(name):
    dtd_fn, query_fn, source_w, view_w, pool = SCOPES[name]
    source_dtd = dtd_fn()
    query = query_fn()
    result = infer_view_dtd(source_dtd, query)
    report = small_scope_analysis(
        source_dtd, query, result, source_w, view_w, pool
    )
    assert report.source_documents > 0
    assert report.sound, report.summary()


@pytest.mark.parametrize("name", sorted(SCOPES))
def test_sdtd_structurally_tight_at_scope(name):
    """The Section 3.3 conjecture, exhaustively at scope."""
    dtd_fn, query_fn, source_w, view_w, pool = SCOPES[name]
    source_dtd = dtd_fn()
    query = query_fn()
    result = infer_view_dtd(source_dtd, query)
    report = small_scope_analysis(
        source_dtd, query, result, source_w, view_w, pool
    )
    assert report.sdtd_structurally_tight, (
        f"{name}: {len(report.sdtd_gap)} s-DTD-described classes are "
        "not producible"
    )


def test_q2_plain_dtd_gap_is_exact():
    """Section 3.2's non-tightness, counted exactly at scope."""
    dtd_fn, query_fn, source_w, view_w, pool = SCOPES["q2"]
    result = infer_view_dtd(dtd_fn(), query_fn())
    report = small_scope_analysis(
        dtd_fn(), query_fn(), result, source_w, view_w, pool
    )
    # The plain view DTD describes many impossible views (e.g. a
    # professor with conference publications only), the s-DTD none.
    assert len(report.plain_gap) > 100
    assert report.sdtd_gap == set()
    # Everything the s-DTD describes at scope really is producible,
    # and is a subset of what the plain DTD describes.
    assert report.sdtd_described <= report.plain_described


def test_unsatisfiable_view_scope():
    d = dtd({"r": "x", "x": "#PCDATA", "y": "#PCDATA"}, root="r")
    q = parse_query("v = SELECT X WHERE <r> X:<y/> </>")
    result = infer_view_dtd(d, q)
    report = small_scope_analysis(d, q, result, 2, {"v": 2, "*": 2})
    assert report.sound
    # only the empty view exists and is described
    assert len(report.achievable) == 1
    assert report.plain_described == report.achievable
