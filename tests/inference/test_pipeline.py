"""End-to-end tests for the View DTD Inference module."""

import pytest

from repro.dtd import (
    dtd,
    equivalent_dtds,
    is_tighter,
    is_strictly_tighter,
)
from repro.errors import QueryAnalysisError
from repro.inference import (
    Classification,
    InferenceMode,
    infer_view_dtd,
    naive_view_dtd,
)
from repro.regex import is_equivalent, parse_regex
from repro.workloads.paper import (
    d1,
    d2_expected,
    d3_expected,
    d4_expected,
    d9,
    d11,
    q2,
    q3,
    q6,
    q7,
    q12,
)
from repro.xmas import parse_query


class TestPaperViews:
    def test_e1_q2_matches_expected_d2(self):
        result = infer_view_dtd(d1(), q2())
        assert equivalent_dtds(result.dtd, d2_expected())
        assert result.classification is Classification.SATISFIABLE

    def test_e1_sdtd_matches_d4(self):
        # The inferred specialized view DTD is (key-renaming aside)
        # Example 3.4's D4: every D4 type has an equivalent inferred
        # counterpart describing the same element trees.
        result = infer_view_dtd(d1(), q2())
        expected = d4_expected()
        assert is_equivalent(
            result.sdtd.types[(result.query.view_name, 0)],
            _rename_withjournals(result),
        )
        prof_key = [k for k in result.sdtd.types if k[0] == "professor"][0]
        pub_spec = [
            k for k in result.sdtd.types if k[0] == "publication" and k[1]
        ][0]
        expected_prof = parse_regex(
            f"firstName, lastName, publication*, publication^{pub_spec[1]}, "
            f"publication*, publication^{pub_spec[1]}, publication*, teaches"
        )
        assert is_equivalent(result.sdtd.types[prof_key], expected_prof)
        assert is_equivalent(
            result.sdtd.types[pub_spec],
            expected.types[("publication", 1)],
        )

    def test_e2_q3_matches_expected_d3(self):
        result = infer_view_dtd(d1(), q3())
        assert equivalent_dtds(result.dtd, d3_expected())
        # No genuinely lossy merge happened: the view only ever holds
        # journal publications.
        assert result.merge.lossless

    def test_e1_merge_is_lossy(self):
        result = infer_view_dtd(d1(), q2())
        assert "publication" in result.merge.merged_names
        assert not result.merge.lossless

    def test_q7_view(self):
        result = infer_view_dtd(d9(), q7())
        assert is_equivalent(
            result.dtd.types["answer"], parse_regex("professor?")
        )
        assert is_equivalent(
            result.dtd.types["professor"],
            parse_regex(
                "name, (journal | conference)*, journal, "
                "(journal | conference)*, journal, (journal | conference)*"
            ),
        )

    def test_q12_modes(self):
        exact = infer_view_dtd(d11(), q12(), InferenceMode.EXACT)
        paper = infer_view_dtd(d11(), q12(), InferenceMode.PAPER)
        assert is_equivalent(
            exact.dtd.types["papers"], parse_regex("(title, author*)+")
        )
        assert is_equivalent(
            paper.dtd.types["papers"], parse_regex("(title, author*)*")
        )
        assert is_tighter(exact.dtd, paper.dtd)


def _rename_withjournals(result):
    """D4's withJournals content over the inferred key names."""
    from repro.regex import parse_regex as p

    prof_key = [k for k in result.sdtd.types if k[0] == "professor"][0]
    grad_key = [k for k in result.sdtd.types if k[0] == "gradStudent"][0]
    return p(
        f"professor^{prof_key[1]}*, gradStudent^{grad_key[1]}*"
        .replace("^0", "")
    )


class TestTightnessClaims:
    def test_inferred_tighter_than_naive(self):
        for d, q in [(d1(), q2()), (d1(), q3()), (d9(), q6()), (d9(), q7())]:
            tight = infer_view_dtd(d, q).dtd
            naive = naive_view_dtd(d, q)
            assert is_tighter(tight, naive), q.view_name

    def test_strictly_tighter_on_q2(self):
        tight = infer_view_dtd(d1(), q2()).dtd
        naive = naive_view_dtd(d1(), q2())
        assert is_strictly_tighter(tight, naive)


class TestEdgeCases:
    def test_unsatisfiable_view(self):
        d = dtd({"r": "x", "x": "#PCDATA", "y": "#PCDATA"}, root="r")
        q = parse_query("v = SELECT X WHERE <r> X:<y/> </>")
        result = infer_view_dtd(d, q)
        assert result.is_empty_view
        assert result.classification is Classification.UNSATISFIABLE
        # The view DTD describes exactly the empty view.
        assert is_equivalent(result.list_type, parse_regex("()"))

    def test_view_name_collision_rejected(self):
        d = dtd({"r": "x", "x": "#PCDATA"}, root="r")
        q = parse_query("r = SELECT X WHERE <r> X:<x/> </>")
        with pytest.raises(QueryAnalysisError):
            infer_view_dtd(d, q)

    def test_recursive_query_rejected(self):
        from repro.workloads.paper import q4, section_dtd

        with pytest.raises(QueryAnalysisError):
            infer_view_dtd(section_dtd(), q4())

    def test_wildcard_pick(self):
        d = dtd(
            {"r": "x, y", "x": "#PCDATA", "y": "#PCDATA"},
            root="r",
        )
        q = parse_query("v = SELECT P WHERE <r> P:<*/> </>")
        result = infer_view_dtd(d, q)
        # Every r has exactly one x then one y; both are picked.
        assert is_equivalent(result.dtd.types["v"], parse_regex("x, y"))

    def test_describe_is_printable(self):
        result = infer_view_dtd(d1(), q2())
        text = result.describe()
        assert "withJournals" in text
        assert "satisfiable" in text

    def test_pruned_view_sdtd(self):
        # Names unreachable from the view root are pruned
        # (Example 3.1's elimination step): course never appears.
        result = infer_view_dtd(d1(), q2())
        assert all(key[0] != "course" for key in result.sdtd.types)
        assert "course" not in result.dtd
