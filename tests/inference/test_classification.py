"""E14: classification accuracy against brute-force ground truth.

The tightening side effect says a condition is valid / satisfiable /
unsatisfiable with respect to the source DTD.  Ground truth is
approximated by sampling many random valid documents and evaluating
the query: an UNSATISFIABLE verdict must never see a non-empty answer;
a VALID verdict (for queries whose pick existence is implied) must
never see an empty answer on documents where the root matches.
"""

import random

import pytest

from repro.dtd import dtd, generate_document
from repro.inference import Classification, InferenceMode, tighten
from repro.workloads import synthetic
from repro.xmas import evaluate, parse_query


def brute_force_status(source_dtd, query, trials=80, star_mean=1.4):
    """(ever_matched, ever_failed) over random documents."""
    rng = random.Random(99)
    ever_matched = False
    ever_failed = False
    for _ in range(trials):
        doc = generate_document(source_dtd, rng, star_mean=star_mean)
        picks = evaluate(query, doc).root.children
        if picks:
            ever_matched = True
        else:
            ever_failed = True
    return ever_matched, ever_failed


CASES = [
    # (dtd declarations, root, query, expected classification)
    (
        {"a": "b, c", "b": "#PCDATA", "c": "#PCDATA"},
        "a",
        "SELECT X WHERE X:<a><b/></a>",
        Classification.VALID,
    ),
    (
        {"a": "b*", "b": "#PCDATA"},
        "a",
        "SELECT X WHERE X:<a><b/></a>",
        Classification.SATISFIABLE,
    ),
    (
        {"a": "b", "b": "#PCDATA", "c": "#PCDATA"},
        "a",
        "SELECT X WHERE X:<a><c/></a>",
        Classification.UNSATISFIABLE,
    ),
    (
        {"a": "b+", "b": "#PCDATA"},
        "a",
        "SELECT X WHERE X:<a><b/><b/></a>",
        Classification.SATISFIABLE,
    ),
    (
        {"a": "b, b", "b": "#PCDATA"},
        "a",
        "SELECT X WHERE X:<a><b/><b/></a>",
        Classification.VALID,
    ),
    (
        {"a": "b, b?", "b": "#PCDATA"},
        "a",
        "SELECT X WHERE X:<a><b/><b/><b/></a>",
        Classification.UNSATISFIABLE,
    ),
    (
        {"a": "(b | c)+", "b": "#PCDATA", "c": "#PCDATA"},
        "a",
        "SELECT X WHERE X:<a><b/></a>",
        Classification.SATISFIABLE,
    ),
    (
        {"a": "(b | c), b", "b": "#PCDATA", "c": "#PCDATA"},
        "a",
        "SELECT X WHERE X:<a><b/></a>",
        Classification.VALID,
    ),
]


@pytest.mark.parametrize("decls,root,query_text,expected", CASES)
def test_expected_classification(decls, root, query_text, expected):
    source_dtd = dtd(decls, root=root)
    query = parse_query(query_text)
    result = tighten(source_dtd, query)
    assert result.classification is expected


@pytest.mark.parametrize("decls,root,query_text,expected", CASES)
def test_classification_agrees_with_brute_force(decls, root, query_text, expected):
    source_dtd = dtd(decls, root=root)
    query = parse_query(query_text)
    verdict = tighten(source_dtd, query).classification
    ever_matched, ever_failed = brute_force_status(source_dtd, query)
    if verdict is Classification.UNSATISFIABLE:
        assert not ever_matched
    elif verdict is Classification.VALID:
        assert not ever_failed
    else:
        # Satisfiable: sampling should find both outcomes for these
        # small DTDs (they all have genuine variation).
        assert ever_matched
        assert ever_failed


def test_exact_never_looser_than_paper_on_random_workloads():
    """EXACT's verdicts refine PAPER's: same unsatisfiable set, and
    everything PAPER calls valid EXACT calls valid too."""
    order = {
        Classification.VALID: 0,
        Classification.SATISFIABLE: 1,
        Classification.UNSATISFIABLE: 2,
    }
    for depth, width in [(3, 2), (3, 3)]:
        source_dtd = synthetic.layered_dtd(depth, width)
        for seed in range(6):
            rng = random.Random(seed)
            query = synthetic.path_query(source_dtd, depth - 1, rng)
            exact = tighten(source_dtd, query, InferenceMode.EXACT)
            paper_mode = tighten(source_dtd, query, InferenceMode.PAPER)
            assert (
                order[exact.classification] <= order[paper_mode.classification]
            )
            # Unsatisfiability is structural, identical in both modes.
            assert (
                exact.classification is Classification.UNSATISFIABLE
            ) == (paper_mode.classification is Classification.UNSATISFIABLE)
