"""Differential and idempotence properties of collapse backends.

``compute_equivalence`` ships two refinement backends: the canonical
signature grouping (default, one minimization per member per round)
and the legacy pairwise pivot scan (the oracle).  On every s-DTD they
must produce the same partition, and collapsing must be idempotent
under both.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.dtd import sdtd
from repro.inference.collapse import collapse_equivalent, compute_equivalence

from tests.strategies import sdtd_strategy

BACKENDS = ("signature", "pairwise")


@settings(max_examples=50, deadline=None)
@given(sdtd_strategy())
def test_backends_agree_on_random_sdtds(random_sdtd):
    by_signature = compute_equivalence(random_sdtd, backend="signature")
    by_pairwise = compute_equivalence(random_sdtd, backend="pairwise")
    assert by_signature == by_pairwise


@settings(max_examples=30, deadline=None)
@given(sdtd_strategy())
def test_collapse_agrees_across_backends(random_sdtd):
    collapsed_sig, map_sig = collapse_equivalent(
        random_sdtd, backend="signature"
    )
    collapsed_pair, map_pair = collapse_equivalent(
        random_sdtd, backend="pairwise"
    )
    assert map_sig == map_pair
    assert collapsed_sig.types == collapsed_pair.types
    assert collapsed_sig.root == collapsed_pair.root


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(random_sdtd=sdtd_strategy())
def test_collapse_is_idempotent(backend, random_sdtd):
    collapsed, mapping = collapse_equivalent(random_sdtd, backend=backend)
    assert set(mapping) == set(random_sdtd.types)
    again, mapping_again = collapse_equivalent(collapsed, backend=backend)
    assert mapping_again == {key: key for key in collapsed.types}
    assert again.types == collapsed.types
    assert again.root == collapsed.root


@pytest.mark.parametrize("backend", BACKENDS)
def test_example_3_4_publications_collapse(backend):
    # The paper's footnote-8 situation: two specializations with the
    # same type (up to renaming) merge into one.
    source = sdtd(
        {
            "v": "publication^1, publication^2",
            "publication^1": "title, author+",
            "publication^2": "title, author+",
            "title": "#PCDATA",
            "author": "#PCDATA",
        },
        root="v",
    )
    collapsed, mapping = collapse_equivalent(source, backend=backend)
    assert mapping[("publication", 1)] == mapping[("publication", 2)]
    assert ("publication", 0) in collapsed.types


def test_unknown_backend_is_rejected():
    source = sdtd({"v": "a*", "a": "#PCDATA"}, root="v")
    with pytest.raises(ValueError):
        compute_equivalence(source, backend="syntactic")
