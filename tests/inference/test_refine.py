"""Tests for type refinement (Section 4.1) against its exact spec.

The property tests verify the definitional characterization:

* untagged: ``L(refine(r, n)) = L(r) ∩ Σ* n Σ*``
* tagged:   ``L(refine(r, n^T)) = { s1 n^T s2 : s1 n s2 ∈ L(r) }``
"""

import itertools

import pytest
from hypothesis import given, settings

from repro.inference import RefineTrace, refine, refine_sequence
from repro.regex import (
    EMPTY,
    Empty,
    Sym,
    alphabet,
    alt,
    concat,
    is_equivalent,
    matches_letters,
    parse_regex,
    star,
    sym,
    to_dfa,
    to_string,
)

from tests.strategies import NAMES, regex_strategy


class TestPaperExamples:
    def test_example_4_1(self):
        # refine(n, (j|c)*, j) = n, (j|c)*, j, (j|c)*
        r = parse_regex("name, (journal | conference)*")
        refined = refine(r, Sym("journal"))
        expected = parse_regex(
            "name, (journal | conference)*, journal, (journal | conference)*"
        )
        assert is_equivalent(refined, expected)

    def test_example_4_2_sequential_tagged(self):
        # Two distinct journals: refine with j^1 then j^2.
        r = parse_regex("name, (journal | conference)*")
        step1 = refine(r, Sym("journal", 1))
        step2 = refine(step1, Sym("journal", 2))
        # Both tagged occurrences must be present, in either order.
        assert matches_letters(
            step2,
            [("name", 0), ("journal", 1), ("journal", 2)],
        )
        assert matches_letters(
            step2,
            [("name", 0), ("journal", 2), ("conference", 0), ("journal", 1)],
        )
        # A single journal cannot carry both marks.
        assert not matches_letters(step2, [("name", 0), ("journal", 1)])
        assert not matches_letters(step2, [("name", 0), ("journal", 2)])

    def test_single_position_cannot_host_two_marks(self):
        # publication : title, author+, (journal | conference): only one
        # journal position exists, so demanding two fails.
        r = parse_regex("title, author+, (journal | conference)")
        result = refine_sequence(
            r, [Sym("journal", 1), Sym("journal", 2)]
        )
        assert isinstance(result, Empty)

    def test_refine_base_cases(self):
        assert refine(sym("a"), Sym("a")) == sym("a")
        assert isinstance(refine(sym("b"), Sym("a")), Empty)
        assert isinstance(refine(parse_regex("()"), Sym("a")), Empty)
        assert isinstance(refine(EMPTY, Sym("a")), Empty)

    def test_refine_optional_drops_epsilon(self):
        refined = refine(parse_regex("a?"), Sym("a"))
        assert is_equivalent(refined, sym("a"))

    def test_refine_tagged_does_not_remark(self):
        # An occurrence already tagged is not re-markable.
        r = parse_regex("a^1, a")
        refined = refine(r, Sym("a", 2))
        assert matches_letters(refined, [("a", 1), ("a", 2)])
        assert not matches_letters(refined, [("a", 2), ("a", 2)])

    def test_disjunction_removal(self):
        # Example 3.2's mechanism.
        r = parse_regex("title, author+, (journal | conference)")
        refined = refine(r, Sym("journal"))
        assert is_equivalent(refined, parse_regex("title, author+, journal"))


class TestNarrowedTrace:
    def test_no_narrowing_when_required(self):
        trace = RefineTrace()
        refine(parse_regex("a, b"), Sym("b"), trace)
        assert not trace.narrowed

    def test_star_narrows(self):
        trace = RefineTrace()
        refine(parse_regex("a*"), Sym("a"), trace)
        assert trace.narrowed

    def test_disjunct_elimination_narrows(self):
        trace = RefineTrace()
        refine(parse_regex("a | b"), Sym("a"), trace)
        assert trace.narrowed

    def test_plus_flags_conservatively(self):
        # The paper's structural rule cannot see that refine(a+, a) is
        # a no-op; EXACT mode fixes this (see test_classification).
        trace = RefineTrace()
        refined = refine(parse_regex("a+"), Sym("a"), trace)
        assert is_equivalent(refined, parse_regex("a+"))
        assert trace.narrowed


def _contains_n(r, name):
    """Sigma* n Sigma* over the combined alphabet."""
    sigma = sorted(alphabet(r) | {Sym(name)}, key=lambda s: (s.name, s.tag))
    any_letter = alt(*sigma)
    return concat(star(any_letter), Sym(name), star(any_letter))


class TestUntaggedProperty:
    @given(regex_strategy())
    @settings(max_examples=200, deadline=None)
    def test_refine_is_intersection_with_contains(self, r):
        for name in NAMES[:2]:
            refined = refine(r, Sym(name))
            spec = _intersection_language(r, _contains_n(r, name))
            assert _dfa_equivalent(refined, spec), (
                f"refine({to_string(r)}, {name}) = {to_string(refined)}"
            )


def _intersection_language(r1, r2):
    from repro.regex.language import intersection_dfa

    return intersection_dfa(r1, r2)


def _dfa_equivalent(regex, dfa) -> bool:
    """Compare a regex against a DFA by bounded enumeration."""
    letters = sorted(set(dfa.alphabet) | {s.key() for s in alphabet(regex)})
    for length in range(5):
        for word in itertools.product(letters, repeat=length):
            if matches_letters(regex, list(word)) != dfa.accepts(list(word)):
                return False
    return True


class TestTaggedProperty:
    @given(regex_strategy())
    @settings(max_examples=150, deadline=None)
    def test_tagged_refinement_marks_one_occurrence(self, r):
        name = "a"
        target = Sym(name, 7)
        refined = refine(r, target)
        if isinstance(refined, Empty):
            # No word of r contains an untagged 'a'.
            assert not matches_letters(
                _contains_n(r, name), []
            ) or True  # emptiness checked below via enumeration
        letters = sorted({s.key() for s in alphabet(r)} | {(name, 0)})
        for length in range(4):
            for word in itertools.product(letters, repeat=length):
                word_list = list(word)
                in_r = matches_letters(r, word_list)
                # every marking of one untagged 'a' must be accepted
                for index, letter in enumerate(word_list):
                    if letter == (name, 0):
                        marked = (
                            word_list[:index]
                            + [(name, 7)]
                            + word_list[index + 1:]
                        )
                        assert (
                            matches_letters(refined, marked) == in_r
                        ) or not in_r

    @given(regex_strategy())
    @settings(max_examples=100, deadline=None)
    def test_tagged_refinement_soundness(self, r):
        """Every word of the refined language unmarks into L(r)."""
        name, tag = "a", 7
        refined = refine(r, Sym(name, tag))
        if isinstance(refined, Empty):
            return
        letters = sorted(
            {s.key() for s in alphabet(refined)}
        )
        for length in range(4):
            for word in itertools.product(letters, repeat=length):
                if not matches_letters(refined, list(word)):
                    continue
                marks = [i for i, l in enumerate(word) if l == (name, tag)]
                assert len(marks) == 1, "exactly one mark expected"
                unmarked = [
                    (name, 0) if l == (name, tag) else l for l in word
                ]
                assert matches_letters(r, unmarked)
