"""Hypothesis-driven properties of the tightening algorithm.

Queries are generated *structurally* (hypothesis composite over a
fixed small DTD), so failures shrink to minimal condition trees.

Invariants checked for every generated query:

* the image of every specialized type is included in its base type
  (refinement only narrows);
* a VALID node's refined type has the same image language as the base;
* the full pipeline is sound on sampled documents;
* collapsing preserves the typing relation on sampled views.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd import dtd, generate_document, satisfies_sdtd, validate_document
from repro.inference import Classification, infer_view_dtd, tighten
from repro.regex import image, is_equivalent, is_subset
from repro.xmas import Condition, cond, evaluate, query as make_query


def small_dtd():
    return dtd(
        {
            "r": "a+, b*, c?",
            "a": "(x | y)*, z?",
            "b": "x, y?",
            "c": "#PCDATA",
            "x": "#PCDATA",
            "y": "#PCDATA",
            "z": "w*",
            "w": "#PCDATA",
        },
        root="r",
    )


#: name -> possible child condition names (per the DTD above)
CHILDREN = {
    "r": ["a", "b", "c"],
    "a": ["x", "y", "z"],
    "b": ["x", "y"],
    "z": ["w"],
}


@st.composite
def conditions(draw, name: str, depth: int = 0) -> Condition:
    options = CHILDREN.get(name, [])
    n_children = 0
    if options and depth < 3:
        n_children = draw(st.integers(min_value=0, max_value=2))
    children = []
    for _ in range(n_children):
        child_name = draw(st.sampled_from(options))
        children.append(draw(conditions(child_name, depth + 1)))
    return cond(name, children=tuple(children))


@st.composite
def pick_queries(draw):
    """A pick-element query: a root condition with the pick somewhere."""
    root = draw(conditions("r"))

    # choose any node as pick (rebuild with the variable set)
    nodes = list(root.iter_nodes())
    pick_index = draw(st.integers(min_value=0, max_value=len(nodes) - 1))
    counter = [-1]

    def rebuild(node: Condition) -> Condition:
        counter[0] += 1
        variable = "P" if counter[0] == pick_index else None
        from dataclasses import replace

        return replace(
            node,
            variable=variable,
            children=tuple(rebuild(child) for child in node.children),
        )

    return make_query("v", "P", rebuild(root))


@given(pick_queries())
@settings(max_examples=120, deadline=None)
def test_specialized_types_refine_their_bases(q):
    source = small_dtd()
    result = tighten(source, q)
    from repro.dtd import Pcdata

    for (name, tag), content in result.sdtd.types.items():
        if tag == 0 or isinstance(content, Pcdata):
            continue
        base = source.type_of(name)
        if isinstance(base, Pcdata):
            continue
        assert is_subset(image(content), base), (name, tag)


@given(pick_queries())
@settings(max_examples=120, deadline=None)
def test_valid_nodes_preserve_base_language(q):
    source = small_dtd()
    result = tighten(source, q)
    from repro.dtd import Pcdata

    for typing in result.typings.values():
        for name, klass in typing.classes.items():
            if not klass.is_valid:
                continue
            key = typing.keys[name]
            content = result.sdtd.types[key]
            base = source.type_of(name)
            if isinstance(content, Pcdata) or isinstance(base, Pcdata):
                continue
            assert is_equivalent(image(content), base), (name, key)


@given(pick_queries())
@settings(max_examples=60, deadline=None)
def test_pipeline_sound_on_samples(q):
    source = small_dtd()
    result = infer_view_dtd(source, q)
    rng = random.Random(17)
    for _ in range(6):
        doc = generate_document(source, rng, star_mean=1.2)
        view = evaluate(q, doc)
        assert validate_document(view, result.dtd).ok, str(q)
        assert satisfies_sdtd(view.root, result.sdtd), str(q)


@given(pick_queries())
@settings(max_examples=60, deadline=None)
def test_unsatisfiable_means_empty(q):
    source = small_dtd()
    result = infer_view_dtd(source, q)
    if result.classification is not Classification.UNSATISFIABLE:
        return
    rng = random.Random(23)
    for _ in range(8):
        doc = generate_document(source, rng, star_mean=1.5)
        view = evaluate(q, doc)
        assert view.root.children == [], str(q)
