"""Tests for Algorithm Tighten (Section 4.2)."""

import pytest

from repro.dtd import dtd
from repro.errors import QueryAnalysisError
from repro.inference import Classification, InferenceMode, tighten
from repro.regex import is_equivalent, parse_regex
from repro.workloads.paper import d1, d9, q2, q3, q4, q6, q7
from repro.xmas import parse_query


class TestPaperExamples:
    def test_q2_specializes_publication(self):
        result = tighten(d1(), q2())
        sdtd = result.sdtd
        # A journal-only publication specialization exists...
        journal_pubs = [
            key
            for key in sdtd.types
            if key[0] == "publication" and key[1] != 0
        ]
        assert len(journal_pubs) == 1
        assert is_equivalent(
            sdtd.types[journal_pubs[0]],
            parse_regex("title, author+, journal"),
        )
        # ...and the base publication type survives untouched.
        assert is_equivalent(
            sdtd.types[("publication", 0)],
            parse_regex("title, author+, (journal | conference)"),
        )

    def test_q2_professor_requires_two_marked(self):
        result = tighten(d1(), q2())
        typing = result.typing_of(q2_pick_node(result))
        assert set(typing.keys) == {"professor", "gradStudent"}
        prof_key = typing.keys["professor"]
        prof_type = result.sdtd.types[prof_key]
        pub_tag = [
            key for key in result.sdtd.types if key[0] == "publication" and key[1]
        ][0][1]
        expected = parse_regex(
            f"firstName, lastName, publication*, publication^{pub_tag}, "
            f"publication*, publication^{pub_tag}, publication*, teaches"
        )
        assert is_equivalent(prof_type, expected)

    def test_q2_classification_satisfiable(self):
        assert tighten(d1(), q2()).classification is Classification.SATISFIABLE

    def test_q3_disjunction_removed(self):
        result = tighten(d1(), q3())
        pick_keys = [
            key for key in result.sdtd.types if key[0] == "publication"
        ]
        refined = [
            key
            for key in pick_keys
            if is_equivalent(
                result.sdtd.types[key], parse_regex("title, author+, journal")
            )
        ]
        assert refined

    def test_q7_two_distinct_journals(self):
        result = tighten(d9(), q7())
        pick_key = result.root.keys["professor"]
        assert is_equivalent(
            result.sdtd.types[pick_key],
            parse_regex(
                "name, (journal | conference)*, journal, "
                "(journal | conference)*, journal, (journal | conference)*"
            ),
        )

    def test_q6_one_journal(self):
        result = tighten(d9(), q6())
        pick_key = result.root.keys["professor"]
        assert is_equivalent(
            result.sdtd.types[pick_key],
            parse_regex(
                "name, (journal | conference)*, journal, (journal | conference)*"
            ),
        )

    def test_recursive_query_rejected(self):
        from repro.workloads.paper import section_dtd

        with pytest.raises(QueryAnalysisError):
            tighten(section_dtd(), q4())


def q2_pick_node(result):
    for typing in result.typings.values():
        if typing.node.variable == "P":
            return typing.node
    raise AssertionError("pick node not found")


class TestClassification:
    def test_valid_condition(self):
        d = dtd({"a": "b, c", "b": "#PCDATA", "c": "#PCDATA"}, root="a")
        q = parse_query("SELECT X WHERE X:<a><b/></a>")
        assert tighten(d, q).classification is Classification.VALID

    def test_satisfiable_condition(self):
        d = dtd({"a": "b*", "b": "#PCDATA"}, root="a")
        q = parse_query("SELECT X WHERE X:<a><b/></a>")
        assert tighten(d, q).classification is Classification.SATISFIABLE

    def test_unsatisfiable_condition(self):
        d = dtd({"a": "b", "b": "#PCDATA", "c": "#PCDATA"}, root="a")
        q = parse_query("SELECT X WHERE X:<a><c/></a>")
        assert tighten(d, q).classification is Classification.UNSATISFIABLE

    def test_unsatisfiable_needs_two_of_one_slot(self):
        d = dtd({"a": "b, c", "b": "#PCDATA", "c": "#PCDATA"}, root="a")
        q = parse_query("SELECT X WHERE X:<a><b/><b/></a>")
        assert tighten(d, q).classification is Classification.UNSATISFIABLE

    def test_pcdata_value_condition_satisfiable(self):
        d = dtd({"a": "b", "b": "#PCDATA"}, root="a")
        q = parse_query("SELECT X WHERE X:<a><b>hello</b></a>")
        assert tighten(d, q).classification is Classification.SATISFIABLE

    def test_children_under_pcdata_unsatisfiable(self):
        d = dtd({"a": "b", "b": "#PCDATA", "c": "#PCDATA"}, root="a")
        q = parse_query("SELECT X WHERE X:<a><b><c/></b></a>")
        assert tighten(d, q).classification is Classification.UNSATISFIABLE

    def test_exact_beats_paper_on_plus(self):
        # Every 'a' has at least one 'b' (b+), so requiring one is
        # VALID -- but only EXACT mode can tell (refine of a plus
        # structurally narrows).
        d = dtd({"a": "b+", "b": "#PCDATA"}, root="a")
        q = parse_query("SELECT X WHERE X:<a><b/></a>")
        exact = tighten(d, q, InferenceMode.EXACT)
        paper = tighten(d, q, InferenceMode.PAPER)
        assert exact.classification is Classification.VALID
        assert paper.classification is Classification.SATISFIABLE

    def test_valid_requires_valid_children(self):
        # Every a has a b, but not every b has a c: the nested
        # condition is satisfiable only.
        d = dtd({"a": "b", "b": "c*", "c": "#PCDATA"}, root="a")
        q = parse_query("SELECT X WHERE X:<a><b><c/></b></a>")
        assert tighten(d, q).classification is Classification.SATISFIABLE

    def test_valid_propagates_through_children(self):
        d = dtd({"a": "b", "b": "c", "c": "#PCDATA"}, root="a")
        q = parse_query("SELECT X WHERE X:<a><b><c/></b></a>")
        assert tighten(d, q).classification is Classification.VALID


class TestDisjunctiveNameTests:
    def test_disjunctive_pick(self):
        result = tighten(d1(), q2())
        typing = result.typing_of(q2_pick_node(result))
        assert typing.classes["professor"] is Classification.SATISFIABLE
        assert typing.classes["gradStudent"] is Classification.SATISFIABLE

    def test_partially_feasible_disjunction(self):
        d = dtd(
            {"a": "b | c", "b": "d", "c": "#PCDATA", "d": "#PCDATA"},
            root="a",
        )
        # <b|c> requiring a d child: only b can satisfy it.
        q = parse_query("SELECT X WHERE <a> X:<b | c><d/></> </>")
        result = tighten(d, q)
        typing = [
            t for t in result.typings.values() if t.node.variable == "X"
        ][0]
        assert set(typing.keys) == {"b"}


class TestPull:
    def test_untagged_dependencies_pulled(self):
        result = tighten(d1(), q3())
        # title and author are referenced untagged by the refined
        # publication type; their declarations must be present.
        assert ("title", 0) in result.sdtd.types
        assert ("author", 0) in result.sdtd.types

    def test_consistency(self):
        result = tighten(d1(), q2())
        result.sdtd.check_consistency()
