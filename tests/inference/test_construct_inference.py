"""Tests for CONSTRUCT view-DTD inference."""

import random

import pytest

from repro.dtd import (
    generate_document,
    satisfies_sdtd,
    validate_document,
)
from repro.errors import QueryAnalysisError
from repro.inference import (
    Classification,
    infer_construct_view_dtd,
)
from repro.regex import is_equivalent, parse_regex
from repro.workloads import paper
from repro.xmas import evaluate_construct, parse_construct_query

PAIRS = """
pairs =
  CONSTRUCT <pair> $F $L </pair>
  WHERE <department>
          <professor> F:<firstName/> L:<lastName/> </>
        </>
"""


class TestInference:
    def test_template_structure_becomes_types(self):
        q = parse_construct_query(PAIRS)
        result = infer_construct_view_dtd(paper.d1(), q)
        assert is_equivalent(
            result.dtd.types["pairs"], parse_regex("pair*")
        )
        assert is_equivalent(
            result.dtd.types["pair"], parse_regex("firstName, lastName")
        )

    def test_slot_gets_specialized_type(self):
        # The slot's publication carries the journal refinement.
        q = parse_construct_query(
            "jp = CONSTRUCT <row> $P </row> "
            "WHERE <department> <professor> "
            "P:<publication><journal/></publication> </> </>"
        )
        result = infer_construct_view_dtd(paper.d1(), q)
        assert is_equivalent(
            result.dtd.types["publication"],
            parse_regex("title, author+, journal"),
        )

    def test_disjunctive_slot(self):
        q = parse_construct_query(
            "people = CONSTRUCT <row> $X </row> "
            "WHERE <department> X:<professor | gradStudent/> </>"
        )
        result = infer_construct_view_dtd(paper.d1(), q)
        assert is_equivalent(
            result.dtd.types["row"],
            parse_regex("professor | gradStudent"),
        )

    def test_text_literal_template_is_pcdata(self):
        from repro.dtd import Pcdata

        q = parse_construct_query(
            't = CONSTRUCT <row> <kind>"prof"</kind> $F </row> '
            "WHERE <department> <professor> F:<firstName/> </> </>"
        )
        result = infer_construct_view_dtd(paper.d1(), q)
        assert isinstance(result.dtd.types["kind"], Pcdata)

    def test_unsatisfiable_slot_gives_empty_view(self):
        q = parse_construct_query(
            "v = CONSTRUCT <row> $X </row> "
            "WHERE <department> X:<professor><course/></professor> </>"
        )
        result = infer_construct_view_dtd(paper.d1(), q)
        assert result.is_empty_view
        assert is_equivalent(result.dtd.types["v"], parse_regex("()"))

    def test_template_name_collision_rejected(self):
        q = parse_construct_query(
            "v = CONSTRUCT <professor> $F </professor> "
            "WHERE <department> <professor> F:<firstName/> </> </>"
        )
        with pytest.raises(QueryAnalysisError):
            infer_construct_view_dtd(paper.d1(), q)

    def test_classification(self):
        q = parse_construct_query(PAIRS)
        result = infer_construct_view_dtd(paper.d1(), q)
        # Every professor has firstName and lastName: valid.
        assert result.classification is Classification.VALID


class TestSoundness:
    @pytest.mark.parametrize("seed", range(4))
    def test_construct_views_satisfy_inferred_dtds(self, seed):
        queries = [
            PAIRS,
            "jp = CONSTRUCT <row> $P </row> WHERE <department> "
            "<professor> P:<publication><journal/></publication> </> </>",
            "people = CONSTRUCT <entry> $X <tag>\"x\"</tag> </entry> "
            "WHERE <department> X:<professor | gradStudent/> </>",
        ]
        d1 = paper.d1()
        rng = random.Random(seed)
        doc = generate_document(d1, rng, star_mean=1.8)
        for text in queries:
            q = parse_construct_query(text)
            result = infer_construct_view_dtd(d1, q)
            view = evaluate_construct(q, doc)
            assert validate_document(view, result.dtd).ok, text
            assert satisfies_sdtd(view.root, result.sdtd), text
