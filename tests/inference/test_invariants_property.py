"""Cross-cutting invariants of the inference pipeline, property-tested.

* collapsing never changes which element trees an s-DTD admits;
* Merge only loosens: every tree the s-DTD admits, the merged plain
  DTD admits;
* the inferred s-DTD is at least as tight as the merged plain DTD on
  actual view documents (both accept them -- soundness -- and the
  plain DTD accepts the probe set too).
"""

import random

import pytest

from repro.dtd import (
    generate_document,
    satisfies_sdtd,
    validate_element,
)
from repro.inference import (
    collapse_result,
    infer_view_dtd,
    merge_sdtd,
    tighten,
)
from repro.workloads import paper, synthetic
from repro.xmas import evaluate

WORKLOADS = [
    (paper.d1, paper.q2),
    (paper.d1, paper.q3),
    (paper.d9, paper.q6),
    (paper.d9, paper.q7),
    (paper.d11, paper.q12),
]


def _view_samples(source_dtd, query, n, seed, star_mean=1.8):
    rng = random.Random(seed)
    views = []
    for _ in range(n):
        doc = generate_document(source_dtd, rng, star_mean=star_mean)
        views.append(evaluate(query, doc))
    return views


@pytest.mark.parametrize("dtd_fn,query_fn", WORKLOADS)
def test_collapse_preserves_admitted_trees(dtd_fn, query_fn):
    source_dtd = dtd_fn()
    query = query_fn()
    raw = tighten(source_dtd, query, collapse=False)
    collapsed = collapse_result(raw)
    # Compare on actual view documents: build the two view s-DTDs by
    # hand (list type over the respective pick keys).
    from repro.inference import infer_list_type
    from repro.dtd import SpecializedDtd

    for result in (raw, collapsed):
        list_type = infer_list_type(source_dtd, query, result)
        types = dict(result.sdtd.types)
        types[(query.view_name, 0)] = list_type
        sdtd = SpecializedDtd(types, (query.view_name, 0))
        for view in _view_samples(source_dtd, query, 15, seed=3):
            assert satisfies_sdtd(view.root, sdtd), (
                f"{query.view_name}: collapse={result is collapsed}"
            )


@pytest.mark.parametrize("dtd_fn,query_fn", WORKLOADS)
def test_merge_only_loosens(dtd_fn, query_fn):
    """Any element tree admitted by the s-DTD is admitted by Merge(s-DTD)."""
    source_dtd = dtd_fn()
    query = query_fn()
    result = infer_view_dtd(source_dtd, query)
    merged = merge_sdtd(result.sdtd).dtd
    for view in _view_samples(source_dtd, query, 15, seed=4):
        if satisfies_sdtd(view.root, result.sdtd):
            assert validate_element(view.root, merged).ok


def test_merge_only_loosens_on_random_sdtd_samples():
    """Sample documents *from the merged DTD*; those also admitted by
    the s-DTD must (trivially) validate -- and sampling from the s-DTD
    side is covered by generating from source and evaluating."""
    result = infer_view_dtd(paper.d1(), paper.q2())
    merged = result.dtd
    rng = random.Random(8)
    for _ in range(20):
        doc = generate_document(merged, rng, star_mean=1.5)
        # Merge is an over-approximation: s-DTD acceptance implies
        # plain acceptance, never the other way.
        if satisfies_sdtd(doc.root, result.sdtd):
            assert validate_element(doc.root, merged).ok


@pytest.mark.parametrize("seed", range(3))
def test_pipeline_invariants_on_synthetic(seed):
    source_dtd = synthetic.layered_dtd(3, 3)
    query = synthetic.path_query(
        source_dtd, 2, random.Random(seed), side_conditions=1
    )
    result = infer_view_dtd(source_dtd, query)
    # The s-DTD and plain DTD are consistent structures.
    result.sdtd.check_consistency()
    result.dtd.check_consistency()
    # The view root is the declared document type of both.
    assert result.dtd.root == query.view_name
    assert result.sdtd.root == (query.view_name, 0)
    # Every declared plain name has a counterpart key in the s-DTD.
    sdtd_names = {name for name, _ in result.sdtd.types}
    assert set(result.dtd.types) == sdtd_names
