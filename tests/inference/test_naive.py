"""Tests for the naive baseline (Example 3.1)."""

import pytest

from repro.dtd import dtd, is_tighter
from repro.errors import QueryAnalysisError
from repro.inference import naive_view_dtd
from repro.regex import is_equivalent, parse_regex
from repro.workloads.paper import d1, q2
from repro.xmas import parse_query


class TestNaive:
    def test_list_type_is_free_mix(self):
        view = naive_view_dtd(d1(), q2())
        assert is_equivalent(
            view.types["withJournals"],
            parse_regex("(professor | gradStudent)*"),
        )

    def test_paper_literal_plus(self):
        view = naive_view_dtd(d1(), q2(), plus_list=True)
        assert is_equivalent(
            view.types["withJournals"],
            parse_regex("(professor | gradStudent)+"),
        )

    def test_types_unrefined(self):
        view = naive_view_dtd(d1(), q2())
        assert is_equivalent(
            view.types["publication"],
            parse_regex("title, author+, (journal | conference)"),
        )

    def test_unreachable_pruned(self):
        view = naive_view_dtd(d1(), q2())
        assert "course" not in view
        assert "department" not in view

    def test_root_set(self):
        assert naive_view_dtd(d1(), q2()).root == "withJournals"

    def test_star_tighter_than_plus_version(self):
        star_view = naive_view_dtd(d1(), q2())
        plus_view = naive_view_dtd(d1(), q2(), plus_list=True)
        assert is_tighter(plus_view, star_view)

    def test_view_name_collision(self):
        d = dtd({"r": "x", "x": "#PCDATA"}, root="r")
        q = parse_query("r = SELECT X WHERE <r> X:<x/> </>")
        with pytest.raises(QueryAnalysisError):
            naive_view_dtd(d, q)

    def test_unknown_pick_name(self):
        d = dtd({"r": "x", "x": "#PCDATA"}, root="r")
        q = parse_query("v = SELECT X WHERE <r> X:<zzz/> </>")
        with pytest.raises(Exception):
            naive_view_dtd(d, q)
