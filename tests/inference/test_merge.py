"""Tests for Algorithm Merge (Section 4.3)."""

import pytest

from repro.dtd import sdtd
from repro.errors import DtdConsistencyError
from repro.inference import merge_sdtd
from repro.regex import is_equivalent, parse_regex
from repro.workloads.paper import d4_expected


class TestMerge:
    def test_example_4_3(self):
        # Merging D4 collapses publication and publication^1 and
        # removes the tags; the merge is signalled.
        result = merge_sdtd(d4_expected())
        merged = result.dtd
        assert merged.root == "withJournals"
        assert "publication" in result.merged_names
        assert "publication" in result.lossy_names
        # The merged publication type is the union of the two.
        assert is_equivalent(
            merged.types["publication"],
            parse_regex("title, author+, (journal | conference)"),
        )
        # The professor image requires >= 2 publications (the paper
        # simplifies D10 further to D2's publication+, which loses the
        # cardinality -- see EXPERIMENTS.md E7).
        assert is_equivalent(
            merged.types["professor"],
            parse_regex(
                "firstName, lastName, publication, publication, "
                "publication*, teaches"
            ),
        )

    def test_no_signal_without_specializations(self):
        s = sdtd(
            {"v": "a*", "a": "#PCDATA"},
            root="v",
        )
        result = merge_sdtd(s)
        assert result.merged_names == []
        assert result.lossless

    def test_equivalent_specializations_merge_losslessly(self):
        s = sdtd(
            {
                "v": "a^1, a",
                "a^1": "b, b*",
                "a": "b+",
                "b": "#PCDATA",
            },
            root="v",
        )
        result = merge_sdtd(s)
        assert result.merged_names == ["a"]
        assert result.lossless  # same language, no information lost

    def test_root_tag_dropped(self):
        s = sdtd({"v^1": "a*", "a": "#PCDATA"}, root=("v", 1))
        assert merge_sdtd(s).dtd.root == "v"

    def test_kind_conflict_rejected(self):
        s = sdtd(
            {"v": "a^1, a", "a^1": "#PCDATA", "a": "b", "b": "#PCDATA"},
            root="v",
        )
        with pytest.raises(DtdConsistencyError):
            merge_sdtd(s)

    def test_images_in_content_models(self):
        s = sdtd(
            {
                "v": "a*, a^1, a*",
                "a^1": "b",
                "a": "b*",
                "b": "#PCDATA",
            },
            root="v",
        )
        merged = merge_sdtd(s).dtd
        # The view content model's image keeps the >=1 'a' requirement.
        assert is_equivalent(merged.types["v"], parse_regex("a+"))
